//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, dependency-free implementation of the
//! `rand 0.8` API subset the xseq crates use: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the seeded workload generators require.
//! Streams differ from the real `rand` crate; nothing in this repository
//! depends on the exact values, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding: only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// Panics when the range is empty, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

/// SplitMix64 step — used for seeding and as a standalone mixer.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (same family the real `StdRng`
    /// has used; not stream-compatible with it).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // all-zero state would be a fixed point
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..20usize);
            assert!((5..20).contains(&v));
            let w = rng.gen_range(1..=12u32);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((3_500..6_500).contains(&heads), "{heads}");
    }
}
