//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! dependency-free micro-benchmark harness with the `criterion 0.5` API
//! subset the `xseq-bench` benches use: `Criterion` with builder-style
//! configuration, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up for the configured time,
//! then run sample batches and report mean/min time per iteration to
//! stdout. No statistics machinery, plots, or baselines.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    warm_up: Duration,
    measurement: Duration,
    sample_count: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up: also discovers how many iterations fill a sample
        let warm_until = Instant::now() + self.warm_up;
        let mut iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if Instant::now() >= warm_until {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        let budget = self.measurement.as_secs_f64() / self.sample_count as f64;
        self.iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);

        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{label:40} mean {:>12} min {:>12} ({} samples × {} iters)",
            fmt_time(mean),
            fmt_time(min),
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement: Duration::from_secs(1),
            warm_up: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_count: self.sample_size,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    let mut b = c.bencher();
    f(&mut b);
    b.report(label);
}

/// A named set of benchmarks sharing the parent configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &label, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.bench_function("fib", |b| b.iter(|| (0..10u64).product::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_quickly() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        sample_bench(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = sample_bench
    }

    #[test]
    fn group_macro_expands_and_runs() {
        benches();
    }
}
