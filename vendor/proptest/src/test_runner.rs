//! Test configuration, the deterministic RNG, and test-case errors.

use std::fmt;

/// Run configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases (the `PROPTEST_CASES` environment
    /// variable, when set, overrides it).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::with_cases(256)
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case asked to be discarded (no generator here rejects, but the
    /// variant is part of the public API surface).
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (discarded) case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "assertion failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a over a string — stable seed material for a test's name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `(base, case)`.
    pub fn deterministic(base: u64, case: u64) -> Self {
        let mut rng = TestRng {
            state: base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        // decorrelate nearby case numbers
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
