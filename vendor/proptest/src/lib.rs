//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! dependency-free implementation of the proptest API subset its property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! `any::<T>()`, range strategies, `collection::vec`, `option::weighted`,
//! `bool::weighted`, the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros, and `ProptestConfig::with_cases`.
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded from
//! the test's module path and the case number, overridable via the
//! `PROPTEST_CASES` environment variable). There is **no shrinking** — a
//! failing case panics with its case number so it can be re-run, which is
//! sufficient for CI-style regression gating.

// The macros below must be defined after this test module; the prop_assert
// self-test is intentionally tautological.
#![allow(clippy::items_after_test_module, clippy::eq_op)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{Just, Strategy};

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn passthrough(x: u32) -> Result<(), TestCaseError> {
        prop_assert!(x == x, "reflexivity");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, b in 1u8..5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((1..5).contains(&b));
        }

        #[test]
        fn vec_sizes_and_flat_map(v in (1usize..6).prop_flat_map(|n| collection::vec(any::<u8>(), n))) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn helper_functions_can_propagate(x in any::<u32>()) {
            passthrough(x)?;
        }

        #[test]
        fn weighted_option_and_bool(o in option::weighted(0.5, any::<u8>()), b in bool::weighted(0.5)) {
            // both variants must be reachable; just exercise the values
            let _ = (o, b);
        }

        #[test]
        fn tuples_and_map(t in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(t < 19);
        }
    }
}

/// Fails the current test case unless `cond` holds.
///
/// Expands to an early `return Err(TestCaseError::fail(..))`, so it may be
/// used both inside `proptest!` bodies and in helper functions returning
/// `Result<(), TestCaseError>`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)).into(),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right` (both: `{:?}`)",
            left
        );
    }};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100 && !v.is_empty());
///     }
/// }
/// ```
///
/// Each test runs `cases` deterministic cases; the body may use
/// `prop_assert!`-family macros and `?` on `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let base = $crate::test_runner::fnv1a(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(base, case as u64);
                    #[allow(unused_mut)]
                    let mut inputs: Vec<String> = Vec::new();
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        inputs.push(format!("{} = {:?}", stringify!($arg), &$arg));
                    )*
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}\n  inputs: {}",
                            stringify!($name),
                            config.cases,
                            inputs.join(", "),
                        );
                    }
                }
            }
        )*
    };
}
