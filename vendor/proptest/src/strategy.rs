//! The [`Strategy`] trait, range/tuple strategies, and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking; a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
