//! `bool` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    assert!((0.0..=1.0).contains(&p), "bool::weighted probability {p}");
    Weighted { p }
}

/// See [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.p
    }
}
