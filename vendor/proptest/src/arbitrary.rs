//! `any::<T>()` — full-range generation for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (full range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for () {
    fn arbitrary_value(_rng: &mut TestRng) {}
}
