//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some(value)` with probability `p`, `None` otherwise.
pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
    assert!((0.0..=1.0).contains(&p), "option::weighted probability {p}");
    Weighted { p, inner }
}

/// See [`weighted`].
#[derive(Debug, Clone)]
pub struct Weighted<S> {
    p: f64,
    inner: S,
}

impl<S: Strategy> Strategy for Weighted<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.unit_f64() < self.p {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
