//! Collection strategies: `vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification: exact, `lo..hi`, or `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
