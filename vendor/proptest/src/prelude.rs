//! The customary glob import: `use proptest::prelude::*;`.

pub use crate::arbitrary::any;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
pub use crate::{bool, collection, option};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
