//! # xseq-query — an XPath-subset front end for tree patterns
//!
//! The paper expresses its workload as XPath-style path expressions with
//! branching predicates, values and wildcards (Tables 4 and 8):
//!
//! ```text
//! /site//item[location='United States']/mail/date[text='07/05/2000']
//! /site//person/*/age[text='32']
//! //closed_auction[seller/person='person11304']/date[text='12/15/1999']
//! /book[key='Maier']/author
//! ```
//!
//! This crate parses that dialect into [`TreePattern`]s — the tree pattern
//! is the index's basic query unit, so the front end's only job is building
//! the tree.  Grammar:
//!
//! ```text
//! query     := step+
//! step      := ('/' | '//') nametest predicate*
//! nametest  := NAME | '*'
//! predicate := '[' 'text' '=' value ']'
//!            | '[' relpath ('=' value)? ']'
//! relpath   := ('.')? step+            (a relative branch)
//! value     := '…' | '…' | "…"        (straight or typographic quotes)
//! ```
//!
//! Semantics: steps extend the spine; each predicate hangs a branch off the
//! current node; `[p = 'v']` adds a value leaf under the branch tip;
//! `[text='v']` adds a value leaf directly under the current node.  An `@`
//! before a name is accepted and ignored (attributes are ordinary child
//! nodes in this data model).
#![forbid(unsafe_code)]

use std::fmt;
use xseq_xml::{
    Axis, Designator, PatternLabel, PatternNodeId, SymbolTable, TreePattern, ValueId, ValueMode,
};

/// Errors from the XPath-subset parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected character.
    Unexpected {
        /// Byte offset.
        offset: usize,
        /// What was found (or `None` at end of input).
        found: Option<char>,
        /// What the parser wanted.
        expected: &'static str,
    },
    /// The expression was empty.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Unexpected {
                offset,
                found,
                expected,
            } => match found {
                Some(c) => write!(f, "unexpected {c:?} at byte {offset}, expected {expected}"),
                None => write!(f, "unexpected end of input, expected {expected}"),
            },
            ParseError::Empty => write!(f, "empty path expression"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses an XPath-subset expression into a tree pattern, interning names
/// and values into `symbols`.
pub fn parse_xpath(input: &str, symbols: &mut SymbolTable) -> Result<TreePattern, ParseError> {
    let mut p = Parser {
        chars: input.char_indices().collect(),
        pos: 0,
        symbols: Syms::Interning(symbols),
    };
    p.parse_query()
}

/// [`parse_xpath`] against a **frozen** symbol table: nothing is interned,
/// so the parse needs only `&SymbolTable` and is safe to run from many
/// query threads at once.
///
/// Returns `Ok(None)` when the expression is syntactically valid but names
/// a designator or value absent from the table — no indexed document can
/// contain that symbol, so the query provably matches nothing.  Syntax
/// errors still surface as `Err`.
///
/// Under the update model (DESIGN.md §11) the table passed here is the
/// **merged symbol view**: one table shared by the frozen segment and the
/// delta overlay.  Names intern on *insert* only — a delta insert that
/// introduces `z` makes `/a/z` resolve on the very next query, while the
/// query path itself stays read-only and lock-free.
pub fn parse_xpath_readonly(
    input: &str,
    symbols: &SymbolTable,
) -> Result<Option<TreePattern>, ParseError> {
    let mut p = Parser {
        chars: input.char_indices().collect(),
        pos: 0,
        symbols: Syms::Readonly {
            table: symbols,
            missing: false,
        },
    };
    let pattern = p.parse_query()?;
    Ok(match p.symbols {
        Syms::Readonly { missing: true, .. } => None,
        _ => Some(pattern),
    })
}

/// [`parse_xpath_readonly`] with its latency (ns) recorded into `sink`.
pub fn parse_xpath_readonly_instrumented(
    input: &str,
    symbols: &SymbolTable,
    sink: &xseq_telemetry::Histogram,
) -> Result<Option<TreePattern>, ParseError> {
    let t0 = std::time::Instant::now();
    let r = parse_xpath_readonly(input, symbols);
    sink.record_duration(t0.elapsed());
    r
}

/// [`parse_xpath_readonly_instrumented`] that additionally emits a
/// `query.parse` span into `trace`; a provably-empty query (unknown symbol)
/// is marked with an `unknown_symbol` attribute on the span.
pub fn parse_xpath_readonly_traced(
    input: &str,
    symbols: &SymbolTable,
    sink: &xseq_telemetry::Histogram,
    trace: &mut xseq_telemetry::ActiveTrace,
) -> Result<Option<TreePattern>, ParseError> {
    let span = trace.start_span("query.parse");
    trace.attr(span, "expr_len", input.len() as u64);
    let r = parse_xpath_readonly_instrumented(input, symbols, sink);
    match &r {
        Ok(Some(pattern)) => trace.attr(span, "pattern_nodes", pattern.len() as u64),
        Ok(None) => trace.attr(span, "unknown_symbol", 1u64),
        Err(_) => {}
    }
    trace.end_span(span);
    r
}

/// [`parse_xpath`] with its latency (ns) recorded into `sink` — the
/// pipeline's `query.parse` phase.  Failed parses are recorded too: the
/// time was spent either way.
pub fn parse_xpath_instrumented(
    input: &str,
    symbols: &mut SymbolTable,
    sink: &xseq_telemetry::Histogram,
) -> Result<TreePattern, ParseError> {
    let t0 = std::time::Instant::now();
    let r = parse_xpath(input, symbols);
    sink.record_duration(t0.elapsed());
    r
}

/// [`parse_xpath_instrumented`] that additionally emits a `query.parse`
/// span into `trace`, attributed with the expression length and (on
/// success) the pattern's node count.
pub fn parse_xpath_traced(
    input: &str,
    symbols: &mut SymbolTable,
    sink: &xseq_telemetry::Histogram,
    trace: &mut xseq_telemetry::ActiveTrace,
) -> Result<TreePattern, ParseError> {
    let span = trace.start_span("query.parse");
    trace.attr(span, "expr_len", input.len() as u64);
    let r = parse_xpath_instrumented(input, symbols, sink);
    if let Ok(pattern) = &r {
        trace.attr(span, "pattern_nodes", pattern.len() as u64);
    }
    trace.end_span(span);
    r
}

impl<'a> Parser<'a> {
    fn parse_query(&mut self) -> Result<TreePattern, ParseError> {
        let p = self;
        p.skip_ws();
        let (axis, label) = p.parse_step_head()?;
        let mut pattern = TreePattern::with_root_axis(label, axis);
        let mut spine = pattern.root_id();
        p.parse_predicates(&mut pattern, spine)?;
        loop {
            p.skip_ws();
            if p.eof() {
                return Ok(pattern);
            }
            let (axis, label) = p.parse_step_head()?;
            spine = pattern.add(spine, axis, label);
            p.parse_predicates(&mut pattern, spine)?;
        }
    }
}

/// Symbol access for the parser: interning (patterns may introduce new
/// names) or read-only against a frozen table (the shared-read query path,
/// where an unknown name proves the query matches no indexed document).
enum Syms<'a> {
    Interning(&'a mut SymbolTable),
    Readonly {
        table: &'a SymbolTable,
        /// Set on a lookup miss; the parse continues (so syntax errors
        /// still surface) but the pattern is discarded by the caller.
        missing: bool,
    },
}

impl Syms<'_> {
    fn value_mode(&self) -> ValueMode {
        match self {
            Syms::Interning(t) => t.values.mode(),
            Syms::Readonly { table, .. } => table.values.mode(),
        }
    }

    fn designator(&mut self, name: &str) -> Designator {
        match self {
            Syms::Interning(t) => t.designator(name),
            Syms::Readonly { table, missing } => {
                table.lookup_designator(name).unwrap_or_else(|| {
                    *missing = true;
                    Designator(u32::MAX)
                })
            }
        }
    }

    fn value(&mut self, v: &str) -> ValueId {
        match self {
            Syms::Interning(t) => t.values.intern(v),
            Syms::Readonly { table, missing } => table.values.lookup(v).unwrap_or_else(|| {
                *missing = true;
                ValueId(u32::MAX)
            }),
        }
    }

    /// Per-character value chain for `Chars` mode (terminated unless
    /// `prefix_only`); an unmapped character in read-only mode marks the
    /// query provably empty.
    fn value_chain(&mut self, v: &str, prefix_only: bool) -> Vec<ValueId> {
        match self {
            Syms::Interning(t) => {
                if prefix_only {
                    t.values.chain_prefix(v)
                } else {
                    t.values.chain(v)
                }
            }
            Syms::Readonly { table, missing } => {
                let chain = if prefix_only {
                    table.values.chain_prefix_readonly(v)
                } else {
                    table.values.chain_readonly(v)
                };
                chain.unwrap_or_else(|| {
                    *missing = true;
                    Vec::new()
                })
            }
        }
    }
}

struct Parser<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    symbols: Syms<'a>,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or_else(|| {
                self.chars
                    .last()
                    .map(|&(o, c)| o + c.len_utf8())
                    .unwrap_or(0)
            })
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn err(&self, expected: &'static str) -> ParseError {
        ParseError::Unexpected {
            offset: self.offset(),
            found: self.peek(),
            expected,
        }
    }

    /// Parses `('/' | '//') nametest`, returning axis and label.
    fn parse_step_head(&mut self) -> Result<(Axis, PatternLabel), ParseError> {
        self.skip_ws();
        if self.peek() != Some('/') {
            return Err(self.err("'/' or '//'"));
        }
        self.pos += 1;
        let axis = if self.peek() == Some('/') {
            self.pos += 1;
            Axis::Descendant
        } else {
            Axis::Child
        };
        self.skip_ws();
        // tolerate "/[pred]" (the paper writes /book/[key='Maier']/author):
        // a missing name before '[' means the predicate applies to the
        // previous step — signalled to the caller via Wild marker? Instead,
        // treat "/[" as if the slash were absent by rewinding; the caller
        // sees no new step.  Simpler: skip the stray slash by parsing the
        // name as AnyElem only for explicit '*'.
        let label = self.parse_nametest()?;
        Ok((axis, label))
    }

    fn parse_nametest(&mut self) -> Result<PatternLabel, ParseError> {
        self.skip_ws();
        if self.peek() == Some('*') {
            self.pos += 1;
            return Ok(PatternLabel::AnyElem);
        }
        if self.peek() == Some('@') {
            self.pos += 1;
        }
        let name = self.parse_name()?;
        Ok(PatternLabel::Elem(self.symbols.designator(&name)))
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':' {
                out.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        if out.is_empty() {
            return Err(self.err("a name"));
        }
        Ok(out)
    }

    /// Parses zero or more `[...]` predicates attached to `node`.
    fn parse_predicates(
        &mut self,
        pattern: &mut TreePattern,
        node: PatternNodeId,
    ) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            // the paper's stray-slash form: "/book/[key='Maier']" — accept a
            // '/' immediately followed by '['
            let mark = self.pos;
            if self.peek() == Some('/') {
                self.pos += 1;
                self.skip_ws();
                if self.peek() != Some('[') {
                    self.pos = mark;
                    return Ok(());
                }
            }
            if self.peek() != Some('[') {
                return Ok(());
            }
            self.pos += 1;
            self.parse_predicate_body(pattern, node)?;
            self.skip_ws();
            if self.bump() != Some(']') {
                return Err(self.err("']'"));
            }
        }
    }

    fn parse_predicate_body(
        &mut self,
        pattern: &mut TreePattern,
        node: PatternNodeId,
    ) -> Result<(), ParseError> {
        self.skip_ws();
        // optional leading "./" or "."
        if self.peek() == Some('.') {
            self.pos += 1;
        }
        // `text = 'v'` / `text ^= 'v'` (starts-with) special forms
        let mark = self.pos;
        if let Ok(word) = self.parse_name() {
            if word == "text" {
                self.skip_ws();
                if let Some(prefix_only) = self.parse_eq_op() {
                    let v = self.parse_value()?;
                    self.attach_value_test(pattern, node, &v, prefix_only);
                    return Ok(());
                }
            }
        }
        self.pos = mark;

        // relative path branch: steps with optional leading axis (default
        // child), e.g. `seller/person` or `//keyword` or `*/age`; each step
        // may carry nested predicates, as in the paper's
        // `/Project[Research[Loc=newyork]]/Develop[Loc=boston]`.
        let mut cur = node;
        let mut first = true;
        loop {
            self.skip_ws();
            let axis = if self.peek() == Some('/') {
                self.pos += 1;
                if self.peek() == Some('/') {
                    self.pos += 1;
                    Axis::Descendant
                } else {
                    Axis::Child
                }
            } else if first {
                Axis::Child
            } else {
                break;
            };
            let label = self.parse_nametest()?;
            cur = pattern.add(cur, axis, label);
            first = false;
            self.parse_predicates(pattern, cur)?;
        }
        self.skip_ws();
        if let Some(prefix_only) = self.parse_eq_op() {
            let v = self.parse_value()?;
            self.attach_value_test(pattern, cur, &v, prefix_only);
        }
        Ok(())
    }

    /// Parses `=` (exact) or `^=` (starts-with), returning
    /// `Some(prefix_only)`; `None` when neither operator follows.
    fn parse_eq_op(&mut self) -> Option<bool> {
        self.skip_ws();
        match self.peek() {
            Some('=') => {
                self.pos += 1;
                Some(false)
            }
            Some('^') => {
                let mark = self.pos;
                self.pos += 1;
                if self.peek() == Some('=') {
                    self.pos += 1;
                    Some(true)
                } else {
                    self.pos = mark;
                    None
                }
            }
            _ => None,
        }
    }

    /// Attaches a value test under `node` per the value mode: a single leaf
    /// for `Intern`/`Hashed` (where `^=` degrades to `=` — whole values are
    /// atomic designators), or a per-character chain for `Chars`, terminated
    /// unless `prefix_only` (the paper's second representation: "allow
    /// subsequence matching inside the attribute values").
    fn attach_value_test(
        &mut self,
        pattern: &mut TreePattern,
        node: PatternNodeId,
        value: &str,
        prefix_only: bool,
    ) {
        match self.symbols.value_mode() {
            ValueMode::Intern | ValueMode::Hashed { .. } => {
                let vid = self.symbols.value(value);
                pattern.add(node, Axis::Child, PatternLabel::Value(vid));
            }
            ValueMode::Chars => {
                let mut cur = node;
                for v in self.symbols.value_chain(value, prefix_only) {
                    cur = pattern.add(cur, Axis::Child, PatternLabel::Value(v));
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let open = self.bump().ok_or_else(|| self.err("a quoted value"))?;
        let close = match open {
            '\'' => '\'',
            '"' => '"',
            '‘' => '’',
            '’' => '’', // the paper sometimes opens with a right quote
            _ => return Err(self.err("a quoted value")),
        };
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("closing quote")),
                Some(c) if c == close => return Ok(out),
                Some(c) => out.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::ValueMode;

    fn st() -> SymbolTable {
        SymbolTable::with_value_mode(ValueMode::Intern)
    }

    #[test]
    fn simple_path() {
        let mut s = st();
        let q = parse_xpath("/inproceedings/title", &mut s).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.axis(0), Axis::Child);
        assert_eq!(q.render(&s), "/inproceedings/title");
    }

    #[test]
    fn readonly_parse_resolves_names_interned_after_the_fact() {
        // The merged-symbol-view contract of the update model: a name
        // unknown at one point parses to `Ok(None)` (provably empty), and
        // once *some* ingest path interns it — never the query path — the
        // same expression resolves to a pattern.
        let mut s = st();
        s.elem("a");
        assert!(parse_xpath_readonly("/a/z", &s).unwrap().is_none());
        s.elem("z");
        let q = parse_xpath_readonly("/a/z", &s)
            .unwrap()
            .expect("resolves now");
        assert_eq!(q.len(), 2);
        // Same for values.
        assert!(parse_xpath_readonly("/a[text='x']", &s).unwrap().is_none());
        s.values.intern("x");
        assert!(parse_xpath_readonly("/a[text='x']", &s).unwrap().is_some());
    }

    #[test]
    fn descendant_root() {
        let mut s = st();
        let q = parse_xpath("//author[text='David']", &mut s).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.axis(0), Axis::Descendant);
        let v = s.values.lookup("David").unwrap();
        assert_eq!(q.label(1), PatternLabel::Value(v));
    }

    #[test]
    fn star_step() {
        let mut s = st();
        let q = parse_xpath("/*/author[text='David']", &mut s).unwrap();
        assert_eq!(q.label(0), PatternLabel::AnyElem);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn paper_q1_structure() {
        let mut s = st();
        let q = parse_xpath(
            "/site//item[location='United States']/mail/date[text='07/05/2000']",
            &mut s,
        )
        .unwrap();
        // nodes: site, item, location, 'United States', mail, date, '07/05/2000'
        assert_eq!(q.len(), 7);
        let site = q.root_id();
        assert_eq!(q.children(site).len(), 1);
        let item = q.children(site)[0];
        assert_eq!(q.axis(item), Axis::Descendant);
        assert_eq!(q.children(item).len(), 2, "location branch + mail spine");
    }

    #[test]
    fn paper_q2_structure() {
        let mut s = st();
        let q = parse_xpath("/site//person/*/age[text='32']", &mut s).unwrap();
        assert_eq!(q.len(), 5);
        // site → person(desc) → *(child) → age(child) → '32'
        let star = 2;
        assert_eq!(q.label(star), PatternLabel::AnyElem);
    }

    #[test]
    fn paper_q3_structure() {
        let mut s = st();
        let q = parse_xpath(
            "//closed_auction[seller/person='person11304']/date[text='12/15/1999']",
            &mut s,
        )
        .unwrap();
        // closed_auction, seller, person, 'person11304', date, '12/15/1999'
        assert_eq!(q.len(), 6);
        let ca = q.root_id();
        assert_eq!(q.axis(ca), Axis::Descendant);
        assert_eq!(q.children(ca).len(), 2);
    }

    #[test]
    fn stray_slash_before_predicate() {
        // the paper's /book/[key='Maier']/author
        let mut s = st();
        let q = parse_xpath("/book/[key='Maier']/author", &mut s).unwrap();
        assert_eq!(q.len(), 4);
        let book = q.root_id();
        assert_eq!(q.children(book).len(), 2);
        let rendered = q.render(&s);
        assert!(rendered.contains("book"), "{rendered}");
        assert!(rendered.contains("author"), "{rendered}");
    }

    #[test]
    fn typographic_quotes() {
        let mut s = st();
        let q = parse_xpath("/site//item[location=‘United States’]", &mut s).unwrap();
        let v = s.values.lookup("United States").unwrap();
        assert!(q.node_ids().any(|n| q.label(n) == PatternLabel::Value(v)));
    }

    #[test]
    fn descendant_inside_predicate() {
        let mut s = st();
        let q = parse_xpath("/a[//b='x']", &mut s).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.axis(1), Axis::Descendant);
    }

    #[test]
    fn multiple_predicates() {
        let mut s = st();
        let q = parse_xpath("/a[b='1'][c='2']/d", &mut s).unwrap();
        // a, b, '1', c, '2', d
        assert_eq!(q.len(), 6);
        assert_eq!(q.children(q.root_id()).len(), 3);
    }

    #[test]
    fn attribute_syntax_accepted() {
        let mut s = st();
        let q = parse_xpath("/item[@id='7']", &mut s).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn existence_predicate_without_value() {
        let mut s = st();
        let q = parse_xpath("/a[b/c]", &mut s).unwrap();
        assert_eq!(q.len(), 3);
        // c has no value child
        assert!(q.children(2).is_empty());
    }

    #[test]
    fn nested_predicates_paper_section31() {
        // /Project[Research[Loc='newyork']]/Develop[Loc='boston']
        let mut s = st();
        let q = parse_xpath(
            "/Project[Research[Loc='newyork']]/Develop[Loc='boston']",
            &mut s,
        )
        .unwrap();
        // Project, Research, Loc, 'newyork', Develop, Loc, 'boston'
        assert_eq!(q.len(), 7);
        let root = q.root_id();
        assert_eq!(q.children(root).len(), 2);
        let research = q.children(root)[0];
        let develop = q.children(root)[1];
        assert_eq!(q.children(research).len(), 1);
        let loc1 = q.children(research)[0];
        assert_eq!(q.children(loc1).len(), 1, "value under the nested Loc");
        assert_eq!(q.children(develop).len(), 1);
    }

    #[test]
    fn deeply_nested_predicates() {
        let mut s = st();
        let q = parse_xpath("/a[b[c[d='x']]]/e", &mut s).unwrap();
        // a, b, c, d, 'x', e
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn errors() {
        let mut s = st();
        assert!(parse_xpath("", &mut s).is_err());
        assert!(parse_xpath("a/b", &mut s).is_err(), "must start with /");
        assert!(parse_xpath("/a[b='x'", &mut s).is_err(), "unclosed bracket");
        assert!(parse_xpath("/a[b='x]", &mut s).is_err(), "unclosed quote");
        assert!(parse_xpath("/a/", &mut s).is_err(), "trailing slash");
    }

    #[test]
    fn whitespace_tolerated() {
        let mut s = st();
        let q = parse_xpath("  /a [ b = 'x' ] / c ", &mut s).unwrap();
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn readonly_parse_matches_interning_parse() {
        let mut s = st();
        // intern everything the queries need, as indexing real data would
        for expr in [
            "/site//item[location='United States']/mail/date[text='07/05/2000']",
            "/a[b='1'][c='2']/d",
            "/*/author[text='David']",
        ] {
            parse_xpath(expr, &mut s).unwrap();
        }
        for expr in [
            "/site//item[location='United States']/mail/date[text='07/05/2000']",
            "/a[b='1'][c='2']/d",
            "/*/author[text='David']",
        ] {
            let interned = parse_xpath(expr, &mut s).unwrap();
            let readonly = parse_xpath_readonly(expr, &s)
                .unwrap()
                .expect("all symbols known");
            assert_eq!(interned.len(), readonly.len(), "{expr}");
            for n in interned.node_ids() {
                assert_eq!(interned.label(n), readonly.label(n), "{expr} node {n}");
                assert_eq!(interned.axis(n), readonly.axis(n), "{expr} node {n}");
            }
        }
    }

    #[test]
    fn readonly_parse_unknown_symbol_is_none() {
        let mut s = st();
        parse_xpath("/a[b='1']", &mut s).unwrap();
        let before = s.designator_count();
        assert!(parse_xpath_readonly("/a/zzz", &s).unwrap().is_none());
        assert!(parse_xpath_readonly("/a[b='unseen']", &s)
            .unwrap()
            .is_none());
        assert_eq!(s.designator_count(), before, "nothing interned");
        // syntax errors still surface
        assert!(parse_xpath_readonly("/a[b='x'", &s).is_err());
    }

    #[test]
    fn readonly_parse_chars_mode_chains() {
        let mut s = SymbolTable::with_value_mode(ValueMode::Chars);
        let interned = parse_xpath("/a[text='xy']", &mut s).unwrap();
        let readonly = parse_xpath_readonly("/a[text='xy']", &s)
            .unwrap()
            .expect("chain known");
        assert_eq!(interned.len(), readonly.len());
        assert!(parse_xpath_readonly("/a[text='xz']", &s).unwrap().is_none());
    }
}
