//! Model-checking the lock-free telemetry primitives: every interleaving
//! (exhaustive where the space is small, seeded sampling beyond) of scripted
//! producer/consumer threads runs against a reference model — no schedule
//! may lose, duplicate or reorder an entry.

use std::sync::Arc;
use xseq_telemetry::sched::check_ring_model;
use xseq_telemetry::{
    check_counter, check_ring, CounterOp, MetricsRegistry, RingOp, Schedules, Watchdog,
};

use CounterOp::{Add, Snapshot};
use RingOp::{ForcePush, Pop, Push};

#[test]
fn exhaustive_two_producers_one_consumer() {
    // 3 + 3 + 3 ops = 1680 schedules: exhaustive.
    let threads = vec![
        vec![Push(1), Push(2), Push(3)],
        vec![Push(10), Push(20), Push(30)],
        vec![Pop, Pop, Pop],
    ];
    let checked = check_ring(&threads, 4, 2_000, 1).expect("no schedule may diverge");
    assert_eq!(checked, 1680);
    assert!(Schedules::new(&[3, 3, 3], 2_000, 1).is_exhaustive());
}

#[test]
fn exhaustive_full_ring_boundary() {
    // Capacity 2 (the minimum) with 3 pushes in flight: many schedules hit
    // the full boundary, many the empty one.
    let threads = vec![vec![Push(1), Push(2)], vec![Pop, Pop], vec![Push(3)]];
    let checked = check_ring(&threads, 2, 1_000, 1).unwrap();
    assert_eq!(checked, 30);
}

#[test]
fn capacity_one_is_rounded_up() {
    // Regression for a real bug the exhaustive checker found: with a single
    // slot the lap stamps collide (`pos + 1 == pos + capacity`), so a second
    // push overwrote the unconsumed value and pop span forever.  The ring
    // now enforces a minimum capacity of 2; the checker must agree with it.
    let threads = vec![vec![Push(1), Push(2)], vec![Pop, Pop]];
    check_ring(&threads, 1, 1_000, 1).unwrap();
}

#[test]
fn exhaustive_force_push_eviction() {
    // force_push on a tiny ring: every schedule exercises eviction order.
    let threads = vec![
        vec![ForcePush(1), ForcePush(2), ForcePush(3)],
        vec![ForcePush(10), Pop],
        vec![Pop],
    ];
    let checked = check_ring(&threads, 2, 1_000, 1).unwrap();
    assert_eq!(checked, 60);
}

#[test]
fn sampled_exploration_of_a_large_space() {
    // 6 × 4 threads = far beyond the limit: 500 seeded samples instead.
    let threads = vec![
        vec![Push(1), Push(2), Push(3), ForcePush(4), Push(5), Pop],
        vec![Push(11), Pop, Push(12), Pop, Push(13), Pop],
        vec![ForcePush(21), ForcePush(22), Pop, Push(23), Pop, Pop],
        vec![Pop, Push(31), Pop, ForcePush(32), Push(33), Pop],
    ];
    let sched = Schedules::new(&[6, 6, 6, 6], 500, 42);
    assert!(!sched.is_exhaustive());
    assert!(sched.count().unwrap() > 1_000_000);
    let checked = check_ring(&threads, 3, 500, 42).unwrap();
    assert_eq!(checked, 500);
}

#[test]
fn wraparound_laps_under_all_schedules() {
    // More traffic than capacity × several laps through a capacity-2 ring.
    let threads = vec![
        vec![Push(1), Pop, Push(2), Pop],
        vec![Push(3), Pop, Push(4), Pop],
    ];
    let checked = check_ring(&threads, 2, 1_000, 9).unwrap();
    assert_eq!(checked, 70);
}

#[test]
fn checker_detects_a_wrong_model() {
    // Self-test: a reference model of a different capacity must diverge —
    // the harness is capable of failing.
    let threads = vec![vec![Push(1), Push(2), Push(3)], vec![Pop]];
    let err = check_ring_model(&threads, 2, 3, 1_000, 1).unwrap_err();
    assert!(
        err.contains("schedule"),
        "failure names its schedule: {err}"
    );
}

/// Declarative reference for the watchdog's stall/recovery hysteresis,
/// recomputed from the full observation history: a stall trigger is a
/// silent run of ≥ `stall_ticks`, a clear is parking or a progress run of
/// ≥ `recover_ticks`, and the state is whichever trigger came last.
fn reference_stalled(history: &[(bool, bool)], stall_ticks: u64, recover_ticks: u64) -> bool {
    let mut stalled = false;
    let mut silent_run = 0u64;
    let mut progress_run = 0u64;
    for &(progressed, active) in history {
        if progressed {
            silent_run = 0;
            progress_run += 1;
            if stalled && (!active || progress_run >= recover_ticks) {
                stalled = false;
            }
        } else {
            progress_run = 0;
            silent_run += 1;
            if silent_run >= stall_ticks {
                stalled = true;
            }
        }
    }
    stalled
}

#[test]
fn watchdog_hysteresis_matches_reference_under_all_interleavings() {
    #[derive(Clone, Copy, Debug)]
    enum Op {
        Beat,
        SetActive(bool),
        Tick,
    }
    // One worker thread (activate, two beats, park) interleaved every way
    // with five monitor ticks: 126 exhaustive schedules covering stalls
    // that begin before, between and after the beats.
    let threads: Vec<Vec<Op>> = vec![
        vec![
            Op::SetActive(true),
            Op::Beat,
            Op::Beat,
            Op::SetActive(false),
        ],
        vec![Op::Tick; 5],
    ];
    let scheds = Schedules::new(&[4, 5], 3_000, 7);
    assert!(scheds.is_exhaustive());
    let checked = scheds.for_each(|sched| {
        let reg = Arc::new(MetricsRegistry::new());
        let dog = Watchdog::with_hysteresis(reg.clone(), 1, 2);
        let w = dog.register("model");
        let mut idx = [0usize; 2];
        let mut history: Vec<(bool, bool)> = Vec::new();
        let mut last_beat = 0u64;
        for &t in sched {
            let op = threads[t][idx[t]];
            idx[t] += 1;
            match op {
                Op::Beat => w.beat(),
                Op::SetActive(a) => w.set_active(a),
                Op::Tick => {
                    // Observe exactly what the watchdog will observe.
                    let beat = reg.snapshot().counter("health.model.heartbeat");
                    let active = reg.gauge("health.model.active").get() > 0;
                    let progressed = !active || beat != last_beat;
                    last_beat = beat;
                    history.push((progressed, active));
                    dog.tick();
                    let got = reg.gauge("health.model.stalled").get() == 1;
                    let want = reference_stalled(&history, 1, 2);
                    assert_eq!(
                        got, want,
                        "schedule {sched:?} diverged; history {history:?}"
                    );
                }
            }
        }
    });
    assert_eq!(checked, 126);
}

#[test]
fn counter_snapshots_are_monotone_and_exact() {
    let threads = vec![
        vec![Add(1), Add(2), Snapshot, Add(3)],
        vec![Snapshot, Add(10), Snapshot],
        vec![Add(100), Snapshot],
    ];
    let checked = check_counter(&threads, 5_000, 3).unwrap();
    assert_eq!(checked, 1260);
}

#[test]
fn counter_sampled_beyond_the_limit() {
    let threads: Vec<Vec<CounterOp>> = (0..5)
        .map(|t| (0..8).map(|i| Add(t * 8 + i + 1)).collect())
        .collect();
    let checked = check_counter(&threads, 200, 11).unwrap();
    assert_eq!(checked, 200);
}
