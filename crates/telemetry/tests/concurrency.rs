//! Model-checking the lock-free telemetry primitives: every interleaving
//! (exhaustive where the space is small, seeded sampling beyond) of scripted
//! producer/consumer threads runs against a reference model — no schedule
//! may lose, duplicate or reorder an entry.

use xseq_telemetry::sched::check_ring_model;
use xseq_telemetry::{check_counter, check_ring, CounterOp, RingOp, Schedules};

use CounterOp::{Add, Snapshot};
use RingOp::{ForcePush, Pop, Push};

#[test]
fn exhaustive_two_producers_one_consumer() {
    // 3 + 3 + 3 ops = 1680 schedules: exhaustive.
    let threads = vec![
        vec![Push(1), Push(2), Push(3)],
        vec![Push(10), Push(20), Push(30)],
        vec![Pop, Pop, Pop],
    ];
    let checked = check_ring(&threads, 4, 2_000, 1).expect("no schedule may diverge");
    assert_eq!(checked, 1680);
    assert!(Schedules::new(&[3, 3, 3], 2_000, 1).is_exhaustive());
}

#[test]
fn exhaustive_full_ring_boundary() {
    // Capacity 2 (the minimum) with 3 pushes in flight: many schedules hit
    // the full boundary, many the empty one.
    let threads = vec![vec![Push(1), Push(2)], vec![Pop, Pop], vec![Push(3)]];
    let checked = check_ring(&threads, 2, 1_000, 1).unwrap();
    assert_eq!(checked, 30);
}

#[test]
fn capacity_one_is_rounded_up() {
    // Regression for a real bug the exhaustive checker found: with a single
    // slot the lap stamps collide (`pos + 1 == pos + capacity`), so a second
    // push overwrote the unconsumed value and pop span forever.  The ring
    // now enforces a minimum capacity of 2; the checker must agree with it.
    let threads = vec![vec![Push(1), Push(2)], vec![Pop, Pop]];
    check_ring(&threads, 1, 1_000, 1).unwrap();
}

#[test]
fn exhaustive_force_push_eviction() {
    // force_push on a tiny ring: every schedule exercises eviction order.
    let threads = vec![
        vec![ForcePush(1), ForcePush(2), ForcePush(3)],
        vec![ForcePush(10), Pop],
        vec![Pop],
    ];
    let checked = check_ring(&threads, 2, 1_000, 1).unwrap();
    assert_eq!(checked, 60);
}

#[test]
fn sampled_exploration_of_a_large_space() {
    // 6 × 4 threads = far beyond the limit: 500 seeded samples instead.
    let threads = vec![
        vec![Push(1), Push(2), Push(3), ForcePush(4), Push(5), Pop],
        vec![Push(11), Pop, Push(12), Pop, Push(13), Pop],
        vec![ForcePush(21), ForcePush(22), Pop, Push(23), Pop, Pop],
        vec![Pop, Push(31), Pop, ForcePush(32), Push(33), Pop],
    ];
    let sched = Schedules::new(&[6, 6, 6, 6], 500, 42);
    assert!(!sched.is_exhaustive());
    assert!(sched.count().unwrap() > 1_000_000);
    let checked = check_ring(&threads, 3, 500, 42).unwrap();
    assert_eq!(checked, 500);
}

#[test]
fn wraparound_laps_under_all_schedules() {
    // More traffic than capacity × several laps through a capacity-2 ring.
    let threads = vec![
        vec![Push(1), Pop, Push(2), Pop],
        vec![Push(3), Pop, Push(4), Pop],
    ];
    let checked = check_ring(&threads, 2, 1_000, 9).unwrap();
    assert_eq!(checked, 70);
}

#[test]
fn checker_detects_a_wrong_model() {
    // Self-test: a reference model of a different capacity must diverge —
    // the harness is capable of failing.
    let threads = vec![vec![Push(1), Push(2), Push(3)], vec![Pop]];
    let err = check_ring_model(&threads, 2, 3, 1_000, 1).unwrap_err();
    assert!(
        err.contains("schedule"),
        "failure names its schedule: {err}"
    );
}

#[test]
fn counter_snapshots_are_monotone_and_exact() {
    let threads = vec![
        vec![Add(1), Add(2), Snapshot, Add(3)],
        vec![Snapshot, Add(10), Snapshot],
        vec![Add(100), Snapshot],
    ];
    let checked = check_counter(&threads, 5_000, 3).unwrap();
    assert_eq!(checked, 1260);
}

#[test]
fn counter_sampled_beyond_the_limit() {
    let threads: Vec<Vec<CounterOp>> = (0..5)
        .map(|t| (0..8).map(|i| Add(t * 8 + i + 1)).collect())
        .collect();
    let checked = check_counter(&threads, 200, 11).unwrap();
    assert_eq!(checked, 200);
}
