//! Integration tests for the flight recorder and the P² estimator:
//! multi-thread journal retention/ordering (mirroring the slow-log tests)
//! and property tests of [`P2Quantile`] against exact sorted-sample
//! quantiles on random streams.

use proptest::prelude::*;
use xseq_telemetry::{Event, EventJournal, P2Quantile, Severity};

/// Exact nearest-rank quantile of a sorted sample set.
fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// splitmix64, the repo's standard test PRNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    /// On uniform random streams the P² estimate lands inside the exact
    /// quantile envelope `[quantile(p − 0.08), quantile(p + 0.08)]` — the
    /// algorithm's documented accuracy regime — and always inside the
    /// observed range.
    #[test]
    fn p2_tracks_exact_quantiles_on_random_streams(
        seed in 0u64..u64::MAX,
        n in 64usize..600,
        q_idx in 0usize..3,
    ) {
        let p = [0.5, 0.9, 0.99][q_idx];
        let mut est = P2Quantile::new(p);
        let mut state = seed;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let v = (splitmix64(&mut state) % 1_000_000) as f64;
            samples.push(v);
            est.observe(v);
        }
        let v = est.value().expect("non-empty stream");
        let mut sorted = samples;
        sorted.sort_by(f64::total_cmp);
        let lo = exact_quantile(&sorted, (p - 0.08).max(0.0));
        let hi = exact_quantile(&sorted, (p + 0.08).min(1.0));
        prop_assert!(
            (sorted[0]..=sorted[sorted.len() - 1]).contains(&v),
            "p={} estimate {} escaped the observed range", p, v
        );
        prop_assert!(
            (lo..=hi).contains(&v),
            "p={} n={} estimate {} outside exact envelope [{}, {}]", p, n, v, lo, hi
        );
    }

    /// Below five observations the estimator is *exactly* the nearest-rank
    /// quantile, for any values and any p.
    #[test]
    fn p2_is_exact_for_tiny_streams(
        samples in proptest::collection::vec(0u64..1_000_000, 1..5),
        p in 0.0f64..1.0,
    ) {
        let mut est = P2Quantile::new(p);
        for &s in &samples {
            est.observe(s as f64);
        }
        let mut sorted: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(est.value(), Some(exact_quantile(&sorted, est.p())));
    }
}

#[test]
fn event_journal_retention_under_thread_load() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 100;
    const CAPACITY: usize = 32;
    let journal = EventJournal::new(CAPACITY);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let journal = &journal;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    journal.record(
                        Event::new("ingest.insert")
                            .severity(Severity::Debug)
                            .attr("thread", t as u64)
                            .attr("i", i as u64),
                    );
                }
            });
        }
    });
    let total = (THREADS * PER_THREAD) as u64;
    let counts = journal.counts();
    assert_eq!(counts.recorded, total, "no record lost");
    assert_eq!(counts.by_severity, [total, 0, 0, 0]);
    let events = journal.events();
    assert_eq!(
        events.len(),
        CAPACITY,
        "journal settles at exactly its capacity"
    );
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), CAPACITY, "retained events are distinct");
    for e in &events {
        assert_eq!(e.name, "ingest.insert");
        assert_eq!(e.severity, Severity::Debug);
        assert_eq!(e.attrs.len(), 2, "structure survives contention");
        assert!((1..=total).contains(&e.seq));
    }
    // Reads are stable and non-destructive.
    assert_eq!(journal.events().len(), CAPACITY);
}

#[test]
fn single_writer_ordering_is_preserved() {
    let journal = EventJournal::new(4);
    for i in 0..10u64 {
        journal.record(Event::new("compact.start").attr("round", i));
    }
    let events = journal.events();
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![7, 8, 9, 10], "oldest first, newest retained");
    let rounds: Vec<u64> = events
        .iter()
        .map(|e| match &e.attrs[0].1 {
            xseq_telemetry::AttrValue::U64(v) => *v,
            other => panic!("unexpected attr {other:?}"),
        })
        .collect();
    assert_eq!(rounds, vec![6, 7, 8, 9]);
}

#[test]
fn jsonl_export_is_line_per_event() {
    let journal = EventJournal::new(8);
    journal.record(Event::new("ingest.build").attr("docs", 3u64));
    journal.record(
        Event::new("integrity.violation")
            .severity(Severity::Error)
            .message("node count drift"),
    );
    let jsonl = journal.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("{\"seq\":1,"));
    assert!(lines[0].contains("\"name\":\"ingest.build\""));
    assert!(lines[1].contains("\"severity\":\"error\""));
    assert!(lines[1].contains("\"message\":\"node count drift\""));
    for l in &lines {
        assert!(l.starts_with('{') && l.ends_with('}'));
    }
}
