//! Integration tests for the telemetry crate: the quantile-bracketing
//! guarantee, counter behaviour under thread contention, and
//! snapshot/delta round-trips.

use proptest::prelude::*;
use xseq_telemetry::{Histogram, MetricValue, MetricsRegistry};

proptest! {
    /// The documented contract of `quantile_bounds`: for any sample set and
    /// any q, the true nearest-rank quantile lies within the returned
    /// bucket bounds.
    #[test]
    fn quantile_bounds_bracket_the_true_quantile(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let (lo, hi) = h.snapshot().quantile_bounds(q).expect("non-empty");
        prop_assert!(
            lo <= truth && truth <= hi,
            "q={} true quantile {} outside bounds ({}, {})", q, truth, lo, hi
        );
    }

    /// Point estimates stay inside the observed value range.
    #[test]
    fn quantile_estimates_stay_within_min_max(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..100),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let s = h.snapshot();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        for est in [s.p50(), s.p90(), s.p99()] {
            let v = est.expect("non-empty");
            prop_assert!(v >= min && v <= max, "{} outside [{}, {}]", v, min, max);
        }
    }
}

#[test]
fn counter_increments_from_many_threads() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    let reg = MetricsRegistry::new();
    let c = reg.counter("contended.events");
    let h = reg.histogram("contended.lat");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(i);
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS * PER_THREAD, "no increment lost");
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, PER_THREAD - 1);
}

#[test]
fn snapshot_delta_roundtrip() {
    let reg = MetricsRegistry::new();
    let c = reg.counter("w.ops");
    let g = reg.gauge("w.level");
    let h = reg.histogram("w.lat");
    c.add(5);
    g.set(2);
    h.record(10);
    h.record(3_000);
    let s1 = reg.snapshot();
    c.add(11);
    g.set(-7);
    h.record(10);
    h.record(40_000);
    h.record(40_001);
    let s2 = reg.snapshot();

    let d = s2.delta(&s1);
    // counters recompose: earlier + delta == later
    assert_eq!(
        s1.counter("w.ops") + d.counter("w.ops"),
        s2.counter("w.ops")
    );
    assert_eq!(d.counter("w.ops"), 11);
    // gauges keep the later value
    assert_eq!(d.get("w.level"), Some(&MetricValue::Gauge(-7)));
    // histograms recompose bucket by bucket
    let (h1, h2, hd) = (
        s1.histogram("w.lat").unwrap(),
        s2.histogram("w.lat").unwrap(),
        d.histogram("w.lat").unwrap(),
    );
    assert_eq!(hd.count, 3);
    assert_eq!(h1.count + hd.count, h2.count);
    assert_eq!(h1.sum + hd.sum, h2.sum);
    for b in 0..xseq_telemetry::BUCKETS {
        assert_eq!(h1.buckets[b] + hd.buckets[b], h2.buckets[b], "bucket {b}");
    }
    // delta of a snapshot with itself is empty
    let zero = s2.delta(&s2);
    assert_eq!(zero.counter("w.ops"), 0);
    assert_eq!(zero.histogram("w.lat").unwrap().count, 0);
}

// ---------------------------------------------------------------------------
// Tracing: span-tree invariants, slow-log retention, exporter golden output.
// ---------------------------------------------------------------------------

use std::time::Duration;
use xseq_telemetry::{AttrValue, SpanId, Trace, TraceConfig, TraceId, TraceSpan, Tracer};

/// Span names used by the generated op sequences below.
const SPAN_NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

proptest! {
    /// For any interleaving of `start_span` / `end_span` / `event` — with
    /// `end_span` allowed to target *any* open span, closing whole runs of
    /// abandoned children at once — the sealed trace is a well-formed tree:
    /// parents precede their children in storage order and bracket them in
    /// time, and no span is left open past `total_ns`.
    #[test]
    fn sealed_trace_is_a_well_formed_span_tree(
        ops in proptest::collection::vec((0u8..3, any::<u8>()), 0..60),
    ) {
        let tracer = Tracer::new(TraceConfig {
            sample_rate: 1.0,
            slow_threshold: Duration::ZERO,
            recent_capacity: 64,
            slow_capacity: 64,
        });
        let mut active = tracer.begin("proptest");
        // Mirror of the open-span stack (root at the bottom).
        let mut stack = vec![active.root_span()];
        for (op, pick) in ops {
            match op {
                0 => stack.push(active.start_span(SPAN_NAMES[pick as usize % 3])),
                1 => {
                    if stack.len() > 1 {
                        let at = 1 + pick as usize % (stack.len() - 1);
                        active.end_span(stack[at]);
                        stack.truncate(at);
                    }
                }
                _ => {
                    active.event(SPAN_NAMES[pick as usize % 3]);
                }
            }
        }
        let trace = tracer.finish(active);

        prop_assert_eq!(trace.root().parent, None);
        prop_assert_eq!(trace.root().start_ns, 0);
        prop_assert_eq!(trace.root().end_ns, trace.total_ns);
        for (i, span) in trace.spans.iter().enumerate() {
            prop_assert!(span.start_ns <= span.end_ns);
            prop_assert!(span.end_ns <= trace.total_ns, "span {i} left open");
            match span.parent {
                None => prop_assert_eq!(i, 0, "only the root lacks a parent"),
                Some(p) => {
                    // Parents precede children in storage order ...
                    prop_assert!((p.0 as usize) < i);
                    // ... and bracket them in time.
                    let parent = trace.span(p);
                    prop_assert!(parent.start_ns <= span.start_ns);
                    prop_assert!(span.end_ns <= parent.end_ns);
                }
            }
        }
        // Storage order is start order.
        for w in trace.spans.windows(2) {
            prop_assert!(w[0].start_ns <= w[1].start_ns);
        }
    }
}

/// Draining the ring into the reader buffer keeps finish order: the
/// recent-traces view is always the latest `recent_capacity` traces,
/// oldest first.
#[test]
fn ring_flush_preserves_finish_order() {
    let tracer = Tracer::new(TraceConfig {
        sample_rate: 1.0,
        slow_threshold: Duration::from_secs(3600),
        recent_capacity: 4,
        slow_capacity: 4,
    });
    let mut ids = Vec::new();
    for i in 0..10 {
        let active = tracer.begin(format!("q{i}"));
        ids.push(active.id());
        tracer.finish(active);
        if i == 5 {
            // An interleaved read must not disturb subsequent ordering.
            tracer.recent_traces();
        }
    }
    let got: Vec<TraceId> = tracer.recent_traces().iter().map(|t| t.id).collect();
    assert_eq!(got, ids[6..].to_vec(), "latest 4 finishes, oldest first");
}

/// Eight threads hammering a zero-threshold tracer: every trace counts as
/// slow, the log ends exactly at capacity holding distinct, structurally
/// intact traces, and no retention counter loses an increment.
#[test]
fn slow_log_retention_under_thread_load() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 100;
    const CAPACITY: usize = 32;
    let tracer = Tracer::new(TraceConfig {
        sample_rate: 0.0,
        slow_threshold: Duration::ZERO, // everything is "slow"
        recent_capacity: 8,
        slow_capacity: CAPACITY,
    });
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tracer = &tracer;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let mut active = tracer.begin("load");
                    let sp = active.start_span("work");
                    active.attr(sp, "thread", t as u64);
                    active.attr(sp, "i", i as u64);
                    active.end_span(sp);
                    tracer.finish(active);
                }
            });
        }
    });
    let total = (THREADS * PER_THREAD) as u64;
    let stats = tracer.stats();
    assert_eq!(stats.started, total);
    assert_eq!(stats.slow, total, "no slow-retention increment lost");
    assert_eq!(stats.sampled, 0, "rate 0.0 samples nothing");
    assert!(tracer.recent_traces().is_empty());
    let slow = tracer.slow_queries();
    assert_eq!(slow.len(), CAPACITY, "log settles at exactly its capacity");
    let mut ids: Vec<u64> = slow.iter().map(|t| t.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CAPACITY, "retained traces are distinct");
    for t in &slow {
        assert!(t.slow);
        assert_eq!(t.spans.len(), 2, "root + one work span");
        assert_eq!(t.spans[1].parent, Some(SpanId(0)));
        assert_eq!(t.spans[1].name, "work");
        assert_eq!(t.spans[1].attrs.len(), 2);
    }
}

/// Golden test for the Chrome trace-event exporter: a hand-built trace with
/// fixed nanosecond timestamps serializes to exactly this JSON (µs `ts`/`dur`
/// with a 3-digit ns fraction, root args carrying the trace identity,
/// `otherData` metadata block).
#[test]
fn chrome_json_golden_output() {
    let trace = Trace {
        id: TraceId(7),
        name: "/a/b".to_string(),
        total_ns: 5_000,
        sampled: true,
        slow: false,
        spans: vec![
            TraceSpan {
                name: "query",
                parent: None,
                start_ns: 0,
                end_ns: 5_000,
                attrs: vec![("docs", AttrValue::U64(3))],
            },
            TraceSpan {
                name: "query.parse",
                parent: Some(SpanId(0)),
                start_ns: 100,
                end_ns: 1_100,
                attrs: vec![
                    ("expr_len", AttrValue::U64(4)),
                    ("strategy", AttrValue::Str("prob".to_string())),
                ],
            },
        ],
    };
    let expected = concat!(
        "{\"traceEvents\":[",
        "{\"name\":\"query\",\"cat\":\"xseq\",\"ph\":\"X\",",
        "\"ts\":0.000,\"dur\":5.000,\"pid\":1,\"tid\":1,",
        "\"args\":{\"trace_id\":7,\"query\":\"/a/b\",\"docs\":3}},",
        "{\"name\":\"query.parse\",\"cat\":\"xseq\",\"ph\":\"X\",",
        "\"ts\":0.100,\"dur\":1.000,\"pid\":1,\"tid\":1,",
        "\"args\":{\"expr_len\":4,\"strategy\":\"prob\"}}",
        "],\"displayTimeUnit\":\"ns\",",
        "\"otherData\":{\"trace_id\":7,\"query\":\"/a/b\",\"total_ns\":5000,",
        "\"sampled\":true,\"slow\":false}}",
    );
    assert_eq!(trace.to_chrome_json(), expected);
    // The text renderer agrees on the structure.
    let text = trace.render();
    assert!(text.contains("query.parse"), "render: {text}");
}
