//! Integration tests for the telemetry crate: the quantile-bracketing
//! guarantee, counter behaviour under thread contention, and
//! snapshot/delta round-trips.

use proptest::prelude::*;
use xseq_telemetry::{Histogram, MetricValue, MetricsRegistry};

proptest! {
    /// The documented contract of `quantile_bounds`: for any sample set and
    /// any q, the true nearest-rank quantile lies within the returned
    /// bucket bounds.
    #[test]
    fn quantile_bounds_bracket_the_true_quantile(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let (lo, hi) = h.snapshot().quantile_bounds(q).expect("non-empty");
        prop_assert!(
            lo <= truth && truth <= hi,
            "q={} true quantile {} outside bounds ({}, {})", q, truth, lo, hi
        );
    }

    /// Point estimates stay inside the observed value range.
    #[test]
    fn quantile_estimates_stay_within_min_max(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..100),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let s = h.snapshot();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        for est in [s.p50(), s.p90(), s.p99()] {
            let v = est.expect("non-empty");
            prop_assert!(v >= min && v <= max, "{} outside [{}, {}]", v, min, max);
        }
    }
}

#[test]
fn counter_increments_from_many_threads() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    let reg = MetricsRegistry::new();
    let c = reg.counter("contended.events");
    let h = reg.histogram("contended.lat");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(i);
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS * PER_THREAD, "no increment lost");
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, PER_THREAD - 1);
}

#[test]
fn snapshot_delta_roundtrip() {
    let reg = MetricsRegistry::new();
    let c = reg.counter("w.ops");
    let g = reg.gauge("w.level");
    let h = reg.histogram("w.lat");
    c.add(5);
    g.set(2);
    h.record(10);
    h.record(3_000);
    let s1 = reg.snapshot();
    c.add(11);
    g.set(-7);
    h.record(10);
    h.record(40_000);
    h.record(40_001);
    let s2 = reg.snapshot();

    let d = s2.delta(&s1);
    // counters recompose: earlier + delta == later
    assert_eq!(
        s1.counter("w.ops") + d.counter("w.ops"),
        s2.counter("w.ops")
    );
    assert_eq!(d.counter("w.ops"), 11);
    // gauges keep the later value
    assert_eq!(d.get("w.level"), Some(&MetricValue::Gauge(-7)));
    // histograms recompose bucket by bucket
    let (h1, h2, hd) = (
        s1.histogram("w.lat").unwrap(),
        s2.histogram("w.lat").unwrap(),
        d.histogram("w.lat").unwrap(),
    );
    assert_eq!(hd.count, 3);
    assert_eq!(h1.count + hd.count, h2.count);
    assert_eq!(h1.sum + hd.sum, h2.sum);
    for b in 0..xseq_telemetry::BUCKETS {
        assert_eq!(h1.buckets[b] + hd.buckets[b], h2.buckets[b], "bucket {b}");
    }
    // delta of a snapshot with itself is empty
    let zero = s2.delta(&s2);
    assert_eq!(zero.counter("w.ops"), 0);
    assert_eq!(zero.histogram("w.lat").unwrap().count, 0);
}
