//! Flight recorder: a bounded journal of structured lifecycle events.
//!
//! Metrics say how much, traces say where the time went; the flight
//! recorder says *what happened* — ingest and compaction lifecycle,
//! configuration changes, watchdog stalls, integrity violations, slow
//! queries, anomaly alerts.  Each [`Event`] is a severity-levelled,
//! structured record with typed [`AttrValue`] attributes; the
//! [`EventJournal`] retains the most recent events in the same lock-free
//! [`BoundedRing`] the tracer uses, so recording from the hot path is a
//! single `force_push` and never blocks on readers.
//!
//! Event names follow the span-name grammar (`seg(.seg)*`, segments
//! `[a-z][a-z0-9_]*`), enforced by the xtask lint.  The journal exports as
//! JSON Lines ([`EventJournal::to_jsonl`]) — one self-describing JSON
//! object per line — which is what lands in the diagnostics bundle as
//! `events.jsonl`.

use crate::export::{attr_json, json_string};
use crate::ring::BoundedRing;
use crate::trace::AttrValue;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Event severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-volume lifecycle detail (per-document ingest).
    Debug,
    /// Normal operational milestones (builds, compactions, config changes).
    Info,
    /// Conditions worth an operator's attention (stalls, slow queries,
    /// anomaly alerts).
    Warn,
    /// Invariant violations (integrity check failures).
    Error,
}

impl Severity {
    /// The lowercase wire name (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    fn index(self) -> usize {
        match self {
            Severity::Debug => 0,
            Severity::Info => 1,
            Severity::Warn => 2,
            Severity::Error => 3,
        }
    }
}

/// One structured flight-recorder event.
///
/// Built fluently — `Event::new("compact.finish").attr("docs", 42u64)` —
/// then stamped with a sequence number and journal-relative timestamp by
/// [`EventJournal::record`].  Names are `&'static str` dotted paths from a
/// fixed taxonomy (see DESIGN.md §13), so recording never allocates for
/// the name and the lint can check literals at the call site.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Journal-wide sequence number (1-based), stamped on record.
    pub seq: u64,
    /// Nanoseconds since the journal was created, stamped on record.
    pub elapsed_ns: u64,
    /// Severity level.
    pub severity: Severity,
    /// Dotted event name from the taxonomy (`compact.start`, `query.slow`, …).
    pub name: &'static str,
    /// Free-form human detail (query text, violation summary); may be empty.
    pub message: String,
    /// Typed attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Event {
    /// A new `Info` event named `name` with no message or attributes.
    pub fn new(name: &'static str) -> Self {
        Event {
            seq: 0,
            elapsed_ns: 0,
            severity: Severity::Info,
            name,
            message: String::new(),
            attrs: Vec::new(),
        }
    }

    /// Sets the severity.
    pub fn severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Sets the free-form message.
    pub fn message(mut self, message: impl Into<String>) -> Self {
        self.message = message.into();
        self
    }

    /// Appends a typed attribute.
    pub fn attr(mut self, key: &'static str, value: impl Into<AttrValue>) -> Self {
        self.attrs.push((key, value.into()));
        self
    }

    /// Serializes this event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"elapsed_ns\":{},\"severity\":{},\"name\":{}",
            self.seq,
            self.elapsed_ns,
            json_string(self.severity.as_str()),
            json_string(self.name)
        );
        if !self.message.is_empty() {
            let _ = write!(out, ",\"message\":{}", json_string(&self.message));
        }
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(k), attr_json(v));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Per-severity and total record counts of a journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Events recorded since the journal was created (including evicted).
    pub recorded: u64,
    /// Recorded counts by severity: `[debug, info, warn, error]`.
    pub by_severity: [u64; 4],
}

/// Bounded, lock-free flight-recorder journal.
///
/// Writers `force_push` into a [`BoundedRing`] (evicting the oldest event
/// when full); readers drain the ring into a mutex-guarded buffer, exactly
/// like the tracer's slow-query log, so concurrent recording never blocks.
/// Reads are non-destructive: [`events`](Self::events) returns the retained
/// window oldest-first and can be called repeatedly.
#[derive(Debug)]
pub struct EventJournal {
    capacity: usize,
    started: Instant,
    next_seq: AtomicU64,
    by_severity: [AtomicU64; 4],
    ring: BoundedRing<Arc<Event>>,
    /// Reader-side overflow: the ring drains here on read.  Only readers
    /// lock this — the recording path never does.
    read: Mutex<VecDeque<Arc<Event>>>,
}

impl EventJournal {
    /// A journal retaining the most recent `capacity` events (clamped ≥ 2,
    /// matching the ring's minimum).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        EventJournal {
            capacity,
            started: Instant::now(),
            next_seq: AtomicU64::new(1),
            by_severity: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            ring: BoundedRing::new(capacity),
            read: Mutex::new(VecDeque::new()),
        }
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stamps `event` with its sequence number and journal-relative
    /// timestamp, records it, and returns the shared stamped event.
    pub fn record(&self, mut event: Event) -> Arc<Event> {
        // ORDERING: id — sequence uniqueness needs only fetch_add atomicity.
        event.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        event.elapsed_ns = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // ORDERING: counter — per-severity tallies are independent statistics.
        // PANIC-FREE: Severity::index is 0..4 and by_severity is [_; 4]
        self.by_severity[event.severity.index()].fetch_add(1, Ordering::Relaxed);
        let event = Arc::new(event);
        self.ring.force_push(event.clone());
        event
    }

    /// Record counts so far.
    pub fn counts(&self) -> EventCounts {
        // ORDERING: counter — advisory reads of independent statistics.
        let by_severity = [
            self.by_severity[0].load(Ordering::Relaxed),
            self.by_severity[1].load(Ordering::Relaxed),
            self.by_severity[2].load(Ordering::Relaxed),
            self.by_severity[3].load(Ordering::Relaxed),
        ];
        EventCounts {
            recorded: by_severity.iter().sum(),
            by_severity,
        }
    }

    /// The retained events, oldest first (at most
    /// [`capacity`](Self::capacity), the most recent ones).
    pub fn events(&self) -> Vec<Arc<Event>> {
        let mut buf = self.read.lock().expect("event reader lock");
        while let Some(e) = self.ring.pop() {
            buf.push_back(e);
        }
        while buf.len() > self.capacity {
            buf.pop_front();
        }
        buf.iter().cloned().collect()
    }

    /// Exports the retained events as JSON Lines: one JSON object per line,
    /// oldest first, with a trailing newline when non-empty.
    pub fn to_jsonl(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96);
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_stamping() {
        let j = EventJournal::new(8);
        let e = j.record(
            Event::new("compact.start")
                .severity(Severity::Warn)
                .message("forced")
                .attr("docs", 3u64),
        );
        assert_eq!(e.seq, 1);
        assert_eq!(e.severity, Severity::Warn);
        assert_eq!(e.name, "compact.start");
        assert_eq!(e.message, "forced");
        assert_eq!(e.attrs, vec![("docs", AttrValue::U64(3))]);
        let e2 = j.record(Event::new("compact.finish"));
        assert_eq!(e2.seq, 2);
        assert_eq!(e2.severity, Severity::Info, "Info is the default");
        assert!(e2.elapsed_ns >= e.elapsed_ns);
    }

    #[test]
    fn retention_evicts_oldest_and_reads_are_stable() {
        let j = EventJournal::new(4);
        for i in 0..10u64 {
            j.record(Event::new("ingest.insert").attr("doc", i));
        }
        let events = j.events();
        assert_eq!(events.len(), 4, "capacity bounds the journal");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest first, newest retained");
        assert_eq!(j.events().len(), 4, "non-destructive reads");
        assert_eq!(j.counts().recorded, 10);
        assert_eq!(j.counts().by_severity, [0, 10, 0, 0]);
    }

    #[test]
    fn jsonl_shape() {
        let j = EventJournal::new(4);
        j.record(
            Event::new("query.slow")
                .severity(Severity::Warn)
                .message("//a[\"x\"]/b")
                .attr("total_ns", 1234u64)
                .attr("ratio", 1.5f64),
        );
        let jsonl = j.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0],
            "{\"seq\":1,\"elapsed_ns\":ELAPSED,\"severity\":\"warn\",\"name\":\"query.slow\",\
             \"message\":\"//a[\\\"x\\\"]/b\",\"attrs\":{\"total_ns\":1234,\"ratio\":1.5}}"
                .replace("ELAPSED", &j.events()[0].elapsed_ns.to_string())
        );
    }

    #[test]
    fn empty_message_and_attrs_are_omitted() {
        let j = EventJournal::new(2);
        let e = j.record(Event::new("ingest.build"));
        assert!(!e.to_json().contains("message"));
        assert!(!e.to_json().contains("attrs"));
    }

    #[test]
    fn severity_order_and_names() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.as_str(), "error");
    }
}
