//! The metric primitives: [`Counter`], [`Gauge`], and the power-of-two
//! bucketed [`Histogram`].
//!
//! All three are lock-free: every mutation is a single atomic RMW (plus a
//! bounded CAS loop for histogram min/max), so hot paths — candidate
//! inspection, page access, per-query phase timing — can record without
//! serializing. Reads (snapshots) are relaxed and may observe a torn
//! *cross-metric* state, which is the usual and acceptable trade for
//! monitoring counters.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ORDERING: counter — standalone monotone counter, ordered with nothing else
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: counter — advisory read of an independent counter
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (pool residency, live documents).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        // ORDERING: gauge — last-writer-wins level, ordered with nothing else
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        // ORDERING: gauge — standalone delta, ordered with nothing else
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // ORDERING: gauge — advisory read of an independent level
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two of
/// the `u64` range.
pub const BUCKETS: usize = 65;

/// Index of the bucket holding `v`: 0 for 0, otherwise `⌊log₂ v⌋ + 1`.
/// Bucket `b > 0` covers `[2^(b-1), 2^b - 1]`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive value bounds `(lo, hi)` of bucket `b`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else {
        (
            1u64 << (b - 1),
            (1u64 << (b - 1)).wrapping_mul(2).wrapping_sub(1),
        )
    }
}

/// A power-of-two-bucketed histogram of `u64` samples (typically
/// nanoseconds), with count/sum/min/max and quantile estimation.
///
/// Recording is one `fetch_add` per bucket/count/sum plus two bounded CAS
/// loops; there is no locking and no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        // ORDERING: counter — each statistic is an independent counter;
        // snapshots are documented as approximate under concurrent recording.
        // PANIC-FREE: bucket_of returns 64 - leading_zeros <= 64 < BUCKETS
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // ORDERING: counter — as above, independent statistics.
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        // ORDERING: counter — advisory read of an independent counter
        self.count.load(Ordering::Relaxed)
    }

    /// An owned, immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            // ORDERING: counter — approximate snapshot of independent counters
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            // ORDERING: counter — approximate snapshot of independent counters
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Point estimate of quantile `q` (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The bucket that holds the `q`-quantile sample (by the nearest-rank
    /// definition), as inclusive value bounds `(lo, hi)`.
    ///
    /// The true quantile of the recorded sample multiset is guaranteed to
    /// lie within the returned bounds — the property the telemetry tests
    /// verify.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // nearest-rank: the k-th smallest sample, k in [1, count]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(b);
                // tighten with the global extremes
                return Some((lo.max(self.min.min(hi)), hi.min(self.max.max(lo))));
            }
        }
        None // unreachable when count > 0
    }

    /// Point estimate of quantile `q`: the midpoint of the containing
    /// bucket, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let (lo, hi) = self.quantile_bounds(q)?;
        Some(lo + (hi - lo) / 2)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The histogram delta `self - earlier` (per-bucket, count and sum).
    ///
    /// `min`/`max` cannot be un-merged, so the delta keeps `self`'s values;
    /// they remain correct as *bounds* on the interval's samples.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, dst) in buckets.iter_mut().enumerate() {
            *dst = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_of(lo), b, "lo of bucket {b}");
            assert_eq!(bucket_of(hi), b, "hi of bucket {b}");
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_accounting() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1107);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), Some(1107.0 / 6.0));
    }

    #[test]
    fn quantiles_of_empty_histogram_are_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.snapshot().quantile_bounds(0.99), None);
    }

    #[test]
    fn exact_quantiles_on_single_value() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(64);
        }
        // one bucket, min == max == 64, so the bounds collapse
        let s = h.snapshot();
        assert_eq!(s.quantile_bounds(0.5), Some((64, 64)));
        assert_eq!(s.p50(), Some(64));
        assert_eq!(s.p99(), Some(64));
    }
}
