//! Named metric registration, snapshots, and deltas.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

/// A handle to one registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// An up/down gauge.
    Gauge(Arc<Gauge>),
    /// A latency/size histogram.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The observed value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state (boxed: a snapshot carries its full bucket array).
    Histogram(Box<HistogramSnapshot>),
}

/// A registry of named metrics.
///
/// Registration takes a write lock; recording through the returned `Arc`
/// handles is lock-free. Names are dotted paths (`index.search.candidates`)
/// grouping a subsystem's metrics under a common prefix.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry (used by the `repro` harness, where the
    /// experiment functions build their own engines internally).
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Gets or registers the counter `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or registers the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or registers the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.inner.read().expect("registry lock").get(name) {
            return m.clone();
        }
        let mut w = self.inner.write().expect("registry lock");
        w.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// Names of all registered metrics, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// A point-in-time copy of every metric's value.
    pub fn snapshot(&self) -> Snapshot {
        let r = self.inner.read().expect("registry lock");
        let metrics = r
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { metrics }
    }
}

/// A point-in-time copy of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Metric name → observed value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// The value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Counter value of `name` (0 when absent or of another kind).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value of `name`, when present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot of `name`, when present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// True when some metric name starts with `prefix` — phases register
    /// several metrics under one dotted prefix.
    pub fn has_prefix(&self, prefix: &str) -> bool {
        self.metrics
            .range(prefix.to_owned()..)
            .next()
            .is_some_and(|(k, _)| k.starts_with(prefix))
    }

    /// The change from `earlier` to `self`: counters and histograms
    /// subtract (saturating); gauges keep `self`'s value. Metrics absent
    /// from `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|(name, v)| {
                let dv = match (v, earlier.metrics.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        MetricValue::Histogram(Box::new(now.delta(then)))
                    }
                    _ => v.clone(),
                };
                (name.clone(), dv)
            })
            .collect();
        Snapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.events");
        let b = reg.counter("x.events");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x.events"), 3);
        assert_eq!(reg.names(), vec!["x.events".to_string()]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m");
        reg.gauge("m");
    }

    #[test]
    fn snapshot_delta() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        let g = reg.gauge("g");
        c.add(10);
        h.record(100);
        g.set(5);
        let before = reg.snapshot();
        c.add(7);
        h.record(200);
        g.set(-1);
        let after = reg.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counter("c"), 7);
        let hd = d.histogram("h").unwrap();
        assert_eq!(hd.count, 1);
        assert_eq!(hd.sum, 200);
        assert_eq!(d.get("g"), Some(&MetricValue::Gauge(-1)));
    }

    #[test]
    fn prefix_lookup() {
        let reg = MetricsRegistry::new();
        reg.counter("storage.pool.hits");
        let s = reg.snapshot();
        assert!(s.has_prefix("storage.pool"));
        assert!(!s.has_prefix("storage.poolx"));
        assert!(!s.has_prefix("index."));
    }
}
