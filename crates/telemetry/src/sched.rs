//! Deterministic interleaving checker for the lock-free primitives.
//!
//! A loom-style, dependency-free harness: N logical threads each hold a
//! script of operations against a shared structure, and the checker runs
//! the scripts through **every** interleaving of their operations (or a
//! seeded sample when the schedule space exceeds a bound), comparing the
//! real structure against a trivially-correct reference model after every
//! schedule.  A lost entry, duplicated entry, wrong eviction or broken
//! FIFO order in any schedule fails with that schedule attached, so the
//! failure replays deterministically.
//!
//! ## What this does and does not check
//!
//! Operations are interleaved *whole*: each schedule executes on one
//! thread, so this validates the op-level state machine — the
//! linearizability contract of [`BoundedRing`]'s push/pop/force_push and
//! of the metric counters — under every arrival order, including the
//! cursor-wrap and full/empty boundary cases that are hard to hit live.
//! Instruction-level tearing (two threads inside `push` at once) is
//! covered separately by the multi-threaded stress tests in `ring.rs`; the
//! two are complementary.

use crate::metrics::Counter;
use crate::ring::BoundedRing;
use std::collections::VecDeque;

/// One scripted operation against a [`BoundedRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingOp {
    /// `push(value)` — may fail when full.
    Push(u64),
    /// `force_push(value)` — evicts the oldest when full.
    ForcePush(u64),
    /// `pop()` — may return nothing when empty.
    Pop,
}

/// One scripted operation against a [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterOp {
    /// `add(n)`.
    Add(u64),
    /// `get()` — the observed value must never decrease within a schedule.
    Snapshot,
}

/// splitmix64 — the same tiny deterministic generator the sequencing
/// strategies use; good enough to spread schedule samples.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The interleaving space of N threads with fixed per-thread op counts.
///
/// A schedule is a sequence of thread indices; index `t` appearing for the
/// k-th time means "thread `t` executes its k-th op now".
#[derive(Debug, Clone)]
pub struct Schedules {
    ops_per_thread: Vec<usize>,
    /// Exhaustive enumeration happens iff the space is at most this big;
    /// beyond it, exactly `limit` seeded samples run instead.
    limit: usize,
    seed: u64,
}

impl Schedules {
    /// The schedule space for threads running `ops_per_thread[t]` ops each.
    pub fn new(ops_per_thread: &[usize], limit: usize, seed: u64) -> Self {
        Schedules {
            ops_per_thread: ops_per_thread.to_vec(),
            limit: limit.max(1),
            seed,
        }
    }

    /// Number of distinct interleavings (the multinomial coefficient), or
    /// `None` when it overflows `u128`.
    pub fn count(&self) -> Option<u128> {
        let mut total: u128 = 1;
        let mut placed: u128 = 0;
        for &ops in &self.ops_per_thread {
            for i in 1..=ops as u128 {
                placed += 1;
                // total *= placed; total /= i — binomial building stays exact
                total = total.checked_mul(placed)?;
                // PANIC-FREE: i ranges over 1..=ops, never zero
                total /= i;
            }
        }
        Some(total)
    }

    /// True when [`Schedules::for_each`] will enumerate every interleaving.
    pub fn is_exhaustive(&self) -> bool {
        self.count().is_some_and(|c| c <= self.limit as u128)
    }

    /// Runs `f` once per schedule: every interleaving when the space fits
    /// the limit, otherwise `limit` seeded samples.  Returns the number of
    /// schedules visited.
    pub fn for_each(&self, mut f: impl FnMut(&[usize])) -> usize {
        let total_ops: usize = self.ops_per_thread.iter().sum();
        if self.is_exhaustive() {
            let mut remaining = self.ops_per_thread.clone();
            let mut prefix = Vec::with_capacity(total_ops);
            let mut visited = 0usize;
            Self::enumerate(&mut remaining, &mut prefix, total_ops, &mut f, &mut visited);
            visited
        } else {
            let mut rng = self.seed;
            let mut sched = Vec::with_capacity(total_ops);
            for _ in 0..self.limit {
                sched.clear();
                let mut remaining = self.ops_per_thread.clone();
                let mut left = total_ops;
                while left > 0 {
                    let nonempty: Vec<usize> =
                        (0..remaining.len()).filter(|&t| remaining[t] > 0).collect();
                    let t = nonempty[(splitmix64(&mut rng) % nonempty.len() as u64) as usize];
                    remaining[t] -= 1;
                    left -= 1;
                    sched.push(t);
                }
                f(&sched);
            }
            self.limit
        }
    }

    fn enumerate(
        remaining: &mut [usize],
        prefix: &mut Vec<usize>,
        left: usize,
        f: &mut impl FnMut(&[usize]),
        visited: &mut usize,
    ) {
        if left == 0 {
            *visited += 1;
            f(prefix);
            return;
        }
        for t in 0..remaining.len() {
            // PANIC-FREE: t < remaining.len() by the loop bound
            if remaining[t] > 0 {
                remaining[t] -= 1;
                prefix.push(t);
                Self::enumerate(remaining, prefix, left - 1, f, visited);
                prefix.pop();
                // PANIC-FREE: same loop bound — t < remaining.len()
                remaining[t] += 1;
            }
        }
    }
}

/// Checks a [`BoundedRing`] of the given capacity against a reference
/// `VecDeque` model over every interleaving (or a seeded sample) of the
/// per-thread op scripts.  Returns the number of schedules checked, or the
/// first divergence with its schedule.
pub fn check_ring(
    threads: &[Vec<RingOp>],
    capacity: usize,
    limit: usize,
    seed: u64,
) -> Result<usize, String> {
    // mirror BoundedRing::new's minimum so ring and model agree
    let capacity = capacity.max(2);
    check_ring_model(threads, capacity, capacity, limit, seed)
}

/// [`check_ring`] with an independently-sized reference model — the
/// self-test hook that proves the checker *can* fail (a model of a
/// different capacity must diverge).
#[doc(hidden)]
pub fn check_ring_model(
    threads: &[Vec<RingOp>],
    capacity: usize,
    model_capacity: usize,
    limit: usize,
    seed: u64,
) -> Result<usize, String> {
    let ops_per_thread: Vec<usize> = threads.iter().map(Vec::len).collect();
    let schedules = Schedules::new(&ops_per_thread, limit, seed);
    let mut failure: Option<String> = None;
    let visited = schedules.for_each(|sched| {
        if failure.is_some() {
            return;
        }
        if let Err(e) = run_ring_schedule(threads, capacity, model_capacity, sched) {
            failure = Some(format!("{e} (schedule {sched:?})"));
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(visited),
    }
}

fn run_ring_schedule(
    threads: &[Vec<RingOp>],
    capacity: usize,
    model_capacity: usize,
    sched: &[usize],
) -> Result<(), String> {
    let ring: BoundedRing<u64> = BoundedRing::new(capacity);
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut cursor = vec![0usize; threads.len()];
    for (step, &t) in sched.iter().enumerate() {
        let op = threads[t][cursor[t]];
        cursor[t] += 1;
        match op {
            RingOp::Push(v) => {
                let real = ring.push(v);
                if model.len() < model_capacity {
                    model.push_back(v);
                    if real.is_err() {
                        return Err(format!("step {step}: push({v}) failed on a non-full ring"));
                    }
                } else if real.is_ok() {
                    return Err(format!("step {step}: push({v}) succeeded on a full ring"));
                }
            }
            RingOp::ForcePush(v) => {
                let evicted = ring.force_push(v);
                let expect = if model.len() >= model_capacity {
                    model.pop_front()
                } else {
                    None
                };
                model.push_back(v);
                if evicted != expect {
                    return Err(format!(
                        "step {step}: force_push({v}) evicted {evicted:?}, expected {expect:?}"
                    ));
                }
            }
            RingOp::Pop => {
                let real = ring.pop();
                let expect = model.pop_front();
                if real != expect {
                    return Err(format!(
                        "step {step}: pop gave {real:?}, expected {expect:?}"
                    ));
                }
            }
        }
        let len = ring.len();
        if len != model.len().min(capacity) {
            return Err(format!(
                "step {step}: ring len {len} vs model {}",
                model.len()
            ));
        }
    }
    // Drain: the survivors must match the model exactly, in order — this is
    // where a lost, duplicated or reordered entry surfaces.
    let mut drained = Vec::new();
    while let Some(v) = ring.pop() {
        drained.push(v);
    }
    let expected: Vec<u64> = model.into_iter().collect();
    if drained != expected {
        return Err(format!("final drain {drained:?} != model {expected:?}"));
    }
    Ok(())
}

/// Checks a [`Counter`] over every interleaving (or a seeded sample) of the
/// per-thread op scripts: snapshots must be monotone non-decreasing and the
/// final value must equal the exact sum of all adds.  Returns the number of
/// schedules checked.
pub fn check_counter(threads: &[Vec<CounterOp>], limit: usize, seed: u64) -> Result<usize, String> {
    let ops_per_thread: Vec<usize> = threads.iter().map(Vec::len).collect();
    let total: u64 = threads
        .iter()
        .flatten()
        .map(|op| match op {
            CounterOp::Add(n) => *n,
            CounterOp::Snapshot => 0,
        })
        .sum();
    let schedules = Schedules::new(&ops_per_thread, limit, seed);
    let mut failure: Option<String> = None;
    let visited = schedules.for_each(|sched| {
        if failure.is_some() {
            return;
        }
        let counter = Counter::default();
        let mut cursor = vec![0usize; threads.len()];
        let mut last_seen = 0u64;
        for (step, &t) in sched.iter().enumerate() {
            let op = threads[t][cursor[t]];
            cursor[t] += 1;
            match op {
                CounterOp::Add(n) => counter.add(n),
                CounterOp::Snapshot => {
                    let v = counter.get();
                    if v < last_seen {
                        failure = Some(format!(
                            "step {step}: snapshot went backwards {last_seen} -> {v} \
                             (schedule {sched:?})"
                        ));
                        return;
                    }
                    last_seen = v;
                }
            }
        }
        if counter.get() != total {
            failure = Some(format!(
                "final count {} != exact sum {total} (schedule {sched:?})",
                counter.get()
            ));
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(visited),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multinomial_counts() {
        assert_eq!(Schedules::new(&[2, 2], 100, 0).count(), Some(6));
        assert_eq!(Schedules::new(&[3, 3], 100, 0).count(), Some(20));
        assert_eq!(Schedules::new(&[1, 1, 1], 100, 0).count(), Some(6));
        assert_eq!(Schedules::new(&[], 100, 0).count(), Some(1));
    }

    #[test]
    fn exhaustive_enumeration_visits_every_schedule_once() {
        let s = Schedules::new(&[2, 1], 100, 0);
        assert!(s.is_exhaustive());
        let mut seen = Vec::new();
        let visited = s.for_each(|sched| seen.push(sched.to_vec()));
        assert_eq!(visited, 3);
        seen.sort();
        assert_eq!(seen, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]],);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let s = Schedules::new(&[4, 4, 4], 50, 7);
        assert!(!s.is_exhaustive());
        let mut a = Vec::new();
        let mut b = Vec::new();
        assert_eq!(s.for_each(|x| a.push(x.to_vec())), 50);
        assert_eq!(s.for_each(|x| b.push(x.to_vec())), 50);
        assert_eq!(a, b, "same seed, same schedules");
        for sched in &a {
            assert_eq!(sched.len(), 12);
            for t in 0..3 {
                assert_eq!(sched.iter().filter(|&&x| x == t).count(), 4);
            }
        }
    }
}
