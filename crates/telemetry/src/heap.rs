//! Dep-free heap-size attribution: the [`HeapSize`] trait and the
//! allocation model for `std`'s hashbrown-backed tables.
//!
//! `HeapSize::heap_bytes` reports the bytes a value owns *outside* its own
//! `size_of` — the transitively owned allocations.  The accounting is a
//! model, not an allocator hook: it mirrors what `Vec`, `String`, and
//! hashbrown actually request, and the core crate's `heap_accounting`
//! integration test pins the model to a counting allocator within 5%.
//!
//! Rules (documented in DESIGN.md §12):
//!
//! * `Vec<T>`/`String`: `capacity * size_of::<T>()` plus the elements'
//!   own heap bytes.
//! * `HashMap`/`HashSet`: the hashbrown table layout — `buckets` slots of
//!   the entry type plus one control byte per slot plus one trailing SIMD
//!   group — where `buckets` is recovered from `capacity()` (see
//!   [`hash_table_alloc_bytes`]).
//! * Plain `Copy` scalars own nothing.
//!
//! Implementations for domain types (paths, tries, pools) live next to
//! those types in their own crates; this module only defines the trait,
//! the std impls, and the table model.

use std::collections::{HashMap, HashSet, VecDeque};
use std::mem::size_of;

/// Transitively owned heap bytes, excluding `size_of::<Self>()` itself.
pub trait HeapSize {
    /// Bytes of heap memory owned by `self` (its allocations plus the
    /// heap bytes of everything stored in them).
    fn heap_bytes(&self) -> usize;

    /// `size_of::<Self>() + heap_bytes()`: the full footprint of an owned
    /// value, the number `memory.*` gauges report.
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        size_of::<Self>() + self.heap_bytes()
    }
}

macro_rules! zero_heap {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

zero_heap!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    #[inline]
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<A: HeapSize, B: HeapSize, C: HeapSize> HeapSize for (A, B, C) {
    #[inline]
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes() + self.2.heap_bytes()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

impl<T: HeapSize> HeapSize for Box<T> {
    fn heap_bytes(&self) -> usize {
        size_of::<T>() + (**self).heap_bytes()
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * size_of::<T>() + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for VecDeque<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * size_of::<T>() + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize, const N: usize> HeapSize for [T; N] {
    fn heap_bytes(&self) -> usize {
        self.iter().map(HeapSize::heap_bytes).sum()
    }
}

impl<K: HeapSize, V: HeapSize, S> HeapSize for HashMap<K, V, S> {
    fn heap_bytes(&self) -> usize {
        hash_table_alloc_bytes(self.capacity(), size_of::<(K, V)>())
            + self
                .iter()
                .map(|(k, v)| k.heap_bytes() + v.heap_bytes())
                .sum::<usize>()
    }
}

impl<K: HeapSize, S> HeapSize for HashSet<K, S> {
    fn heap_bytes(&self) -> usize {
        hash_table_alloc_bytes(self.capacity(), size_of::<K>())
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

/// The number of usable slots hashbrown exposes for a table of `buckets`
/// slots: all but one below 8 buckets, 7/8 of them at 8 and above.
fn usable_of(buckets: usize) -> usize {
    if buckets < 8 {
        buckets - 1
    } else {
        buckets / 8 * 7
    }
}

/// SIMD group width of the control-byte probe (16 on x86-64 SSE2; also a
/// safe over-estimate on the generic fallback, and well under the 5%
/// accounting tolerance either way).
const GROUP_WIDTH: usize = 16;

/// Bytes hashbrown allocates for a table whose `capacity()` reports
/// `capacity` usable slots of `entry_size`-byte entries.
///
/// The table rounds the requested capacity up to the smallest power-of-two
/// bucket count (≥ 4) whose usable fraction covers it, then allocates one
/// entry slot plus one control byte per bucket, plus one trailing control
/// group so probes never wrap mid-group.  `capacity()` returns exactly the
/// usable count of the allocated table, so the bucket count is recoverable.
pub fn hash_table_alloc_bytes(capacity: usize, entry_size: usize) -> usize {
    if capacity == 0 {
        return 0;
    }
    let mut buckets = 4usize;
    while usable_of(buckets) < capacity {
        buckets *= 2;
    }
    buckets * entry_size + buckets + GROUP_WIDTH
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_own_nothing() {
        assert_eq!(7u64.heap_bytes(), 0);
        assert_eq!(true.heap_bytes(), 0);
        assert_eq!((1u32, 2u64).heap_bytes(), 0);
        assert_eq!(7u64.total_bytes(), 8);
    }

    #[test]
    fn vec_and_string_follow_capacity() {
        let mut v: Vec<u32> = Vec::with_capacity(10);
        v.extend([1, 2, 3]);
        assert_eq!(v.heap_bytes(), 40);
        let s = String::from("hello");
        assert_eq!(s.heap_bytes(), s.capacity());
        // nested: the vec owns its strings' buffers too
        let vs = vec![String::from("ab"), String::from("cdef")];
        let expect = vs.capacity() * size_of::<String>() + vs[0].capacity() + vs[1].capacity();
        assert_eq!(vs.heap_bytes(), expect);
    }

    #[test]
    fn empty_collections_own_nothing() {
        assert_eq!(Vec::<u64>::new().heap_bytes(), 0);
        assert_eq!(String::new().heap_bytes(), 0);
        assert_eq!(HashMap::<u32, u32>::new().heap_bytes(), 0);
        assert_eq!(hash_table_alloc_bytes(0, 8), 0);
    }

    #[test]
    fn hash_model_matches_reported_capacity() {
        // Whatever capacity the map reports, the model's recovered bucket
        // count must be the one whose usable fraction equals it.
        let mut m: HashMap<u64, u64> = HashMap::new();
        for i in 0..1000u64 {
            m.insert(i, i);
            let cap = m.capacity();
            let bytes = hash_table_alloc_bytes(cap, size_of::<(u64, u64)>());
            // recover buckets from the model output
            let buckets = (bytes - GROUP_WIDTH) / (size_of::<(u64, u64)>() + 1);
            assert!(buckets.is_power_of_two(), "buckets {buckets} at cap {cap}");
            assert_eq!(usable_of(buckets), cap, "usable slots at cap {cap}");
        }
    }

    #[test]
    fn hash_model_is_monotone() {
        let mut last = 0;
        for cap in 0..10_000 {
            let b = hash_table_alloc_bytes(cap, 16);
            assert!(b >= last, "model shrank at capacity {cap}");
            last = b;
        }
    }
}
