//! Hierarchical per-operation tracing.
//!
//! Aggregate metrics ([`crate::MetricsRegistry`]) answer "how much work did
//! the pipeline do"; this module answers "where did *this* query's time
//! go".  Each traced operation owns an [`ActiveTrace`] — a per-thread span
//! buffer that the pipeline phases (parse → plan → trie descent →
//! sibling-cover checks → path-link binary searches → completion) append
//! [`TraceSpan`]s to, with typed [`AttrValue`] attributes (candidate
//! counts, trie node ranges `(n⊢, n⊣)`, the chosen plan).  Because the
//! buffer lives on the querying thread's stack, recording a span is a `Vec`
//! push and two monotonic clock reads — no atomics, no sharing.
//!
//! When the operation finishes, [`Tracer::finish`] seals the buffer into an
//! immutable [`Trace`] and flushes it into lock-free bounded rings
//! ([`crate::ring::BoundedRing`]):
//!
//! * **head sampling** — [`TraceConfig::sample_rate`] of traces, decided at
//!   trace *start*, land in the *recent traces* ring;
//! * **slow-query log** — traces at or above
//!   [`TraceConfig::slow_threshold`] are *always* retained, regardless of
//!   the sampling decision, so slow-query forensics never miss.
//!
//! Readers ([`Tracer::slow_queries`], [`Tracer::recent_traces`]) drain the
//! rings into a reader-side buffer; that buffer is mutex-guarded but only
//! readers touch it, so the query-side flush stays lock-free.

use crate::ring::BoundedRing;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identifies one trace (one traced query/build operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Index of a span within its trace's span vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned count (candidates, instantiations, serial numbers).
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A ratio or rate.
    F64(f64),
    /// A label (strategy name, query text).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Sentinel for a span that has not ended yet.
const OPEN: u64 = u64::MAX;

/// One timed phase within a trace.
///
/// Start/end are nanoseconds relative to the trace start.  Spans are stored
/// in creation order, so a span's parent always precedes it, and a parent's
/// interval brackets every child's (`finish` closes stragglers so the
/// invariant holds even for abandoned spans).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Phase name (`query.parse`, `index.plan`, `trie.descent`, …).
    pub name: &'static str,
    /// Parent span, `None` only for the root.
    pub parent: Option<SpanId>,
    /// Start offset from trace start, nanoseconds.
    pub start_ns: u64,
    /// End offset from trace start, nanoseconds.
    pub end_ns: u64,
    /// Typed attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl TraceSpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A sealed, immutable span tree for one finished operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Unique id within the owning [`Tracer`].
    pub id: TraceId,
    /// What was traced — for queries, the serialized query expression.
    pub name: String,
    /// Total wall time of the operation, nanoseconds.
    pub total_ns: u64,
    /// Whether head sampling selected this trace at start.
    pub sampled: bool,
    /// Whether the operation met [`TraceConfig::slow_threshold`].
    pub slow: bool,
    /// The span tree; `spans[0]` is the root, parents precede children.
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// The root span.
    // PANIC-FREE: every trace is minted with its root span at index 0
    pub fn root(&self) -> &TraceSpan {
        &self.spans[0]
    }

    /// Looks up a span.
    // PANIC-FREE: SpanIds are minted by begin_span/event from spans.len(),
    // so every id indexes an existing span
    pub fn span(&self, id: SpanId) -> &TraceSpan {
        &self.spans[id.0 as usize]
    }

    /// Depth of a span (root = 0).
    // PANIC-FREE: ids and recorded parents are all arena-minted SpanIds
    pub fn depth(&self, id: SpanId) -> usize {
        let mut d = 0;
        let mut cur = self.spans[id.0 as usize].parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.spans[p.0 as usize].parent;
        }
        d
    }

    /// Serializes this trace in the Chrome trace-event JSON format, loadable
    /// in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
    pub fn to_chrome_json(&self) -> String {
        crate::export::to_chrome_json(self)
    }

    /// Renders this trace as an indented text span tree.
    pub fn render(&self) -> String {
        crate::export::render_trace(self)
    }
}

/// Tracing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Fraction of operations whose trace is kept in the recent-traces ring
    /// (head sampling, decided at trace start; clamped to `0.0..=1.0`).
    pub sample_rate: f64,
    /// Operations at or above this duration are always retained in the
    /// slow-query log, regardless of sampling.  `Duration::ZERO` retains
    /// everything.
    pub slow_threshold: Duration,
    /// Capacity of the recent-traces ring.
    pub recent_capacity: usize,
    /// Capacity of the slow-query log.
    pub slow_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_rate: 0.01,
            slow_threshold: Duration::from_millis(100),
            recent_capacity: 128,
            slow_capacity: 64,
        }
    }
}

/// The mutable, thread-local side of a trace: a span buffer owned by the
/// operation being traced.
///
/// Spans follow stack discipline: [`ActiveTrace::start_span`] opens a child
/// of the innermost open span, [`ActiveTrace::end_span`] closes it (and any
/// children left open above it).  Span 0 is the implicit root covering the
/// whole operation.
#[derive(Debug)]
pub struct ActiveTrace {
    id: TraceId,
    name: String,
    started: Instant,
    sampled: bool,
    spans: Vec<TraceSpan>,
    /// Open spans, innermost last; `stack[0]` is always the root.
    stack: Vec<SpanId>,
}

impl ActiveTrace {
    fn new(id: TraceId, name: String, sampled: bool) -> Self {
        let root = TraceSpan {
            name: "query",
            parent: None,
            start_ns: 0,
            end_ns: OPEN,
            attrs: Vec::new(),
        };
        ActiveTrace {
            id,
            name,
            started: Instant::now(),
            sampled,
            spans: vec![root],
            stack: vec![SpanId(0)],
        }
    }

    /// This trace's id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Whether head sampling selected this trace (the span buffer is filled
    /// either way: an unsampled trace can still end up in the slow-query
    /// log).
    pub fn is_sampled(&self) -> bool {
        self.sampled
    }

    /// Nanoseconds since the trace started.
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// The root span's id.
    pub fn root_span(&self) -> SpanId {
        SpanId(0)
    }

    /// Opens a child span of the innermost open span.
    pub fn start_span(&mut self, name: &'static str) -> SpanId {
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(TraceSpan {
            name,
            parent: self.stack.last().copied(),
            start_ns: self.elapsed_ns(),
            end_ns: OPEN,
            attrs: Vec::new(),
        });
        self.stack.push(id);
        id
    }

    /// Closes `id` — and, to preserve the bracketing invariant, every span
    /// opened inside it that is still open.  Closing a span not on the open
    /// stack (already closed) is a no-op.
    pub fn end_span(&mut self, id: SpanId) {
        let Some(at) = self.stack.iter().rposition(|&s| s == id) else {
            return;
        };
        if at == 0 {
            return; // the root closes only via Tracer::finish
        }
        let now = self.elapsed_ns();
        // PANIC-FREE: at <= stack.len() from rposition; stack holds only
        // arena-minted SpanIds
        for &open in &self.stack[at..] {
            self.spans[open.0 as usize].end_ns = now;
        }
        self.stack.truncate(at);
    }

    /// Records a zero-length marker span (an instant event) under the
    /// innermost open span.
    pub fn event(&mut self, name: &'static str) -> SpanId {
        let now = self.elapsed_ns();
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(TraceSpan {
            name,
            parent: self.stack.last().copied(),
            start_ns: now,
            end_ns: now,
            attrs: Vec::new(),
        });
        id
    }

    /// Attaches a typed attribute to a span.
    // PANIC-FREE: SpanIds are arena-minted (see span), always in bounds
    pub fn attr(&mut self, span: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        self.spans[span.0 as usize].attrs.push((key, value.into()));
    }

    /// Attaches a typed attribute to the root span.
    pub fn root_attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        self.attr(SpanId(0), key, value);
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    fn seal(mut self, slow_threshold: Duration) -> Trace {
        let total = self.elapsed_ns();
        for span in &mut self.spans {
            if span.end_ns == OPEN {
                span.end_ns = total;
            }
        }
        let slow = total as u128 >= slow_threshold.as_nanos();
        Trace {
            id: self.id,
            name: self.name,
            total_ns: total,
            sampled: self.sampled,
            slow,
            spans: self.spans,
        }
    }
}

/// Retention counters of a [`Tracer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TracerStats {
    /// Traces started.
    pub started: u64,
    /// Traces selected by head sampling.
    pub sampled: u64,
    /// Traces retained in the slow-query log.
    pub slow: u64,
}

/// The shared side of tracing: id allocation, the head-sampling decision,
/// and the two retention rings.
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    /// Runtime-tunable slow threshold, nanoseconds; initialised from
    /// [`TraceConfig::slow_threshold`], updated by
    /// [`set_slow_threshold`](Self::set_slow_threshold).
    slow_threshold_ns: AtomicU64,
    next_id: AtomicU64,
    /// Fixed-point (32.32) sampling accumulator: each trace adds
    /// `rate · 2³²`; crossing an integer boundary selects the trace.
    sample_accum: AtomicU64,
    started: AtomicU64,
    sampled_count: AtomicU64,
    slow_count: AtomicU64,
    recent: BoundedRing<Arc<Trace>>,
    slow: BoundedRing<Arc<Trace>>,
    /// Reader-side overflow: rings are drained here on read.  Only readers
    /// lock these — the query-path flush never does.
    recent_read: Mutex<VecDeque<Arc<Trace>>>,
    slow_read: Mutex<VecDeque<Arc<Trace>>>,
}

impl Tracer {
    /// A tracer with the given policy.
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            slow_threshold_ns: AtomicU64::new(
                config.slow_threshold.as_nanos().min(u64::MAX as u128) as u64,
            ),
            next_id: AtomicU64::new(1),
            sample_accum: AtomicU64::new(0),
            started: AtomicU64::new(0),
            sampled_count: AtomicU64::new(0),
            slow_count: AtomicU64::new(0),
            recent: BoundedRing::new(config.recent_capacity),
            slow: BoundedRing::new(config.slow_capacity),
            recent_read: Mutex::new(VecDeque::new()),
            slow_read: Mutex::new(VecDeque::new()),
            config,
        }
    }

    /// The policy in effect.  `config().slow_threshold` is the build-time
    /// value; the live one is [`slow_threshold`](Self::slow_threshold).
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The slow-query threshold currently in effect.
    pub fn slow_threshold(&self) -> Duration {
        // ORDERING: config — advisory configuration read; any recent value is fine.
        Duration::from_nanos(self.slow_threshold_ns.load(Ordering::Relaxed))
    }

    /// Retunes the slow-query threshold at runtime.  Takes effect for
    /// traces finishing after the store; in-flight `finish` calls may use
    /// either value.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        let ns = threshold.as_nanos().min(u64::MAX as u128) as u64;
        // ORDERING: config — tuning cell read/written independently of any
        // other state; no ordering with trace data is required.
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Retention counters so far.
    pub fn stats(&self) -> TracerStats {
        TracerStats {
            // ORDERING: counter — advisory reads of independent retention counters
            started: self.started.load(Ordering::Relaxed),
            sampled: self.sampled_count.load(Ordering::Relaxed),
            slow: self.slow_count.load(Ordering::Relaxed),
        }
    }

    /// Starts a trace, making the head-sampling decision now.
    pub fn begin(&self, name: impl Into<String>) -> ActiveTrace {
        // ORDERING: counter — retention counters are independent statistics.
        self.started.fetch_add(1, Ordering::Relaxed);
        let sampled = self.decide_sample();
        if sampled {
            // ORDERING: counter — independent retention statistic.
            self.sampled_count.fetch_add(1, Ordering::Relaxed);
        }
        // ORDERING: id — uniqueness needs only fetch_add atomicity.
        let id = TraceId(self.next_id.fetch_add(1, Ordering::Relaxed));
        ActiveTrace::new(id, name.into(), sampled)
    }

    /// Deterministic head sampling: a 32.32 fixed-point accumulator selects
    /// exactly ⌈rate · n⌉ of any n consecutive traces, with no RNG.
    fn decide_sample(&self) -> bool {
        let rate = self.config.sample_rate.clamp(0.0, 1.0);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let step = (rate * (1u64 << 32) as f64) as u64;
        // ORDERING: sample — probabilistic accumulator, ordered with nothing
        let prev = self.sample_accum.fetch_add(step, Ordering::Relaxed);
        (prev.wrapping_add(step) >> 32) != (prev >> 32)
    }

    /// Seals `active` and applies retention: slow traces always enter the
    /// slow-query log; sampled traces enter the recent ring.  Returns the
    /// sealed trace either way, so the caller can attach it to its result.
    pub fn finish(&self, active: ActiveTrace) -> Arc<Trace> {
        let trace = Arc::new(active.seal(self.slow_threshold()));
        if trace.slow {
            // ORDERING: counter — independent retention statistic
            self.slow_count.fetch_add(1, Ordering::Relaxed);
            self.slow.force_push(trace.clone());
        }
        if trace.sampled {
            self.recent.force_push(trace.clone());
        }
        trace
    }

    /// The retained slow queries, oldest first (at most
    /// [`TraceConfig::slow_capacity`], the most recent ones).
    pub fn slow_queries(&self) -> Vec<Arc<Trace>> {
        Self::read(&self.slow, &self.slow_read, self.config.slow_capacity)
    }

    /// The head-sampled recent traces, oldest first.
    pub fn recent_traces(&self) -> Vec<Arc<Trace>> {
        Self::read(&self.recent, &self.recent_read, self.config.recent_capacity)
    }

    fn read(
        ring: &BoundedRing<Arc<Trace>>,
        read_buf: &Mutex<VecDeque<Arc<Trace>>>,
        capacity: usize,
    ) -> Vec<Arc<Trace>> {
        let mut buf = read_buf.lock().expect("trace reader lock");
        while let Some(t) = ring.pop() {
            buf.push_back(t);
        }
        while buf.len() > capacity {
            buf.pop_front();
        }
        buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(rate: f64, slow_ns: u64) -> Tracer {
        Tracer::new(TraceConfig {
            sample_rate: rate,
            slow_threshold: Duration::from_nanos(slow_ns),
            recent_capacity: 8,
            slow_capacity: 4,
        })
    }

    #[test]
    fn span_stack_discipline() {
        let tr = tracer(1.0, u64::MAX);
        let mut t = tr.begin("q");
        let a = t.start_span("a");
        let b = t.start_span("b");
        t.end_span(b);
        t.end_span(a);
        let c = t.start_span("c");
        t.end_span(c);
        let sealed = tr.finish(t);
        assert_eq!(sealed.spans.len(), 4);
        assert_eq!(sealed.spans[1].parent, Some(SpanId(0)));
        assert_eq!(sealed.spans[2].parent, Some(a));
        assert_eq!(sealed.spans[3].parent, Some(SpanId(0)));
        for s in &sealed.spans {
            assert!(s.end_ns != OPEN && s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn abandoned_spans_are_closed_by_parent_end() {
        let tr = tracer(1.0, u64::MAX);
        let mut t = tr.begin("q");
        let a = t.start_span("a");
        let _b = t.start_span("b"); // never explicitly closed
        t.end_span(a); // closes b too
        let sealed = tr.finish(t);
        let (pa, pb) = (&sealed.spans[1], &sealed.spans[2]);
        assert!(pb.end_ns <= pa.end_ns, "child bracketed by parent");
    }

    #[test]
    fn slow_retention_ignores_sampling() {
        let tr = tracer(0.0, 0); // sample nothing; everything is "slow"
        for i in 0..6 {
            let mut t = tr.begin(format!("q{i}"));
            t.root_attr("i", i as u64);
            tr.finish(t);
        }
        let slow = tr.slow_queries();
        assert_eq!(slow.len(), 4, "capacity bounds the log");
        assert_eq!(slow[0].name, "q2", "oldest retained is q2");
        assert_eq!(slow[3].name, "q5");
        assert!(tr.recent_traces().is_empty(), "nothing sampled");
        assert_eq!(tr.stats().slow, 6);
        // reading twice is stable (non-destructive)
        assert_eq!(tr.slow_queries().len(), 4);
    }

    #[test]
    fn sampling_rate_is_proportional() {
        let tr = tracer(0.25, u64::MAX);
        for _ in 0..1000 {
            tr.finish(tr.begin("q"));
        }
        let s = tr.stats();
        assert_eq!(s.started, 1000);
        assert!((249..=251).contains(&s.sampled), "got {}", s.sampled);
    }

    #[test]
    fn rate_edges() {
        let off = tracer(0.0, u64::MAX);
        let on = tracer(1.0, u64::MAX);
        for _ in 0..10 {
            off.finish(off.begin("q"));
            on.finish(on.begin("q"));
        }
        assert_eq!(off.stats().sampled, 0);
        assert_eq!(on.stats().sampled, 10);
        assert_eq!(on.recent_traces().len(), 8, "recent ring capacity");
    }

    #[test]
    fn finish_marks_slow_by_threshold() {
        let tr = tracer(0.0, 1); // 1ns: any real work qualifies
        let mut t = tr.begin("q");
        std::hint::black_box(&mut t);
        let sealed = tr.finish(t);
        assert!(sealed.slow);
        assert!(!sealed.sampled);
        assert_eq!(sealed.total_ns, sealed.root().end_ns);
    }

    #[test]
    fn slow_threshold_is_runtime_tunable() {
        let tr = tracer(0.0, u64::MAX); // nothing slow at build time
        tr.finish(tr.begin("q0"));
        assert!(tr.slow_queries().is_empty());
        tr.set_slow_threshold(Duration::ZERO); // everything is slow now
        assert_eq!(tr.slow_threshold(), Duration::ZERO);
        tr.finish(tr.begin("q1"));
        let slow = tr.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "q1");
        assert_eq!(
            tr.config().slow_threshold,
            Duration::from_nanos(u64::MAX),
            "build-time config is preserved"
        );
    }

    #[test]
    fn events_are_zero_length_children() {
        let tr = tracer(1.0, u64::MAX);
        let mut t = tr.begin("q");
        let s = t.start_span("phase");
        let e = t.event("marker");
        t.attr(e, "count", 42u64);
        t.end_span(s);
        let sealed = tr.finish(t);
        let ev = sealed.span(e);
        assert_eq!(ev.start_ns, ev.end_ns);
        assert_eq!(ev.parent, Some(s));
        assert_eq!(ev.attrs, vec![("count", AttrValue::U64(42))]);
    }
}
