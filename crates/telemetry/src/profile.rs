//! Continuous phase profiling from span-timer histograms.
//!
//! The pipeline already brackets every phase with [`crate::SpanTimer`]s
//! feeding per-phase histograms (`xml.parse`, `index.search`, …), so a
//! wall-time profile needs no sampling and no extra instrumentation: the
//! histograms *are* the profile.  This module folds a [`Snapshot`] over a
//! static phase tree ([`PhaseNode`]) into a [`PhaseProfile`] and renders
//! it in the collapsed-stack format consumed by `flamegraph.pl` and
//! [speedscope](https://speedscope.app) — one `frame;frame value` line per
//! leaf, with values in nanoseconds of accumulated wall time.
//!
//! Because phases are aggregated independently, a phase that runs nested
//! inside another timed phase (document parsing inside an insert, say)
//! contributes to both stacks; the output is per-phase attribution, not a
//! strict partition of wall time.  The stacks in the tree make that
//! nesting explicit instead of hiding it.

use crate::registry::Snapshot;

/// Maps one phase histogram to its place in the profile's stack tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseNode {
    /// The histogram metric fed by the phase's span timers.
    pub metric: &'static str,
    /// The collapsed-stack frames for this phase, outermost first.
    pub stack: &'static [&'static str],
}

/// One profiled phase: a stack and its accumulated wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEntry {
    /// Stack frames, outermost first.
    pub stack: &'static [&'static str],
    /// Accumulated wall time, nanoseconds (the histogram's sum).
    pub total_ns: u64,
    /// Number of timed executions (the histogram's count).
    pub samples: u64,
}

/// A point-in-time wall-clock attribution across pipeline phases.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Per-phase entries in tree order; phases that never ran are included
    /// with zero samples so the profile shape is stable.
    pub entries: Vec<PhaseEntry>,
}

impl PhaseProfile {
    /// Folds `snapshot`'s phase histograms over `tree`.  Metrics absent
    /// from the snapshot produce zero-sample entries.
    pub fn from_snapshot(snapshot: &Snapshot, tree: &[PhaseNode]) -> PhaseProfile {
        let entries = tree
            .iter()
            .map(|node| {
                let (total_ns, samples) = snapshot
                    .histogram(node.metric)
                    .map(|h| (h.sum, h.count))
                    .unwrap_or((0, 0));
                PhaseEntry {
                    stack: node.stack,
                    total_ns,
                    samples,
                }
            })
            .collect();
        PhaseProfile { entries }
    }

    /// Total attributed wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.total_ns).sum()
    }

    /// Renders the profile in the collapsed-stack format (`a;b 1234`, one
    /// line per phase that ran, values in nanoseconds).
    pub fn to_collapsed(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            if e.samples == 0 {
                continue;
            }
            let _ = writeln!(out, "{} {}", e.stack.join(";"), e.total_ns);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    const TREE: &[PhaseNode] = &[
        PhaseNode {
            metric: "xml.parse",
            stack: &["ingest", "xml.parse"],
        },
        PhaseNode {
            metric: "index.search",
            stack: &["query", "index.search"],
        },
        PhaseNode {
            metric: "index.compact",
            stack: &["update", "index.compact"],
        },
    ];

    #[test]
    fn folds_sums_and_counts() {
        let reg = MetricsRegistry::new();
        reg.histogram("xml.parse").record(100);
        reg.histogram("xml.parse").record(50);
        reg.histogram("index.search").record(7);
        let p = PhaseProfile::from_snapshot(&reg.snapshot(), TREE);
        assert_eq!(p.entries.len(), 3, "stable shape includes idle phases");
        assert_eq!(p.entries[0].total_ns, 150);
        assert_eq!(p.entries[0].samples, 2);
        assert_eq!(p.entries[2].samples, 0, "compaction never ran");
        assert_eq!(p.total_ns(), 157);
    }

    #[test]
    fn collapsed_output_skips_idle_phases() {
        let reg = MetricsRegistry::new();
        reg.histogram("index.search").record(42);
        let p = PhaseProfile::from_snapshot(&reg.snapshot(), TREE);
        assert_eq!(p.to_collapsed(), "query;index.search 42\n");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let p = PhaseProfile::from_snapshot(&Snapshot::default(), TREE);
        assert_eq!(p.to_collapsed(), "");
        assert_eq!(p.total_ns(), 0);
    }
}
