//! RAII phase timing.

use crate::metrics::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// An RAII guard that records the elapsed wall time into a [`Histogram`]
/// (as nanoseconds) when dropped.
///
/// ```
/// use xseq_telemetry::{Histogram, SpanTimer};
/// use std::sync::Arc;
///
/// let h = Arc::new(Histogram::new());
/// {
///     let _span = SpanTimer::new(h.clone());
///     // ... timed work ...
/// }
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    sink: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl SpanTimer {
    /// Starts timing; the sample is recorded into `sink` on drop.
    pub fn new(sink: Arc<Histogram>) -> Self {
        SpanTimer {
            sink,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed time so far, in nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records now and disarms the drop, returning the sample recorded.
    pub fn finish(mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.sink.record(ns);
        self.armed = false;
        ns
    }

    /// Disarms the guard: nothing is recorded on drop.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.sink.record(self.elapsed_ns());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let h = Arc::new(Histogram::new());
        {
            let _t = SpanTimer::new(h.clone());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_disarms_drop() {
        let h = Arc::new(Histogram::new());
        let t = SpanTimer::new(h.clone());
        let ns = t.finish();
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().sum, ns);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Arc::new(Histogram::new());
        SpanTimer::new(h.clone()).cancel();
        assert_eq!(h.count(), 0);
    }
}
