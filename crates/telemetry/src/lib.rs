//! # xseq-telemetry
//!
//! Dependency-free observability primitives for the xseq pipeline:
//!
//! - [`Counter`] / [`Gauge`] — single-atomic event counts and levels.
//! - [`Histogram`] — a power-of-two-bucketed latency histogram with
//!   count/sum/min/max and nearest-rank quantile estimation
//!   ([`HistogramSnapshot::p50`]/[`HistogramSnapshot::p90`]/
//!   [`HistogramSnapshot::p99`]).
//! - [`MetricsRegistry`] — named registration (`index.search`,
//!   `storage.pool.hits`, …) handing out `Arc` handles so the hot path
//!   never touches the registry lock.
//! - [`Snapshot`] — a point-in-time copy with [`Snapshot::delta`] for
//!   interval measurements.
//! - [`SpanTimer`] — an RAII guard recording a phase's wall time into a
//!   histogram on drop.
//! - [`export::to_json`] / [`export::render_table`] /
//!   [`export::to_prometheus`] — snapshot exporters, the last in the
//!   Prometheus text exposition format with [`promlint`] as its
//!   dep-free CI validator.
//! - [`HeapSize`] — model-based heap attribution feeding the `memory.*`
//!   gauge family (domain impls live next to their types).
//! - [`Watchdog`] / [`MetricsJournal`] — tick-driven liveness flags
//!   (`health.*`) and a snapshot-delta journal, driven externally (e.g.
//!   by the `xseq-exec` ticker) so this crate stays thread-free.
//! - [`Tracer`] / [`ActiveTrace`] / [`Trace`] — hierarchical per-query
//!   tracing with head sampling and an always-retained slow-query log,
//!   flushed through a lock-free [`BoundedRing`]; traces export as Chrome
//!   trace-event JSON ([`export::to_chrome_json`]) or an indented text tree
//!   ([`export::render_trace`]).
//! - [`EventJournal`] / [`Event`] — the flight recorder: a bounded,
//!   lock-free journal of severity-levelled lifecycle events, exportable
//!   as JSON Lines.
//! - [`AnomalyDetector`] — online SLO detection: streaming [`P2Quantile`]
//!   and [`Ewma`] baselines over snapshot deltas, with burn-rate
//!   hysteresis, `anomaly.*` gauges and flight-recorder alerts.
//! - [`PhaseProfile`] — continuous phase profiling folded from the span
//!   timers' histograms, rendered as collapsed stacks for flamegraph
//!   or speedscope.
//!
//! Everything mutating is lock-free (relaxed atomics), so instrumentation
//! can sit inside the paper's per-candidate inner loops without changing
//! the measured behaviour.

pub mod anomaly;
pub mod events;
pub mod export;
pub mod health;
pub mod heap;
pub mod metrics;
pub mod profile;
pub mod promlint;
pub mod registry;
pub mod ring;
pub mod sched;
pub mod span;
pub mod trace;

pub use anomaly::{AnomalyAlert, AnomalyDetector, AnomalyKind, Ewma, P2Quantile, SloPolicy};
pub use events::{Event, EventCounts, EventJournal, Severity};
pub use export::{
    format_ns, prometheus_name, render_table, render_trace, to_chrome_json, to_json, to_prometheus,
};
pub use health::{MetricsJournal, Watchdog, WorkerHandle};
pub use heap::{hash_table_alloc_bytes, HeapSize};
pub use metrics::{
    bucket_bounds, bucket_of, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use profile::{PhaseEntry, PhaseNode, PhaseProfile};
pub use promlint::{lint_prometheus, PromFinding};
pub use registry::{Metric, MetricValue, MetricsRegistry, Snapshot};
pub use ring::BoundedRing;
pub use sched::{check_counter, check_ring, CounterOp, RingOp, Schedules};
pub use span::SpanTimer;
pub use trace::{
    ActiveTrace, AttrValue, SpanId, Trace, TraceConfig, TraceId, TraceSpan, Tracer, TracerStats,
};
