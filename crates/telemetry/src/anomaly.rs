//! Online SLO anomaly detection over metric-snapshot deltas.
//!
//! The detector keeps streaming per-metric baselines — a [`P2Quantile`]
//! (Jain & Chlamtac's P² algorithm: five markers, piecewise-parabolic
//! adjustment, O(1) memory) over interval p99 latencies, and an [`Ewma`]
//! over interval throughput — and compares each new interval against them.
//! Intervals come from [`Snapshot::delta`] on whatever cadence the caller
//! drives [`AnomalyDetector::tick`] (the `xseq-exec` `Ticker` in
//! production, a plain loop in tests), so the module itself stays
//! clock- and thread-free like the rest of the crate.
//!
//! Alerting uses burn-rate hysteresis: a metric must breach its threshold
//! for [`SloPolicy::burn_intervals`] *consecutive* judged intervals before
//! an alert fires, and a breaching interval is never absorbed into the
//! baseline (so a sustained regression cannot normalise itself).  Alerts
//! flip `anomaly.*` gauges in the registry and, when a journal is
//! attached, record `anomaly.latency` / `anomaly.throughput` /
//! `anomaly.clear` flight-recorder events.

use crate::events::{Event, EventJournal, Severity};
use crate::metrics::{Counter, Gauge};
use crate::registry::{MetricsRegistry, Snapshot};
use std::sync::{Arc, Mutex};

/// Streaming quantile estimation with the P² algorithm
/// (Jain & Chlamtac, CACM 1985).
///
/// Maintains five markers whose heights approximate the `p`-quantile and
/// its neighbourhood in O(1) memory per observation.  For fewer than five
/// observations the estimate is the exact nearest-rank quantile of the
/// sorted prefix.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    count: u64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
}

impl P2Quantile {
    /// An estimator for the `p`-quantile (`p` clamped to `0.0..=1.0`).
    pub fn new(p: f64) -> Self {
        P2Quantile {
            p: p.clamp(0.0, 1.0),
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 2.0, 3.0, 4.0, 5.0],
        }
    }

    /// The targeted quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    // PANIC-FREE: heights/positions/desired are [_; 5]; every index is a
    // constant in 0..5 or i±1 with i in 1..4, and f64 division never panics
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            let n = self.count as usize;
            self.heights[n] = x;
            self.count += 1;
            let filled = self.count as usize;
            self.heights[..filled].sort_by(f64::total_cmp);
            if self.count == 5 {
                let p = self.p;
                self.desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0];
            }
            return;
        }
        // Locate the cell containing x, updating the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x < self.heights[1] {
            0
        } else if x < self.heights[2] {
            1
        } else if x < self.heights[3] {
            2
        } else if x <= self.heights[4] {
            3
        } else {
            self.heights[4] = x;
            3
        };
        for pos in &mut self.positions[k + 1..] {
            *pos += 1.0;
        }
        let p = self.p;
        let increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0];
        for (d, inc) in self.desired.iter_mut().zip(increments) {
            *d += inc;
        }
        self.count += 1;
        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let adjusted = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    self.linear(i, sign)
                };
                self.heights[i] = adjusted;
                self.positions[i] += sign;
            }
        }
    }

    // PANIC-FREE: called only with i in 1..4 over [_; 5] arrays; float
    // division by a zero gap yields inf/NaN, not a panic
    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + sign / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    // PANIC-FREE: called only with i in 1..4, so j in 0..5; float division
    // never panics
    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, `None` before the first observation.  Exact
    /// (nearest rank) for fewer than five observations.
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let n = self.count as usize;
            let rank = ((self.p * n as f64).ceil() as usize).clamp(1, n);
            // PANIC-FREE: rank clamped to 1..=n with n < 5
            return Some(self.heights[rank - 1]);
        }
        Some(self.heights[2])
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// An EWMA with smoothing factor `alpha` (clamped to `(0.0, 1.0]`;
    /// higher tracks faster).  The first observation seeds the average.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::EPSILON, 1.0),
            value: None,
        }
    }

    /// Feeds one observation and returns the updated average.
    pub fn observe(&mut self, x: f64) -> f64 {
        let v = match self.value {
            Some(prev) => prev + self.alpha * (x - prev),
            None => x,
        };
        self.value = Some(v);
        v
    }

    /// The current average, `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Thresholds and hysteresis for the anomaly detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// A latency interval breaches when its p99 exceeds
    /// `latency_factor ×` the streaming baseline.
    pub latency_factor: f64,
    /// A throughput interval breaches when its rate drops below
    /// `throughput_floor ×` the baseline (while the baseline is at least
    /// [`min_rate`](Self::min_rate)).
    pub throughput_floor: f64,
    /// Judged intervals absorbed into the baseline before alerting can
    /// start (clamped ≥ 1).
    pub warmup_intervals: u64,
    /// Consecutive breaching intervals required before an alert fires
    /// (burn-rate hysteresis; clamped ≥ 1).
    pub burn_intervals: u64,
    /// Minimum histogram samples in an interval for a latency judgement;
    /// quieter intervals are skipped entirely.
    pub min_samples: u64,
    /// Minimum baseline rate (events per interval) for a throughput
    /// judgement; idle metrics are never flagged.
    pub min_rate: f64,
    /// EWMA smoothing factor for the baselines.
    pub ewma_alpha: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            latency_factor: 2.0,
            throughput_floor: 0.5,
            warmup_intervals: 3,
            burn_intervals: 2,
            min_samples: 8,
            min_rate: 1.0,
            ewma_alpha: 0.3,
        }
    }
}

/// What kind of deviation an alert describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Interval p99 latency exceeded `latency_factor ×` baseline.
    LatencyP99,
    /// Interval throughput fell below `throughput_floor ×` baseline.
    ThroughputDrop,
}

/// One fired alert, returned from [`AnomalyDetector::tick`] on the tick
/// where the burn threshold is crossed.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyAlert {
    /// The watched metric name.
    pub metric: String,
    /// The deviation kind.
    pub kind: AnomalyKind,
    /// The interval's observed value (p99 nanoseconds, or rate).
    pub observed: f64,
    /// The baseline it was judged against.
    pub baseline: f64,
}

#[derive(Debug)]
struct LatencyWatch {
    metric: String,
    active_gauge: Arc<Gauge>,
    baseline_gauge: Arc<Gauge>,
    last_gauge: Arc<Gauge>,
    baseline: P2Quantile,
    smoothed: Ewma,
    judged: u64,
    breaches: u64,
    alerting: bool,
}

#[derive(Debug)]
struct ThroughputWatch {
    metric: String,
    active_gauge: Arc<Gauge>,
    baseline_gauge: Arc<Gauge>,
    last_gauge: Arc<Gauge>,
    baseline: Ewma,
    judged: u64,
    breaches: u64,
    alerting: bool,
}

#[derive(Debug)]
struct DetectorState {
    last: Snapshot,
    latency: Vec<LatencyWatch>,
    throughput: Vec<ThroughputWatch>,
}

/// Online anomaly detector over a registry's metric deltas.
///
/// Construct with [`new`](Self::new), add watches fluently, then drive
/// [`tick`](Self::tick) on a fixed cadence:
///
/// ```
/// use xseq_telemetry::{AnomalyDetector, MetricsRegistry, SloPolicy};
/// use std::sync::Arc;
///
/// let reg = Arc::new(MetricsRegistry::new());
/// let det = AnomalyDetector::new(reg.clone(), SloPolicy::default())
///     .watch_latency("index.search")
///     .watch_throughput("workload.queries");
/// assert!(det.tick().is_empty(), "quiet interval");
/// ```
#[derive(Debug)]
pub struct AnomalyDetector {
    registry: Arc<MetricsRegistry>,
    policy: SloPolicy,
    events: Option<Arc<EventJournal>>,
    ticks: Arc<Counter>,
    alerts: Arc<Counter>,
    state: Mutex<DetectorState>,
}

fn gauge_name(kind: &str, metric: &str, field: &str) -> String {
    format!("anomaly.{kind}.{}.{field}", metric.replace('.', "_"))
}

impl AnomalyDetector {
    /// A detector reading (and publishing `anomaly.*` metrics into)
    /// `registry`, judging with `policy`.  The first tick measures activity
    /// since this call.
    pub fn new(registry: Arc<MetricsRegistry>, policy: SloPolicy) -> Self {
        let ticks = registry.counter("anomaly.ticks");
        let alerts = registry.counter("anomaly.alerts");
        let last = registry.snapshot();
        let policy = SloPolicy {
            warmup_intervals: policy.warmup_intervals.max(1),
            burn_intervals: policy.burn_intervals.max(1),
            ..policy
        };
        AnomalyDetector {
            registry,
            policy,
            events: None,
            ticks,
            alerts,
            state: Mutex::new(DetectorState {
                last,
                latency: Vec::new(),
                throughput: Vec::new(),
            }),
        }
    }

    /// Attaches a flight-recorder journal; alerts and recoveries are
    /// recorded as `anomaly.*` events.
    pub fn events(mut self, journal: Arc<EventJournal>) -> Self {
        self.events = Some(journal);
        self
    }

    /// Watches histogram `metric`'s interval p99 against a streaming
    /// P²-median baseline of past interval p99s.  Publishes
    /// `anomaly.latency.<metric>.{active,baseline_ns,last_ns}` gauges
    /// (dots in `metric` become underscores).
    pub fn watch_latency(self, metric: &str) -> Self {
        let watch = LatencyWatch {
            metric: metric.to_string(),
            active_gauge: self
                .registry
                .gauge(&gauge_name("latency", metric, "active")),
            baseline_gauge: self
                .registry
                .gauge(&gauge_name("latency", metric, "baseline_ns")),
            last_gauge: self
                .registry
                .gauge(&gauge_name("latency", metric, "last_ns")),
            baseline: P2Quantile::new(0.5),
            smoothed: Ewma::new(self.policy.ewma_alpha),
            judged: 0,
            breaches: 0,
            alerting: false,
        };
        self.state
            .lock()
            .expect("anomaly state lock")
            .latency
            .push(watch);
        self
    }

    /// Watches counter `metric`'s per-interval rate against an EWMA
    /// baseline.  Publishes
    /// `anomaly.throughput.<metric>.{active,baseline,last}` gauges.
    pub fn watch_throughput(self, metric: &str) -> Self {
        let watch = ThroughputWatch {
            metric: metric.to_string(),
            active_gauge: self
                .registry
                .gauge(&gauge_name("throughput", metric, "active")),
            baseline_gauge: self
                .registry
                .gauge(&gauge_name("throughput", metric, "baseline")),
            last_gauge: self
                .registry
                .gauge(&gauge_name("throughput", metric, "last")),
            baseline: Ewma::new(self.policy.ewma_alpha),
            judged: 0,
            breaches: 0,
            alerting: false,
        };
        self.state
            .lock()
            .expect("anomaly state lock")
            .throughput
            .push(watch);
        self
    }

    /// The policy in effect.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Judges the interval since the previous tick and returns the alerts
    /// that *fired* on this tick (transitions into the alerting state).
    pub fn tick(&self) -> Vec<AnomalyAlert> {
        self.ticks.inc();
        let current = self.registry.snapshot();
        let mut state = self.state.lock().expect("anomaly state lock");
        let delta = current.delta(&state.last);
        state.last = current;
        let mut fired = Vec::new();

        for w in &mut state.latency {
            let Some(h) = delta.histogram(&w.metric) else {
                continue;
            };
            if h.count < self.policy.min_samples {
                continue;
            }
            let Some(p99) = h.p99() else { continue };
            let p99 = p99 as f64;
            w.last_gauge.set(p99 as i64);
            let baseline = w.baseline.value();
            let warmed = w.judged >= self.policy.warmup_intervals;
            w.judged += 1;
            let breach = match baseline {
                Some(b) if warmed => p99 > self.policy.latency_factor * b,
                _ => false,
            };
            if breach {
                w.breaches += 1;
                let b = baseline.unwrap_or(0.0);
                if w.breaches >= self.policy.burn_intervals && !w.alerting {
                    w.alerting = true;
                    w.active_gauge.set(1);
                    self.alerts.inc();
                    if let Some(journal) = &self.events {
                        journal.record(
                            Event::new("anomaly.latency")
                                .severity(Severity::Warn)
                                .message(w.metric.clone())
                                .attr("p99_ns", p99)
                                .attr("baseline_ns", b),
                        );
                    }
                    fired.push(AnomalyAlert {
                        metric: w.metric.clone(),
                        kind: AnomalyKind::LatencyP99,
                        observed: p99,
                        baseline: b,
                    });
                }
            } else {
                w.breaches = 0;
                if w.alerting {
                    w.alerting = false;
                    w.active_gauge.set(0);
                    if let Some(journal) = &self.events {
                        journal.record(Event::new("anomaly.clear").message(w.metric.clone()));
                    }
                }
                // Only healthy intervals feed the baseline, so a sustained
                // regression cannot normalise itself away.
                w.baseline.observe(p99);
                w.smoothed.observe(p99);
                if let Some(b) = w.baseline.value() {
                    w.baseline_gauge.set(b as i64);
                }
            }
        }

        for w in &mut state.throughput {
            let rate = delta.counter(&w.metric) as f64;
            w.last_gauge.set(rate as i64);
            let baseline = w.baseline.value();
            let warmed = w.judged >= self.policy.warmup_intervals;
            w.judged += 1;
            let breach = match baseline {
                Some(b) if warmed && b >= self.policy.min_rate => {
                    rate < self.policy.throughput_floor * b
                }
                _ => false,
            };
            if breach {
                w.breaches += 1;
                let b = baseline.unwrap_or(0.0);
                if w.breaches >= self.policy.burn_intervals && !w.alerting {
                    w.alerting = true;
                    w.active_gauge.set(1);
                    self.alerts.inc();
                    if let Some(journal) = &self.events {
                        journal.record(
                            Event::new("anomaly.throughput")
                                .severity(Severity::Warn)
                                .message(w.metric.clone())
                                .attr("rate", rate)
                                .attr("baseline", b),
                        );
                    }
                    fired.push(AnomalyAlert {
                        metric: w.metric.clone(),
                        kind: AnomalyKind::ThroughputDrop,
                        observed: rate,
                        baseline: b,
                    });
                }
            } else {
                w.breaches = 0;
                if w.alerting {
                    w.alerting = false;
                    w.active_gauge.set(0);
                    if let Some(journal) = &self.events {
                        journal.record(Event::new("anomaly.clear").message(w.metric.clone()));
                    }
                }
                w.baseline.observe(rate);
                if let Some(b) = w.baseline.value() {
                    w.baseline_gauge.set(b as i64);
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let n = sorted.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        for p in [0.1, 0.5, 0.9, 0.99] {
            let mut est = P2Quantile::new(p);
            assert_eq!(est.value(), None);
            let samples = [7.0, 3.0, 9.0, 1.0];
            for (i, &s) in samples.iter().enumerate() {
                est.observe(s);
                let mut sorted: Vec<f64> = samples[..=i].to_vec();
                sorted.sort_by(f64::total_cmp);
                assert_eq!(
                    est.value(),
                    Some(exact_quantile(&sorted, p)),
                    "p={p} n={}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn p2_tracks_uniform_grid_median() {
        let mut est = P2Quantile::new(0.5);
        // Deterministically shuffled 0..1000 via a multiplicative stride.
        for i in 0..1000u64 {
            est.observe(((i * 617) % 1000) as f64);
        }
        let v = est.value().expect("estimate");
        assert!((v - 500.0).abs() < 50.0, "median estimate {v}");
        assert_eq!(est.count(), 1000);
    }

    #[test]
    fn p2_stays_within_observed_range() {
        let mut est = P2Quantile::new(0.99);
        for i in 0..500u64 {
            est.observe(((i * 271) % 97) as f64);
        }
        let v = est.value().expect("estimate");
        assert!((0.0..=96.0).contains(&v), "estimate {v} escaped the range");
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(100.0);
        assert_eq!(e.value(), Some(100.0), "first sample seeds");
        for _ in 0..20 {
            e.observe(200.0);
        }
        let v = e.value().expect("value");
        assert!((v - 200.0).abs() < 1.0, "converged to {v}");
    }

    fn spike_policy() -> SloPolicy {
        SloPolicy {
            warmup_intervals: 2,
            burn_intervals: 2,
            min_samples: 4,
            ..SloPolicy::default()
        }
    }

    fn feed(reg: &MetricsRegistry, name: &str, value_ns: u64, n: usize) {
        let h = reg.histogram(name);
        for _ in 0..n {
            h.record(value_ns);
        }
    }

    #[test]
    fn latency_spike_fires_after_burn_and_clears() {
        let reg = Arc::new(MetricsRegistry::new());
        let journal = Arc::new(EventJournal::new(16));
        let det = AnomalyDetector::new(reg.clone(), spike_policy())
            .events(journal.clone())
            .watch_latency("index.search");
        // Warmup + baseline: steady ~1µs intervals.
        for _ in 0..4 {
            feed(&reg, "index.search", 1_000, 10);
            assert!(det.tick().is_empty());
        }
        // Spike interval 1: breach but below burn threshold.
        feed(&reg, "index.search", 50_000, 10);
        assert!(det.tick().is_empty(), "one breach is not an alert");
        // Spike interval 2: burn threshold reached -> alert fires once.
        feed(&reg, "index.search", 50_000, 10);
        let alerts = det.tick();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AnomalyKind::LatencyP99);
        assert_eq!(alerts[0].metric, "index.search");
        assert_eq!(reg.gauge("anomaly.latency.index_search.active").get(), 1);
        // Continuing spike does not re-fire.
        feed(&reg, "index.search", 50_000, 10);
        assert!(det.tick().is_empty(), "already alerting");
        // Recovery clears the gauge and records a clear event.
        feed(&reg, "index.search", 1_000, 10);
        assert!(det.tick().is_empty());
        assert_eq!(reg.gauge("anomaly.latency.index_search.active").get(), 0);
        let names: Vec<&str> = journal.events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["anomaly.latency", "anomaly.clear"]);
        assert_eq!(reg.snapshot().counter("anomaly.alerts"), 1);
    }

    #[test]
    fn clean_run_stays_silent() {
        let reg = Arc::new(MetricsRegistry::new());
        let det = AnomalyDetector::new(reg.clone(), spike_policy()).watch_latency("index.search");
        for _ in 0..20 {
            feed(&reg, "index.search", 1_000, 10);
            assert!(det.tick().is_empty());
        }
        assert_eq!(reg.snapshot().counter("anomaly.alerts"), 0);
    }

    #[test]
    fn quiet_intervals_are_skipped() {
        let reg = Arc::new(MetricsRegistry::new());
        let det = AnomalyDetector::new(reg.clone(), spike_policy()).watch_latency("index.search");
        for _ in 0..10 {
            assert!(det.tick().is_empty(), "no samples, no judgement");
        }
        assert_eq!(reg.gauge("anomaly.latency.index_search.last_ns").get(), 0);
    }

    #[test]
    fn throughput_drop_fires_and_idle_metrics_never_flag() {
        let reg = Arc::new(MetricsRegistry::new());
        let det = AnomalyDetector::new(reg.clone(), spike_policy())
            .watch_throughput("workload.queries")
            .watch_throughput("update.inserts");
        let c = reg.counter("workload.queries");
        reg.counter("update.inserts"); // stays at zero rate throughout
        for _ in 0..4 {
            c.add(100);
            assert!(det.tick().is_empty());
        }
        // Two consecutive collapsed intervals -> alert.
        c.add(5);
        assert!(det.tick().is_empty());
        c.add(5);
        let alerts = det.tick();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AnomalyKind::ThroughputDrop);
        assert_eq!(alerts[0].metric, "workload.queries");
        assert_eq!(
            reg.gauge("anomaly.throughput.workload_queries.active")
                .get(),
            1
        );
        assert_eq!(
            reg.gauge("anomaly.throughput.update_inserts.active").get(),
            0,
            "idle metric below min_rate never alerts"
        );
    }
}
