//! A lock-free bounded MPMC ring (Vyukov-style sequence queue).
//!
//! The trace subsystem flushes completed [`Trace`](crate::trace::Trace)s
//! from query threads into bounded rings — the *recent traces* ring and the
//! *slow-query log*.  The write path runs on every retained query, possibly
//! from many threads at once, so it must not serialize; the read path
//! (`slow_queries()`, `recent_traces()`) is an operator action and may be
//! slower.
//!
//! The implementation is the classic bounded sequence queue: each slot
//! carries an atomic lap stamp (`seq`), producers claim a slot by CAS on the
//! push cursor and publish by bumping the stamp, consumers mirror that on
//! the pop cursor.  Both `push` and `pop` are lock-free (a stalled thread
//! can delay at most its own slot).  [`BoundedRing::force_push`] gives the
//! ring its "keep the most recent N" behaviour: when full it evicts the
//! oldest element and retries.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    /// Lap stamp: `pos` when empty and writable by the producer claiming
    /// `pos`, `pos + 1` when full, `pos + capacity` after the consumer of
    /// `pos` has taken the value.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A fixed-capacity multi-producer multi-consumer queue with lock-free push
/// and pop and an eviction push for "retain the latest N" semantics.
pub struct BoundedRing<T> {
    slots: Box<[Slot<T>]>,
    capacity: usize,
    push_pos: AtomicUsize,
    pop_pos: AtomicUsize,
}

// SAFETY: sending the ring to another thread moves its `T`s with it; the
// `UnsafeCell<MaybeUninit<T>>` slots hold values that are moved in and out
// whole, never borrowed across threads, so `T: Send` suffices.
unsafe impl<T: Send> Send for BoundedRing<T> {}
// SAFETY: shared access is mediated by the per-slot `seq` stamp with
// Acquire/Release ordering — only the thread that won the cursor CAS touches
// a slot, so no `T` is ever handed to two threads and `T: Send` suffices.
unsafe impl<T: Send> Sync for BoundedRing<T> {}

impl<T> BoundedRing<T> {
    /// A ring holding at most `capacity` elements (minimum 2).
    ///
    /// Capacity 1 is rounded up: with a single slot the lap stamps collide —
    /// the "full" stamp `pos + 1` equals the next lap's "empty" stamp
    /// `pos + capacity` — so a second producer would overwrite the
    /// unconsumed value and the consumer would spin on a stamp from the
    /// future.  (Found by the interleaving checker in [`crate::sched`].)
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        BoundedRing {
            slots,
            capacity,
            push_pos: AtomicUsize::new(0),
            pop_pos: AtomicUsize::new(0),
        }
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Instantaneous element count (racy under concurrency, exact when
    /// quiescent).
    pub fn len(&self) -> usize {
        // ORDERING: cursor — advisory count only; the method documents
        // itself as racy under concurrency.
        let push = self.push_pos.load(Ordering::Relaxed);
        let pop = self.pop_pos.load(Ordering::Relaxed);
        push.saturating_sub(pop).min(self.capacity)
    }

    /// True when no element is present (same caveat as [`BoundedRing::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `value`; fails (returning it) when the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        // ORDERING: cursor — the cursor is only a claim ticket; publication
        // happens through the slot's `seq` stamp (Acquire/Release below), so
        // cursor loads and the CAS itself need no ordering of their own.
        let mut pos = self.push_pos.load(Ordering::Relaxed);
        loop {
            // PANIC-FREE: capacity >= 1 (constructor clamps), and the
            // modulo keeps the index below slots.len() == capacity
            let slot = &self.slots[pos % self.capacity];
            // ORDERING: acquire — pairs with the Release stamp store so the
            // consumer's slot release happens-before this producer's reuse.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // the slot is empty for lap `pos`: claim it
                // ORDERING: cursor — see the comment at the top of `push`.
                match self.push_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Until the Release store below, no other producer can
                        // claim this slot (the cursor moved past it for this
                        // lap) and no consumer may read it (stamp ≠ pos + 1).
                        debug_assert_eq!(
                            // ORDERING: acquire — re-checks the claimed
                            // slot's published stamp (debug builds only).
                            slot.seq.load(Ordering::Acquire),
                            pos,
                            "claimed slot's lap stamp moved under its writer"
                        );
                        // SAFETY: winning the CAS makes this thread the only
                        // writer of this slot until `seq` is bumped below.
                        unsafe { (*slot.value.get()).write(value) };
                        // ORDERING: release — publishes the slot value
                        // written above to the consumer's Acquire load.
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                // a full lap behind: the ring is full
                return Err(value);
            } else {
                // ORDERING: cursor — see the comment at the top of `push`.
                pos = self.push_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns the oldest element, `None` when empty.
    pub fn pop(&self) -> Option<T> {
        // ORDERING: cursor — same claim-ticket discipline as `push`; the
        // slot's `seq` stamp carries all inter-thread publication.
        let mut pos = self.pop_pos.load(Ordering::Relaxed);
        loop {
            // PANIC-FREE: capacity >= 1 (constructor clamps), and the
            // modulo keeps the index below slots.len() == capacity
            let slot = &self.slots[pos % self.capacity];
            // ORDERING: acquire — pairs with the producer's Release stamp
            // store; makes the slot value visible before we read it.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                // ORDERING: cursor — see the comment at the top of `pop`.
                match self.pop_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // The producer's Release store of `pos + 1` happened
                        // before our Acquire load; nobody else may claim lap
                        // `pos` of this slot until the Release store below.
                        debug_assert_eq!(
                            // ORDERING: acquire — re-checks the claimed
                            // slot's published stamp (debug builds only).
                            slot.seq.load(Ordering::Acquire),
                            pos + 1,
                            "claimed slot's lap stamp moved under its reader"
                        );
                        // SAFETY: winning the CAS makes this thread the only
                        // reader of this slot's published value.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        // ORDERING: release — hands the emptied slot back to
                        // producers; pairs with their Acquire stamp load.
                        slot.seq.store(pos + self.capacity, Ordering::Release);
                        return Some(value);
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                return None;
            } else {
                // ORDERING: cursor — see the comment at the top of `pop`.
                pos = self.pop_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Appends `value`, evicting the oldest element when the ring is full.
    ///
    /// Returns the evicted element, if eviction was needed to make room.
    pub fn force_push(&self, mut value: T) -> Option<T> {
        let mut evicted = None;
        loop {
            match self.push(value) {
                Ok(()) => return evicted,
                Err(v) => {
                    value = v;
                    // full: drop the oldest and retry (a concurrent pop may
                    // beat us to it, in which case the retry just succeeds)
                    if let Some(old) = self.pop() {
                        evicted = Some(old);
                    }
                }
            }
        }
    }
}

impl<T> Drop for BoundedRing<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for BoundedRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedRing")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let r = BoundedRing::new(4);
        for i in 0..4 {
            r.push(i).unwrap();
        }
        assert!(r.push(99).is_err());
        for i in 0..4 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn force_push_evicts_oldest() {
        let r = BoundedRing::new(3);
        for i in 0..3 {
            assert_eq!(r.force_push(i), None);
        }
        assert_eq!(r.force_push(3), Some(0));
        assert_eq!(r.force_push(4), Some(1));
        let drained: Vec<i32> = std::iter::from_fn(|| r.pop()).collect();
        assert_eq!(drained, vec![2, 3, 4]);
    }

    #[test]
    fn wraps_many_laps() {
        let r = BoundedRing::new(2);
        for lap in 0..100 {
            r.push(lap).unwrap();
            assert_eq!(r.pop(), Some(lap));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn drop_releases_contents() {
        let item = Arc::new(());
        {
            let r = BoundedRing::new(8);
            for _ in 0..5 {
                r.push(item.clone()).unwrap();
            }
            assert_eq!(Arc::strong_count(&item), 6);
        }
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1000;
        let r = Arc::new(BoundedRing::new(THREADS * PER_THREAD));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        r.push(t * PER_THREAD + i).unwrap();
                    }
                });
            }
        });
        let mut seen: Vec<usize> = std::iter::from_fn(|| r.pop()).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), THREADS * PER_THREAD);
        seen.dedup();
        assert_eq!(seen.len(), THREADS * PER_THREAD, "no duplicates");
    }

    #[test]
    fn concurrent_force_push_stays_bounded() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 500;
        const CAP: usize = 32;
        let r = Arc::new(BoundedRing::new(CAP));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        r.force_push(t * PER_THREAD + i);
                    }
                });
            }
        });
        let drained: Vec<usize> = std::iter::from_fn(|| r.pop()).collect();
        assert_eq!(drained.len(), CAP, "exactly the capacity survives");
    }
}
