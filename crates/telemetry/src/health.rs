//! Liveness watchdog and the snapshot-delta metrics journal.
//!
//! Both are *deterministic* tick-driven state machines: nothing in this
//! module reads clocks or spawns threads.  A periodic driver (the
//! `xseq-exec` `Ticker`, or a test calling `tick()` by hand) supplies the
//! cadence, which keeps the logic testable without sleeps and keeps this
//! crate dependency- and thread-free.
//!
//! The watchdog tracks named workers through heartbeat counters.  A worker
//! that is marked active but whose heartbeat has not moved for
//! `stall_ticks` consecutive ticks is flagged through its
//! `health.<worker>.stalled` gauge and counted in `health.workers.stalled`.
//! Inactive workers are never considered stalled — a pool worker that
//! parked between batches is healthy, a compaction that stopped midway is
//! not.  Clearing is hysteretic: a stalled worker must show progress for
//! `recover_ticks` consecutive ticks before the flag drops (parking always
//! clears immediately), so a worker limping along at one beat every few
//! ticks does not flap the gauge on slow CI boxes.  Stall and recovery
//! transitions can be recorded into a flight-recorder [`EventJournal`].
//!
//! The journal renders the delta between consecutive registry snapshots as
//! compact text lines — the "metrics journal" a long-running process logs
//! once per interval so an operator can tail activity without a scraper.

use crate::events::{Event, EventJournal, Severity};
use crate::export::format_ns;
use crate::metrics::{Counter, Gauge};
use crate::registry::{MetricValue, MetricsRegistry, Snapshot};
use std::sync::{Arc, Mutex};

/// A worker's handle onto its liveness metrics: bump [`beat`](Self::beat)
/// from the work loop, bracket busy periods with
/// [`set_active`](Self::set_active).
#[derive(Debug, Clone)]
pub struct WorkerHandle {
    heartbeat: Arc<Counter>,
    active: Arc<Gauge>,
}

impl WorkerHandle {
    /// Records one unit of observable progress.
    pub fn beat(&self) {
        self.heartbeat.inc();
    }

    /// Marks the worker busy (`true`) or parked (`false`).  Parked workers
    /// are exempt from stall detection.
    pub fn set_active(&self, active: bool) {
        self.active.set(active as i64);
    }
}

#[derive(Debug)]
struct WatchedWorker {
    name: String,
    heartbeat: Arc<Counter>,
    active: Arc<Gauge>,
    stalled: Arc<Gauge>,
    last_beat: u64,
    unchanged_ticks: u64,
    /// Consecutive progress ticks since the stall (recovery hysteresis).
    healthy_ticks: u64,
    /// Whether the worker is currently flagged.
    is_stalled: bool,
}

/// Tick-driven liveness monitor over named workers.
#[derive(Debug)]
pub struct Watchdog {
    registry: Arc<MetricsRegistry>,
    stall_ticks: u64,
    recover_ticks: u64,
    events: Option<Arc<EventJournal>>,
    ticks: Arc<Counter>,
    stalled_total: Arc<Gauge>,
    workers: Mutex<Vec<WatchedWorker>>,
}

impl Watchdog {
    /// A watchdog publishing into `registry`, flagging an active worker as
    /// stalled after `stall_ticks` ticks without a heartbeat
    /// (`stall_ticks` is clamped to ≥ 1).  A single progress tick clears
    /// the flag; use [`with_hysteresis`](Self::with_hysteresis) for a
    /// longer recovery window.
    pub fn new(registry: Arc<MetricsRegistry>, stall_ticks: u64) -> Self {
        Self::with_hysteresis(registry, stall_ticks, 1)
    }

    /// A watchdog that flags after `stall_ticks` silent ticks and clears
    /// only after `recover_ticks` consecutive progress ticks (both clamped
    /// to ≥ 1).  A silent tick during recovery resets the progress streak;
    /// going inactive always clears immediately.
    pub fn with_hysteresis(
        registry: Arc<MetricsRegistry>,
        stall_ticks: u64,
        recover_ticks: u64,
    ) -> Self {
        let ticks = registry.counter("health.watchdog.ticks");
        let stalled_total = registry.gauge("health.workers.stalled");
        Watchdog {
            registry,
            stall_ticks: stall_ticks.max(1),
            recover_ticks: recover_ticks.max(1),
            events: None,
            ticks,
            stalled_total,
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Attaches a flight-recorder journal; stall and recovery *transitions*
    /// are recorded as `watchdog.stall` / `watchdog.recover` events (steady
    /// states are not re-reported).
    pub fn events(mut self, journal: Arc<EventJournal>) -> Self {
        self.events = Some(journal);
        self
    }

    /// Registers worker `name` and returns its handle.  The worker's
    /// gauges join the registry as `health.<name>.{heartbeat,active,stalled}`.
    /// Workers start parked.
    pub fn register(&self, name: &str) -> WorkerHandle {
        let heartbeat = self.registry.counter(&format!("health.{name}.heartbeat"));
        let active = self.registry.gauge(&format!("health.{name}.active"));
        let stalled = self.registry.gauge(&format!("health.{name}.stalled"));
        let handle = WorkerHandle {
            heartbeat: heartbeat.clone(),
            active: active.clone(),
        };
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        workers.push(WatchedWorker {
            name: name.to_string(),
            heartbeat,
            active,
            stalled,
            last_beat: 0,
            unchanged_ticks: 0,
            healthy_ticks: 0,
            is_stalled: false,
        });
        handle
    }

    /// Advances the watchdog one tick and returns the names of the workers
    /// currently considered stalled.
    pub fn tick(&self) -> Vec<String> {
        self.ticks.inc();
        let mut stalled_names = Vec::new();
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for w in workers.iter_mut() {
            let beat = w.heartbeat.get();
            let active = w.active.get() > 0;
            let progressed = !active || beat != w.last_beat;
            w.last_beat = beat;
            if progressed {
                w.unchanged_ticks = 0;
                if w.is_stalled {
                    w.healthy_ticks += 1;
                    // Parking clears at once; a busy worker must hold a
                    // progress streak of recover_ticks before unflagging.
                    if !active || w.healthy_ticks >= self.recover_ticks {
                        w.is_stalled = false;
                        w.healthy_ticks = 0;
                        w.stalled.set(0);
                        if let Some(journal) = &self.events {
                            journal.record(Event::new("watchdog.recover").message(w.name.clone()));
                        }
                    }
                } else {
                    w.stalled.set(0);
                }
            } else {
                w.healthy_ticks = 0;
                w.unchanged_ticks += 1;
                if w.unchanged_ticks >= self.stall_ticks && !w.is_stalled {
                    w.is_stalled = true;
                    w.stalled.set(1);
                    if let Some(journal) = &self.events {
                        journal.record(
                            Event::new("watchdog.stall")
                                .severity(Severity::Warn)
                                .message(w.name.clone())
                                .attr("silent_ticks", w.unchanged_ticks),
                        );
                    }
                }
            }
            if w.is_stalled {
                stalled_names.push(w.name.clone());
            }
        }
        self.stalled_total.set(stalled_names.len() as i64);
        stalled_names
    }
}

/// Renders the activity between consecutive registry snapshots as text.
///
/// Each `tick()` takes a fresh snapshot, diffs it against the previous
/// one, and returns one line per metric that moved: counters as `+N`,
/// gauges as their current value (only when changed), histograms as the
/// interval's sample count and mean latency.  An empty string means a
/// quiet interval.
#[derive(Debug)]
pub struct MetricsJournal {
    registry: Arc<MetricsRegistry>,
    last: Mutex<Snapshot>,
}

impl MetricsJournal {
    /// A journal whose first tick reports activity since this call.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        let last = registry.snapshot();
        MetricsJournal {
            registry,
            last: Mutex::new(last),
        }
    }

    /// Diffs the registry against the previous tick and returns the
    /// journal lines (without a trailing newline).
    pub fn tick(&self) -> String {
        let current = self.registry.snapshot();
        let mut last = self.last.lock().unwrap_or_else(|e| e.into_inner());
        let lines = render_delta(&current, &last);
        *last = current;
        lines
    }
}

/// The journal formatting of `current - previous`, exposed for tests and
/// for one-shot interval reports.
pub fn render_delta(current: &Snapshot, previous: &Snapshot) -> String {
    use std::fmt::Write as _;
    let delta = current.delta(previous);
    let mut out = String::new();
    for (name, value) in &delta.metrics {
        match value {
            MetricValue::Counter(v) => {
                if *v > 0 {
                    let _ = writeln!(out, "journal {name} +{v}");
                }
            }
            MetricValue::Gauge(v) => {
                let moved = match previous.metrics.get(name) {
                    Some(MetricValue::Gauge(prev)) => prev != v,
                    _ => true,
                };
                if moved {
                    let _ = writeln!(out, "journal {name} ={v}");
                }
            }
            MetricValue::Histogram(h) => {
                if let Some(mean) = h.sum.checked_div(h.count) {
                    let _ = writeln!(
                        out,
                        "journal {name} +{} samples, mean {}",
                        h.count,
                        format_ns(mean)
                    );
                }
            }
        }
    }
    out.truncate(out.trim_end().len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parked_workers_never_stall() {
        let reg = Arc::new(MetricsRegistry::new());
        let dog = Watchdog::new(reg.clone(), 2);
        let w = dog.register("ingest");
        for _ in 0..10 {
            assert!(dog.tick().is_empty());
        }
        assert_eq!(reg.gauge("health.ingest.stalled").get(), 0);
        drop(w);
    }

    #[test]
    fn active_silent_worker_stalls_and_recovers() {
        let reg = Arc::new(MetricsRegistry::new());
        let dog = Watchdog::new(reg.clone(), 2);
        let w = dog.register("compact");
        w.set_active(true);
        w.beat();
        assert!(dog.tick().is_empty()); // beat observed, baseline set
        assert!(dog.tick().is_empty()); // 1 silent tick < stall_ticks
        assert_eq!(dog.tick(), vec!["compact".to_string()]); // 2 silent ticks
        assert_eq!(reg.gauge("health.compact.stalled").get(), 1);
        assert_eq!(reg.gauge("health.workers.stalled").get(), 1);
        w.beat(); // progress clears the flag
        assert!(dog.tick().is_empty());
        assert_eq!(reg.gauge("health.compact.stalled").get(), 0);
        assert_eq!(reg.gauge("health.workers.stalled").get(), 0);
        assert_eq!(reg.counter("health.watchdog.ticks").get(), 4);
    }

    #[test]
    fn going_inactive_clears_a_stall() {
        let reg = Arc::new(MetricsRegistry::new());
        let dog = Watchdog::new(reg.clone(), 1);
        let w = dog.register("merge");
        w.set_active(true);
        dog.tick();
        assert_eq!(dog.tick(), vec!["merge".to_string()]);
        w.set_active(false);
        assert!(dog.tick().is_empty());
        assert_eq!(reg.gauge("health.merge.stalled").get(), 0);
    }

    #[test]
    fn recovery_hysteresis_needs_a_progress_streak() {
        let reg = Arc::new(MetricsRegistry::new());
        let journal = Arc::new(EventJournal::new(8));
        let dog = Watchdog::with_hysteresis(reg.clone(), 1, 2).events(journal.clone());
        let w = dog.register("flappy");
        w.set_active(true);
        assert_eq!(dog.tick(), vec!["flappy".to_string()]); // silent -> stalled
                                                            // One beat is not enough to clear with recover_ticks = 2 …
        w.beat();
        assert_eq!(dog.tick(), vec!["flappy".to_string()]);
        assert_eq!(reg.gauge("health.flappy.stalled").get(), 1);
        // … and a silent tick resets the streak.
        assert_eq!(dog.tick(), vec!["flappy".to_string()]);
        w.beat();
        assert_eq!(dog.tick(), vec!["flappy".to_string()]);
        // Two consecutive progress ticks finally clear it.
        w.beat();
        assert!(dog.tick().is_empty());
        assert_eq!(reg.gauge("health.flappy.stalled").get(), 0);
        // Transitions only: one stall event, one recover event.
        let names: Vec<&str> = journal.events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["watchdog.stall", "watchdog.recover"]);
    }

    #[test]
    fn flapping_worker_stays_flagged_under_hysteresis() {
        let reg = Arc::new(MetricsRegistry::new());
        let dog = Watchdog::with_hysteresis(reg.clone(), 1, 2);
        let w = dog.register("limp");
        w.set_active(true);
        dog.tick(); // stall
        for _ in 0..6 {
            // beat, silent, beat, silent… never two progress ticks in a row
            w.beat();
            assert_eq!(dog.tick(), vec!["limp".to_string()]);
            assert_eq!(dog.tick(), vec!["limp".to_string()]);
        }
        assert_eq!(reg.gauge("health.limp.stalled").get(), 1, "no flapping");
    }

    #[test]
    fn going_inactive_clears_despite_hysteresis() {
        let reg = Arc::new(MetricsRegistry::new());
        let dog = Watchdog::with_hysteresis(reg.clone(), 1, 5);
        let w = dog.register("parker");
        w.set_active(true);
        dog.tick();
        assert_eq!(dog.tick(), vec!["parker".to_string()]);
        w.set_active(false);
        assert!(dog.tick().is_empty(), "parking clears immediately");
        assert_eq!(reg.gauge("health.parker.stalled").get(), 0);
    }

    #[test]
    fn journal_reports_only_movement() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("query.count").add(5);
        reg.gauge("index.docs").set(3);
        let journal = MetricsJournal::new(reg.clone());
        assert_eq!(journal.tick(), "");
        reg.counter("query.count").add(2);
        reg.histogram("query.lat").record(1_000);
        reg.histogram("query.lat").record(3_000);
        let lines = journal.tick();
        assert!(lines.contains("journal query.count +2"), "{lines}");
        assert!(lines.contains("journal query.lat +2 samples"), "{lines}");
        assert!(!lines.contains("index.docs"), "unchanged gauge: {lines}");
        // quiet interval again
        assert_eq!(journal.tick(), "");
    }

    #[test]
    fn journal_reports_gauge_moves() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.gauge("index.delta.sequences").set(1);
        let journal = MetricsJournal::new(reg.clone());
        reg.gauge("index.delta.sequences").set(7);
        let lines = journal.tick();
        assert_eq!(lines, "journal index.delta.sequences =7");
    }
}
