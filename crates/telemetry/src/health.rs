//! Liveness watchdog and the snapshot-delta metrics journal.
//!
//! Both are *deterministic* tick-driven state machines: nothing in this
//! module reads clocks or spawns threads.  A periodic driver (the
//! `xseq-exec` `Ticker`, or a test calling `tick()` by hand) supplies the
//! cadence, which keeps the logic testable without sleeps and keeps this
//! crate dependency- and thread-free.
//!
//! The watchdog tracks named workers through heartbeat counters.  A worker
//! that is marked active but whose heartbeat has not moved for
//! `stall_ticks` consecutive ticks is flagged through its
//! `health.<worker>.stalled` gauge and counted in `health.workers.stalled`.
//! Inactive workers are never considered stalled — a pool worker that
//! parked between batches is healthy, a compaction that stopped midway is
//! not.
//!
//! The journal renders the delta between consecutive registry snapshots as
//! compact text lines — the "metrics journal" a long-running process logs
//! once per interval so an operator can tail activity without a scraper.

use crate::export::format_ns;
use crate::metrics::{Counter, Gauge};
use crate::registry::{MetricValue, MetricsRegistry, Snapshot};
use std::sync::{Arc, Mutex};

/// A worker's handle onto its liveness metrics: bump [`beat`](Self::beat)
/// from the work loop, bracket busy periods with
/// [`set_active`](Self::set_active).
#[derive(Debug, Clone)]
pub struct WorkerHandle {
    heartbeat: Arc<Counter>,
    active: Arc<Gauge>,
}

impl WorkerHandle {
    /// Records one unit of observable progress.
    pub fn beat(&self) {
        self.heartbeat.inc();
    }

    /// Marks the worker busy (`true`) or parked (`false`).  Parked workers
    /// are exempt from stall detection.
    pub fn set_active(&self, active: bool) {
        self.active.set(active as i64);
    }
}

#[derive(Debug)]
struct WatchedWorker {
    name: String,
    heartbeat: Arc<Counter>,
    active: Arc<Gauge>,
    stalled: Arc<Gauge>,
    last_beat: u64,
    unchanged_ticks: u64,
}

/// Tick-driven liveness monitor over named workers.
#[derive(Debug)]
pub struct Watchdog {
    registry: Arc<MetricsRegistry>,
    stall_ticks: u64,
    ticks: Arc<Counter>,
    stalled_total: Arc<Gauge>,
    workers: Mutex<Vec<WatchedWorker>>,
}

impl Watchdog {
    /// A watchdog publishing into `registry`, flagging an active worker as
    /// stalled after `stall_ticks` ticks without a heartbeat
    /// (`stall_ticks` is clamped to ≥ 1).
    pub fn new(registry: Arc<MetricsRegistry>, stall_ticks: u64) -> Self {
        let ticks = registry.counter("health.watchdog.ticks");
        let stalled_total = registry.gauge("health.workers.stalled");
        Watchdog {
            registry,
            stall_ticks: stall_ticks.max(1),
            ticks,
            stalled_total,
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Registers worker `name` and returns its handle.  The worker's
    /// gauges join the registry as `health.<name>.{heartbeat,active,stalled}`.
    /// Workers start parked.
    pub fn register(&self, name: &str) -> WorkerHandle {
        let heartbeat = self.registry.counter(&format!("health.{name}.heartbeat"));
        let active = self.registry.gauge(&format!("health.{name}.active"));
        let stalled = self.registry.gauge(&format!("health.{name}.stalled"));
        let handle = WorkerHandle {
            heartbeat: heartbeat.clone(),
            active: active.clone(),
        };
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        workers.push(WatchedWorker {
            name: name.to_string(),
            heartbeat,
            active,
            stalled,
            last_beat: 0,
            unchanged_ticks: 0,
        });
        handle
    }

    /// Advances the watchdog one tick and returns the names of the workers
    /// currently considered stalled.
    pub fn tick(&self) -> Vec<String> {
        self.ticks.inc();
        let mut stalled_names = Vec::new();
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for w in workers.iter_mut() {
            let beat = w.heartbeat.get();
            let active = w.active.get() > 0;
            if !active || beat != w.last_beat {
                w.last_beat = beat;
                w.unchanged_ticks = 0;
                w.stalled.set(0);
                continue;
            }
            w.unchanged_ticks += 1;
            if w.unchanged_ticks >= self.stall_ticks {
                w.stalled.set(1);
                stalled_names.push(w.name.clone());
            }
        }
        self.stalled_total.set(stalled_names.len() as i64);
        stalled_names
    }
}

/// Renders the activity between consecutive registry snapshots as text.
///
/// Each `tick()` takes a fresh snapshot, diffs it against the previous
/// one, and returns one line per metric that moved: counters as `+N`,
/// gauges as their current value (only when changed), histograms as the
/// interval's sample count and mean latency.  An empty string means a
/// quiet interval.
#[derive(Debug)]
pub struct MetricsJournal {
    registry: Arc<MetricsRegistry>,
    last: Mutex<Snapshot>,
}

impl MetricsJournal {
    /// A journal whose first tick reports activity since this call.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        let last = registry.snapshot();
        MetricsJournal {
            registry,
            last: Mutex::new(last),
        }
    }

    /// Diffs the registry against the previous tick and returns the
    /// journal lines (without a trailing newline).
    pub fn tick(&self) -> String {
        let current = self.registry.snapshot();
        let mut last = self.last.lock().unwrap_or_else(|e| e.into_inner());
        let lines = render_delta(&current, &last);
        *last = current;
        lines
    }
}

/// The journal formatting of `current - previous`, exposed for tests and
/// for one-shot interval reports.
pub fn render_delta(current: &Snapshot, previous: &Snapshot) -> String {
    use std::fmt::Write as _;
    let delta = current.delta(previous);
    let mut out = String::new();
    for (name, value) in &delta.metrics {
        match value {
            MetricValue::Counter(v) => {
                if *v > 0 {
                    let _ = writeln!(out, "journal {name} +{v}");
                }
            }
            MetricValue::Gauge(v) => {
                let moved = match previous.metrics.get(name) {
                    Some(MetricValue::Gauge(prev)) => prev != v,
                    _ => true,
                };
                if moved {
                    let _ = writeln!(out, "journal {name} ={v}");
                }
            }
            MetricValue::Histogram(h) => {
                if let Some(mean) = h.sum.checked_div(h.count) {
                    let _ = writeln!(
                        out,
                        "journal {name} +{} samples, mean {}",
                        h.count,
                        format_ns(mean)
                    );
                }
            }
        }
    }
    out.truncate(out.trim_end().len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parked_workers_never_stall() {
        let reg = Arc::new(MetricsRegistry::new());
        let dog = Watchdog::new(reg.clone(), 2);
        let w = dog.register("ingest");
        for _ in 0..10 {
            assert!(dog.tick().is_empty());
        }
        assert_eq!(reg.gauge("health.ingest.stalled").get(), 0);
        drop(w);
    }

    #[test]
    fn active_silent_worker_stalls_and_recovers() {
        let reg = Arc::new(MetricsRegistry::new());
        let dog = Watchdog::new(reg.clone(), 2);
        let w = dog.register("compact");
        w.set_active(true);
        w.beat();
        assert!(dog.tick().is_empty()); // beat observed, baseline set
        assert!(dog.tick().is_empty()); // 1 silent tick < stall_ticks
        assert_eq!(dog.tick(), vec!["compact".to_string()]); // 2 silent ticks
        assert_eq!(reg.gauge("health.compact.stalled").get(), 1);
        assert_eq!(reg.gauge("health.workers.stalled").get(), 1);
        w.beat(); // progress clears the flag
        assert!(dog.tick().is_empty());
        assert_eq!(reg.gauge("health.compact.stalled").get(), 0);
        assert_eq!(reg.gauge("health.workers.stalled").get(), 0);
        assert_eq!(reg.counter("health.watchdog.ticks").get(), 4);
    }

    #[test]
    fn going_inactive_clears_a_stall() {
        let reg = Arc::new(MetricsRegistry::new());
        let dog = Watchdog::new(reg.clone(), 1);
        let w = dog.register("merge");
        w.set_active(true);
        dog.tick();
        assert_eq!(dog.tick(), vec!["merge".to_string()]);
        w.set_active(false);
        assert!(dog.tick().is_empty());
        assert_eq!(reg.gauge("health.merge.stalled").get(), 0);
    }

    #[test]
    fn journal_reports_only_movement() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("query.count").add(5);
        reg.gauge("index.docs").set(3);
        let journal = MetricsJournal::new(reg.clone());
        assert_eq!(journal.tick(), "");
        reg.counter("query.count").add(2);
        reg.histogram("query.lat").record(1_000);
        reg.histogram("query.lat").record(3_000);
        let lines = journal.tick();
        assert!(lines.contains("journal query.count +2"), "{lines}");
        assert!(lines.contains("journal query.lat +2 samples"), "{lines}");
        assert!(!lines.contains("index.docs"), "unchanged gauge: {lines}");
        // quiet interval again
        assert_eq!(journal.tick(), "");
    }

    #[test]
    fn journal_reports_gauge_moves() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.gauge("index.delta.sequences").set(1);
        let journal = MetricsJournal::new(reg.clone());
        reg.gauge("index.delta.sequences").set(7);
        let lines = journal.tick();
        assert_eq!(lines, "journal index.delta.sequences =7");
    }
}
