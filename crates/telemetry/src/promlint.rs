//! A dep-free linter for the Prometheus text exposition format.
//!
//! CI runs this (via `cargo xtask promlint`) over the output of
//! [`crate::export::to_prometheus`] scraped from the observability
//! example, so a rendering bug fails the build instead of a scrape.
//!
//! Checks, per the exposition-format spec:
//!
//! * every sample's base metric name is declared by a preceding
//!   `# TYPE` line (histogram `_bucket`/`_sum`/`_count` suffixes resolve
//!   to their base name);
//! * no metric name carries two `# TYPE` declarations;
//! * no duplicate series (same name and label set twice);
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! * sample values parse as numbers;
//! * histogram bucket series are well-formed: `le` values strictly
//!   increasing, cumulative counts non-decreasing, a final `le="+Inf"`
//!   bucket present and equal to the histogram's `_count`.

use std::collections::{BTreeMap, BTreeSet};

/// One problem found in an exposition-format document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromFinding {
    /// 1-based line number (0 for document-level findings).
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for PromFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

#[derive(Debug, Default)]
struct HistogramSeries {
    /// `(le, cumulative count, line)` in document order.
    buckets: Vec<(f64, f64, usize)>,
    count: Option<(f64, usize)>,
    sum_seen: bool,
}

/// Lints `text` as a Prometheus text-format document.
///
/// Returns the findings in document order; an empty vector means the
/// document is clean.
pub fn lint_prometheus(text: &str) -> Vec<PromFinding> {
    let mut findings = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut histograms: BTreeMap<String, HistogramSeries> = BTreeMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = match (parts.next(), parts.next()) {
                (Some(n), Some(k)) => (n.to_string(), k.to_string()),
                _ => {
                    findings.push(PromFinding {
                        line: lineno,
                        message: format!("malformed TYPE line: `{line}`"),
                    });
                    continue;
                }
            };
            if !matches!(
                kind.as_str(),
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                findings.push(PromFinding {
                    line: lineno,
                    message: format!("unknown metric type `{kind}` for `{name}`"),
                });
            }
            if types.insert(name.clone(), kind).is_some() {
                findings.push(PromFinding {
                    line: lineno,
                    message: format!("duplicate TYPE declaration for `{name}`"),
                });
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }

        // A sample line: `name{labels} value [timestamp]`.
        let (series, value_str) = match split_sample(line) {
            Some(parts) => parts,
            None => {
                findings.push(PromFinding {
                    line: lineno,
                    message: format!("malformed sample line: `{line}`"),
                });
                continue;
            }
        };
        let name = series
            .split('{')
            .next()
            .unwrap_or(series)
            .trim()
            .to_string();
        if !valid_metric_name(&name) {
            findings.push(PromFinding {
                line: lineno,
                message: format!("invalid metric name `{name}`"),
            });
        }
        let value: f64 = match parse_value(value_str) {
            Some(v) => v,
            None => {
                findings.push(PromFinding {
                    line: lineno,
                    message: format!("unparseable sample value `{value_str}` for `{name}`"),
                });
                continue;
            }
        };
        if !seen_series.insert(series.to_string()) {
            findings.push(PromFinding {
                line: lineno,
                message: format!("duplicate series `{series}`"),
            });
        }

        // Resolve histogram-suffixed samples to their base declaration.
        let base = histogram_base(&name, &types);
        match types.get(base.unwrap_or(name.as_str())) {
            Some(kind) => {
                if let Some(base) = base {
                    if kind != "histogram" && kind != "summary" {
                        // suffix matched but base is not a histogram: the
                        // sample itself must then be declared
                        if !types.contains_key(&name) {
                            findings.push(PromFinding {
                                line: lineno,
                                message: format!("sample `{name}` has no TYPE declaration"),
                            });
                        }
                    } else {
                        record_histogram_sample(
                            &mut histograms,
                            base,
                            &name,
                            series,
                            value,
                            lineno,
                            &mut findings,
                        );
                    }
                }
            }
            None => {
                findings.push(PromFinding {
                    line: lineno,
                    message: format!("sample `{name}` has no TYPE declaration"),
                });
            }
        }
    }

    for (base, h) in &histograms {
        check_histogram(base, h, &mut findings);
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Splits a sample line into `(series, value)` where `series` includes the
/// label set. Labels may contain spaces inside quoted values, so split at
/// the first whitespace *after* any `{...}` block.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let split_at = match line.find('{') {
        Some(open) => {
            let close = find_label_close(line, open)?;
            close + 1
        }
        None => line.find(char::is_whitespace)?,
    };
    let (series, rest) = line.split_at(split_at);
    let mut parts = rest.split_whitespace();
    let value = parts.next()?;
    // an optional timestamp may follow; anything further is malformed
    if parts.clone().count() > 1 {
        return None;
    }
    if let Some(ts) = parts.next() {
        ts.parse::<i64>().ok()?;
    }
    Some((series, value))
}

/// Index of the `}` closing the label block opened at `open`, skipping
/// quoted label values (which may contain `}` or escaped quotes).
fn find_label_close(line: &str, open: usize) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(open + 1) {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// If `name` ends with a histogram sample suffix and the stripped base has
/// a TYPE declaration, returns the base name.
fn histogram_base<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.contains_key(base) {
                return Some(base);
            }
        }
    }
    None
}

fn record_histogram_sample(
    histograms: &mut BTreeMap<String, HistogramSeries>,
    base: &str,
    name: &str,
    series: &str,
    value: f64,
    lineno: usize,
    findings: &mut Vec<PromFinding>,
) {
    let h = histograms.entry(base.to_string()).or_default();
    if name.ends_with("_bucket") {
        match le_of(series) {
            Some(le) => h.buckets.push((le, value, lineno)),
            None => findings.push(PromFinding {
                line: lineno,
                message: format!("bucket series `{series}` has no `le` label"),
            }),
        }
    } else if name.ends_with("_count") {
        h.count = Some((value, lineno));
    } else if name.ends_with("_sum") {
        h.sum_seen = true;
    }
}

/// Extracts the `le` label value of a `_bucket` series.
fn le_of(series: &str) -> Option<f64> {
    let open = series.find('{')?;
    let close = find_label_close(series, open)?;
    for label in series[open + 1..close].split(',') {
        let (key, value) = label.split_once('=')?;
        if key.trim() == "le" {
            return parse_value(value.trim().trim_matches('"'));
        }
    }
    None
}

fn check_histogram(base: &str, h: &HistogramSeries, findings: &mut Vec<PromFinding>) {
    let last_line = h.buckets.last().map_or(0, |&(_, _, l)| l);
    if h.buckets.is_empty() {
        findings.push(PromFinding {
            line: 0,
            message: format!("histogram `{base}` has no bucket series"),
        });
        return;
    }
    for pair in h.buckets.windows(2) {
        let ((le_a, count_a, _), (le_b, count_b, line)) = (pair[0], pair[1]);
        if le_b <= le_a {
            findings.push(PromFinding {
                line,
                message: format!(
                    "histogram `{base}` bucket bounds not increasing ({le_a} then {le_b})"
                ),
            });
        }
        if count_b < count_a {
            findings.push(PromFinding {
                line,
                message: format!(
                    "histogram `{base}` cumulative counts decrease ({count_a} then {count_b})"
                ),
            });
        }
    }
    let (last_le, last_count, _) = *h.buckets.last().unwrap_or(&(0.0, 0.0, 0));
    if !last_le.is_infinite() {
        findings.push(PromFinding {
            line: last_line,
            message: format!("histogram `{base}` is missing the `le=\"+Inf\"` bucket"),
        });
    }
    match h.count {
        Some((count, line)) if count != last_count => findings.push(PromFinding {
            line,
            message: format!("histogram `{base}` _count {count} != +Inf bucket {last_count}"),
        }),
        Some(_) => {}
        None => findings.push(PromFinding {
            line: last_line,
            message: format!("histogram `{base}` is missing its `_count` sample"),
        }),
    }
    if !h.sum_seen {
        findings.push(PromFinding {
            line: last_line,
            message: format!("histogram `{base}` is missing its `_sum` sample"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn messages(text: &str) -> Vec<String> {
        lint_prometheus(text)
            .into_iter()
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn clean_document_passes() {
        let text = "\
# TYPE xseq_query_count counter
xseq_query_count 42
# TYPE xseq_pool_resident gauge
xseq_pool_resident 16
# TYPE xseq_query_lat histogram
xseq_query_lat_bucket{le=\"1\"} 1
xseq_query_lat_bucket{le=\"2\"} 3
xseq_query_lat_bucket{le=\"+Inf\"} 4
xseq_query_lat_sum 9
xseq_query_lat_count 4
";
        assert_eq!(messages(text), Vec::<String>::new());
    }

    #[test]
    fn missing_type_is_flagged() {
        let out = messages("orphan_metric 1\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("no TYPE declaration"), "{out:?}");
    }

    #[test]
    fn duplicate_series_and_type_are_flagged() {
        let text = "\
# TYPE a counter
# TYPE a counter
a 1
a 2
";
        let out = messages(text);
        assert!(out.iter().any(|m| m.contains("duplicate TYPE")), "{out:?}");
        assert!(
            out.iter().any(|m| m.contains("duplicate series")),
            "{out:?}"
        );
    }

    #[test]
    fn non_monotone_buckets_are_flagged() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 5
";
        let out = messages(text);
        assert!(
            out.iter().any(|m| m.contains("cumulative counts decrease")),
            "{out:?}"
        );
    }

    #[test]
    fn missing_inf_bucket_and_count_mismatch_are_flagged() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_sum 9
h_count 6
";
        let out = messages(text);
        assert!(out.iter().any(|m| m.contains("+Inf")), "{out:?}");
        let text2 = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 6
";
        let out2 = messages(text2);
        assert!(out2.iter().any(|m| m.contains("_count 6")), "{out2:?}");
    }

    #[test]
    fn invalid_names_and_values_are_flagged() {
        let out = messages("# TYPE ok counter\nok notanumber\n");
        assert!(out.iter().any(|m| m.contains("unparseable")), "{out:?}");
        let out2 = messages("# TYPE 9bad counter\n9bad 1\n");
        assert!(
            out2.iter().any(|m| m.contains("invalid metric name")),
            "{out2:?}"
        );
    }
}
