//! Snapshot exporters: a JSON document and a human-readable text table.
//!
//! Both are hand-rolled (the crate has no dependencies). The JSON form is
//! what `repro --metrics <path>` writes; the table is what
//! `QueryOutcome::explain` and the observability example print.

use crate::metrics::HistogramSnapshot;
use crate::registry::{MetricValue, Snapshot};
use crate::trace::{AttrValue, Trace};
use std::fmt::Write as _;

/// Serializes `snapshot` as a JSON object keyed by metric name.
///
/// Counters become `{"type":"counter","value":N}`, gauges
/// `{"type":"gauge","value":N}`, histograms
/// `{"type":"histogram","count":N,"sum":N,"min":N,"max":N,"mean":F,
/// "p50":N,"p90":N,"p99":N,"buckets":[[lo,hi,count],...]}` with only the
/// non-empty buckets listed. Empty histograms serialize min/max/quantiles
/// as `null`.
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (name, value) in &snapshot.metrics {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(out, "  {}: ", json_string(name));
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{v}}}");
            }
            MetricValue::Histogram(h) => histogram_json(&mut out, h),
        }
    }
    out.push_str("\n}\n");
    out
}

fn histogram_json(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{}",
        h.count, h.sum
    );
    if h.count == 0 {
        out.push_str(
            ",\"min\":null,\"max\":null,\"mean\":null,\
             \"p50\":null,\"p90\":null,\"p99\":null,\"buckets\":[]}",
        );
        return;
    }
    let _ = write!(out, ",\"min\":{},\"max\":{}", h.min, h.max);
    let _ = write!(out, ",\"mean\":{}", json_f64(h.mean().unwrap_or(0.0)));
    for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        let _ = write!(out, ",\"{label}\":{}", h.quantile(q).unwrap_or(0));
    }
    out.push_str(",\"buckets\":[");
    let mut first = true;
    for (b, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let (lo, hi) = crate::metrics::bucket_bounds(b);
        let _ = write!(out, "[{lo},{hi},{c}]");
    }
    out.push_str("]}");
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep it JSON-float-ish
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Renders `snapshot` as an aligned text table, one metric per row.
///
/// Histograms show `count`, `mean`, `p50/p90/p99`, and `max`; counters and
/// gauges show their value. Durations are assumed to be nanoseconds and
/// printed scaled (ns/µs/ms/s) when the metric name ends in a phase-like
/// suffix; raw counts print unscaled.
pub fn render_table(snapshot: &Snapshot) -> String {
    let mut rows: Vec<[String; 6]> = vec![[
        "metric".into(),
        "count".into(),
        "mean".into(),
        "p50".into(),
        "p99".into(),
        "max/value".into(),
    ]];
    for (name, value) in &snapshot.metrics {
        match value {
            MetricValue::Counter(v) => rows.push([
                name.clone(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                v.to_string(),
            ]),
            MetricValue::Gauge(v) => rows.push([
                name.clone(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                v.to_string(),
            ]),
            MetricValue::Histogram(h) => {
                let fmt = |v: Option<u64>| v.map(format_ns).unwrap_or_else(|| "-".into());
                rows.push([
                    name.clone(),
                    h.count.to_string(),
                    h.mean()
                        .map(|m| format_ns(m as u64))
                        .unwrap_or_else(|| "-".into()),
                    fmt(h.p50()),
                    fmt(h.p99()),
                    if h.count == 0 {
                        "-".into()
                    } else {
                        format_ns(h.max)
                    },
                ]);
            }
        }
    }
    let mut widths = [0usize; 6];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                out.push_str("  ");
            }
            if j == 0 {
                let _ = write!(out, "{:<w$}", cell, w = widths[j]);
            } else {
                let _ = write!(out, "{:>w$}", cell, w = widths[j]);
            }
        }
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Renders `snapshot` in the Prometheus text exposition format.
///
/// Dots in registry names become underscores (`index.search.candidates` →
/// `index_search_candidates`); any other character outside
/// `[a-zA-Z0-9_]` is replaced by `_` as well.  Counters and gauges emit a
/// `# TYPE` line and one sample.  Histograms emit cumulative
/// `_bucket{le="…"}` series over the non-empty power-of-two buckets (the
/// `le` bound is each bucket's inclusive upper value), a final
/// `le="+Inf"` bucket, and `_sum`/`_count` samples — the shape
/// [`crate::promlint::lint_prometheus`] validates in CI.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        let pname = prometheus_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {pname} counter\n{pname} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {pname} gauge\n{pname} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {pname} histogram");
                let mut cumulative = 0u64;
                for (b, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    cumulative += c;
                    let (_, hi) = crate::metrics::bucket_bounds(b);
                    let _ = writeln!(out, "{pname}_bucket{{le=\"{hi}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{pname}_sum {}", h.sum);
                let _ = writeln!(out, "{pname}_count {}", h.count);
            }
        }
    }
    out
}

/// Maps a dotted registry name onto the Prometheus name charset.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let starts_ok = matches!(out.chars().next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
    if !starts_ok {
        out.insert(0, '_');
    }
    out
}

/// Serializes a [`Trace`] in the Chrome trace-event JSON format.
///
/// The output is an object with a `traceEvents` array of `"X"` (complete)
/// events — one per span, `ts`/`dur` in microseconds with nanosecond
/// fractions — plus trace-level metadata.  It loads directly in
/// `chrome://tracing` and <https://ui.perfetto.dev>.  Span attributes
/// become the event's `args`; parent links are implied by the nesting of
/// the `ts`/`dur` intervals on the single synthetic thread, the way both
/// viewers reconstruct flame charts.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, span) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"xseq\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{",
            json_string(span.name),
            micros(span.start_ns),
            micros(span.duration_ns()),
        );
        let mut first = true;
        if span.parent.is_none() {
            // root span: carry the trace identity where Perfetto shows it
            let _ = write!(
                out,
                "\"trace_id\":{},\"query\":{}",
                trace.id.0,
                json_string(&trace.name)
            );
            first = false;
        }
        for (key, value) in &span.attrs {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{}", json_string(key), attr_json(value));
        }
        out.push_str("}}");
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ns\",\
         \"otherData\":{{\"trace_id\":{},\"query\":{},\"total_ns\":{},\
         \"sampled\":{},\"slow\":{}}}}}",
        trace.id.0,
        json_string(&trace.name),
        trace.total_ns,
        trace.sampled,
        trace.slow,
    );
    out
}

/// Chrome's `ts`/`dur` are microseconds; keep nanosecond precision as a
/// three-digit fraction.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

pub(crate) fn attr_json(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::F64(v) => json_f64(*v),
        AttrValue::Str(s) => json_string(s),
    }
}

/// Renders a [`Trace`] as an indented text span tree:
///
/// ```text
/// trace #17 "//a/b" — 1.20ms (slow)
///   query 1.20ms
///     query.parse 10.00us
///     index.search 1.10ms [candidates=12]
/// ```
pub fn render_trace(trace: &Trace) -> String {
    let mut out = format!(
        "trace #{} {} — {}{}{}\n",
        trace.id.0,
        json_string(&trace.name),
        format_ns(trace.total_ns),
        if trace.slow { " (slow)" } else { "" },
        if trace.sampled { " (sampled)" } else { "" },
    );
    for (i, span) in trace.spans.iter().enumerate() {
        let depth = trace.depth(crate::trace::SpanId(i as u32));
        let _ = write!(
            out,
            "{}{} {}",
            "  ".repeat(depth + 1),
            span.name,
            format_ns(span.duration_ns())
        );
        if !span.attrs.is_empty() {
            out.push_str(" [");
            for (j, (key, value)) in span.attrs.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{key}={}", attr_text(value));
            }
            out.push(']');
        }
        out.push('\n');
    }
    out
}

fn attr_text(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::F64(v) => format!("{v:.4}"),
        AttrValue::Str(s) => s.clone(),
    }
}

/// Formats a nanosecond quantity with a human-friendly unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_snapshot() -> Snapshot {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(3);
        reg.gauge("b.gauge").set(-4);
        let h = reg.histogram("c.lat");
        h.record(500);
        h.record(1500);
        reg.histogram("d.empty");
        reg.snapshot()
    }

    #[test]
    fn json_shape() {
        let json = to_json(&sample_snapshot());
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"a.count\": {\"type\":\"counter\",\"value\":3}"));
        assert!(json.contains("\"b.gauge\": {\"type\":\"gauge\",\"value\":-4}"));
        assert!(json.contains("\"type\":\"histogram\",\"count\":2,\"sum\":2000"));
        assert!(json.contains("\"min\":500,\"max\":1500"));
        assert!(json.contains("\"mean\":1000.0"));
        // the empty histogram serializes quantiles as null
        assert!(json.contains("\"count\":0,\"sum\":0,\"min\":null"));
        // balanced braces/brackets (cheap well-formedness check)
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn table_contains_all_metrics() {
        let table = render_table(&sample_snapshot());
        for name in ["a.count", "b.gauge", "c.lat", "d.empty"] {
            assert!(table.contains(name), "{name} missing from:\n{table}");
        }
        assert!(table.contains("metric"));
    }

    #[test]
    fn prometheus_shape() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE a_count counter\na_count 3\n"));
        assert!(text.contains("# TYPE b_gauge gauge\nb_gauge -4\n"));
        assert!(text.contains("# TYPE c_lat histogram"));
        // 500 lands in bucket [256,511], 1500 in [1024,2047]; cumulative
        assert!(text.contains("c_lat_bucket{le=\"511\"} 1\n"), "{text}");
        assert!(text.contains("c_lat_bucket{le=\"2047\"} 2\n"), "{text}");
        assert!(text.contains("c_lat_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("c_lat_sum 2000\n"));
        assert!(text.contains("c_lat_count 2\n"));
        // the empty histogram still has a complete series
        assert!(text.contains("d_empty_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("d_empty_count 0\n"));
    }

    #[test]
    fn prometheus_output_passes_the_linter() {
        let text = to_prometheus(&sample_snapshot());
        let findings = crate::promlint::lint_prometheus(&text);
        assert!(findings.is_empty(), "{findings:?}\n{text}");
    }

    #[test]
    fn prometheus_name_sanitization() {
        assert_eq!(
            prometheus_name("index.search.candidates"),
            "index_search_candidates"
        );
        assert_eq!(prometheus_name("a-b/c"), "a_b_c");
        assert_eq!(prometheus_name("9lives"), "_9lives");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.50us");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(3_000_000_000), "3.00s");
    }
}
