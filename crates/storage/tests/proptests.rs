//! Property tests: the paged trie is observationally identical to the
//! in-memory trie for arbitrary corpora and queries, under any pool size.

use proptest::prelude::*;
use xseq_index::{
    constraint_search, naive_search, tree_search, QuerySequence, SequenceTrie, TrieView,
};
use xseq_sequence::{sequence_document, Sequence, Strategy as SeqStrategy};
use xseq_storage::{write_paged_trie, MemStore, PagedTrie};
use xseq_xml::{Document, PathTable, SymbolTable, ValueMode};

#[derive(Debug, Clone)]
struct CorpusRecipe {
    docs: Vec<(Vec<u32>, Vec<u8>)>,
}

fn corpus_recipe() -> impl Strategy<Value = CorpusRecipe> {
    proptest::collection::vec(
        (1usize..14).prop_flat_map(|n| {
            (
                proptest::collection::vec(any::<u32>(), n),
                proptest::collection::vec(any::<u8>(), n + 1),
            )
        }),
        1..10,
    )
    .prop_map(|docs| CorpusRecipe { docs })
}

fn build(recipe: &CorpusRecipe) -> (PathTable, SequenceTrie, Vec<Document>) {
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let syms: Vec<_> = (0..4).map(|i| st.elem(&format!("e{i}"))).collect();
    let mut paths = PathTable::new();
    let mut trie = SequenceTrie::new();
    let mut docs = Vec::new();
    for (id, (parents, labels)) in recipe.docs.iter().enumerate() {
        let mut doc = Document::with_root(syms[0]);
        for i in 1..=parents.len() {
            let parent = parents[i - 1] % i as u32;
            doc.child(parent, syms[(labels[i] as usize) % syms.len()]);
        }
        let seq = sequence_document(&doc, &mut paths, &SeqStrategy::DepthFirst);
        trie.insert(&seq, id as u32);
        docs.push(doc);
    }
    trie.freeze();
    (paths, trie, docs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn paged_trie_view_is_identical(recipe in corpus_recipe()) {
        let (_, trie, _) = build(&recipe);
        let mut store = MemStore::new();
        write_paged_trie(&trie, &mut store).unwrap();
        let paged = PagedTrie::open(store, 4).unwrap();
        prop_assert_eq!(paged.node_count(), trie.node_count());
        for n in 0..=trie.node_count() as u32 {
            prop_assert_eq!(TrieView::label(&paged, n), trie.label(n));
            prop_assert_eq!(TrieView::path(&paged, n), trie.path(n));
            prop_assert_eq!(TrieView::parent(&paged, n), trie.parent(n));
            prop_assert_eq!(
                TrieView::embeds_identical(&paged, n),
                trie.frozen().embeds_identical[n as usize]
            );
        }
    }

    #[test]
    fn paged_answers_match_memory(recipe in corpus_recipe(), pool in 1usize..16, qdoc in 0usize..8, qlen in 1usize..6) {
        let (mut paths, trie, docs) = build(&recipe);
        let mut store = MemStore::new();
        write_paged_trie(&trie, &mut store).unwrap();
        let paged = PagedTrie::open(store, pool).unwrap();

        // query: prefix of a document's own sequence (always matches it)
        let src = &docs[qdoc % docs.len()];
        let seq = sequence_document(src, &mut paths, &SeqStrategy::DepthFirst);
        let q = Sequence(seq.elems()[..qlen.min(seq.len())].to_vec());
        let qs = QuerySequence::from_sequence(&q, &paths);

        let (m1, _) = tree_search(&trie, &qs);
        let (d1, _) = tree_search(&paged, &qs);
        prop_assert_eq!(&m1, &d1);
        prop_assert!(m1.contains(&((qdoc % docs.len()) as u32)));

        let (m2, _) = constraint_search(&trie, &qs);
        let (d2, _) = constraint_search(&paged, &qs);
        prop_assert_eq!(m2, d2);

        let (m3, _) = naive_search(&trie, &qs);
        let (d3, _) = naive_search(&paged, &qs);
        prop_assert_eq!(m3, d3);
    }
}
