//! On-page layout of a frozen trie, and a [`TrieView`] over it.
//!
//! Sections (all records fixed-width little-endian, densely packed, never
//! straddling a page boundary):
//!
//! ```text
//! page 0            header: magic, counts, section start pages
//! nodes_start…      node records    (path, parent, serial, max, flags) 20 B
//! dir_start…        link directory  (path, entry_start, entry_len)     12 B, sorted by path
//! entries_start…    link entries    (serial, max, node)                12 B
//! ends_start…       end-node records (serial, node, doc_off, doc_len)  16 B, sorted by serial
//! docs_start…       document ids    (u32)
//! ```
//!
//! The link *directory* (the path dictionary) is loaded into memory at open
//! time — it plays the role of a catalog and is small; node records, link
//! entries, end nodes and document lists are fetched through the buffer
//! pool, so the pool's miss counter measures exactly the page-touch pattern
//! of the matching algorithms ("# disk accesses", Table 7; "I/O cost",
//! Figure 16).
//!
//! I/O errors in this layer are treated as fatal (panic): the store is a
//! local page file this library itself wrote, and threading `Result`
//! through the infallible [`TrieView`] API would tax every probe of the hot
//! search loop for a can't-happen case.

use crate::page::{get_u32, get_u64, locate, new_page, put_u32, put_u64, PageId, PAGE_SIZE};
use crate::pool::BufferPool;
use crate::store::PageStore;
use std::collections::HashMap;
use std::io;
use std::sync::Mutex;
use xseq_index::{LinkEntry, SequenceTrie, TrieNodeId, TrieView};
use xseq_xml::{DocId, PathId};

const MAGIC: u64 = 0x3130_4750_5145_5358; // "XSEQPG01" LE

const NODE_REC: usize = 20;
const NODES_PER_PAGE: usize = PAGE_SIZE / NODE_REC;
const DIR_REC: usize = 12;
const DIR_PER_PAGE: usize = PAGE_SIZE / DIR_REC;
const ENTRY_REC: usize = 12;
const ENTRIES_PER_PAGE: usize = PAGE_SIZE / ENTRY_REC;
const END_REC: usize = 16;
const ENDS_PER_PAGE: usize = PAGE_SIZE / END_REC;
const DOCS_PER_PAGE: usize = PAGE_SIZE / 4;

/// Serializes a frozen [`SequenceTrie`] into `store`.
///
/// Takes exactly one trie — callers serializing an `XmlIndex` pass its
/// **frozen segment** (`index.trie()`), so the in-memory delta overlay and
/// tombstones (DESIGN.md §11) are deliberately excluded from the paged
/// layout: the overlay is transient by design, and compaction folds it into
/// the frozen trie before anything durable is written.
///
/// Returns the number of pages written.
pub fn write_paged_trie<S: PageStore>(trie: &SequenceTrie, store: &mut S) -> io::Result<PageId> {
    let frozen = trie.frozen();
    let node_count = trie.node_count() + 1; // + virtual root

    // ---- gather sections ----
    // directory sorted by path id for binary search / deterministic layout
    let mut dir: Vec<(PathId, u32, u32)> = Vec::with_capacity(frozen.links.len());
    let mut entries: Vec<LinkEntry> = Vec::new();
    {
        let mut paths: Vec<PathId> = frozen.links.keys().copied().collect();
        paths.sort();
        for p in paths {
            let link = &frozen.links[&p];
            dir.push((p, entries.len() as u32, link.len() as u32));
            entries.extend_from_slice(link);
        }
    }
    let mut ends: Vec<(u32, TrieNodeId, u32, u32)> = Vec::with_capacity(frozen.end_nodes.len());
    let mut docs: Vec<DocId> = Vec::new();
    for &(serial, node) in &frozen.end_nodes {
        let list = trie.docs_at(node);
        ends.push((serial, node, docs.len() as u32, list.len() as u32));
        docs.extend_from_slice(list);
    }

    // ---- layout ----
    let nodes_pages = node_count.div_ceil(NODES_PER_PAGE) as PageId;
    let dir_pages = dir.len().div_ceil(DIR_PER_PAGE).max(1) as PageId;
    let entry_pages = entries.len().div_ceil(ENTRIES_PER_PAGE).max(1) as PageId;
    let end_pages = ends.len().div_ceil(ENDS_PER_PAGE).max(1) as PageId;
    let doc_pages = docs.len().div_ceil(DOCS_PER_PAGE).max(1) as PageId;
    let nodes_start: PageId = 1;
    let dir_start = nodes_start + nodes_pages;
    let entries_start = dir_start + dir_pages;
    let ends_start = entries_start + entry_pages;
    let docs_start = ends_start + end_pages;
    let total = docs_start + doc_pages;

    // ---- header ----
    let mut page = new_page();
    put_u64(&mut page, 0, MAGIC);
    put_u32(&mut page, 8, node_count as u32);
    put_u32(&mut page, 12, dir.len() as u32);
    put_u32(&mut page, 16, entries.len() as u32);
    put_u32(&mut page, 20, ends.len() as u32);
    put_u32(&mut page, 24, docs.len() as u32);
    put_u32(&mut page, 28, nodes_start);
    put_u32(&mut page, 32, dir_start);
    put_u32(&mut page, 36, entries_start);
    put_u32(&mut page, 40, ends_start);
    put_u32(&mut page, 44, docs_start);
    store.write_page(0, &page)?;

    // ---- node records ----
    let mut writer = SectionWriter::new(store, nodes_start);
    for n in 0..node_count as TrieNodeId {
        let (serial, max) = trie.label(n);
        let flags = u32::from(frozen.embeds_identical[n as usize]);
        writer.record(NODE_REC, NODES_PER_PAGE, |page, off| {
            put_u32(page, off, trie.path(n).0);
            put_u32(page, off + 4, trie.parent(n));
            put_u32(page, off + 8, serial);
            put_u32(page, off + 12, max);
            put_u32(page, off + 16, flags);
        })?;
    }
    writer.flush()?;

    let mut writer = SectionWriter::new(store, dir_start);
    for &(p, start, len) in &dir {
        writer.record(DIR_REC, DIR_PER_PAGE, |page, off| {
            put_u32(page, off, p.0);
            put_u32(page, off + 4, start);
            put_u32(page, off + 8, len);
        })?;
    }
    writer.flush()?;

    let mut writer = SectionWriter::new(store, entries_start);
    for e in &entries {
        writer.record(ENTRY_REC, ENTRIES_PER_PAGE, |page, off| {
            put_u32(page, off, e.serial);
            put_u32(page, off + 4, e.max_desc);
            put_u32(page, off + 8, e.node);
        })?;
    }
    writer.flush()?;

    let mut writer = SectionWriter::new(store, ends_start);
    for &(serial, node, doc_off, doc_len) in &ends {
        writer.record(END_REC, ENDS_PER_PAGE, |page, off| {
            put_u32(page, off, serial);
            put_u32(page, off + 4, node);
            put_u32(page, off + 8, doc_off);
            put_u32(page, off + 12, doc_len);
        })?;
    }
    writer.flush()?;

    let mut writer = SectionWriter::new(store, docs_start);
    for &d in &docs {
        writer.record(4, DOCS_PER_PAGE, |page, off| {
            put_u32(page, off, d);
        })?;
    }
    writer.flush()?;

    Ok(total)
}

/// Buffered sequential writer for one section.
struct SectionWriter<'a, S: PageStore> {
    store: &'a mut S,
    page: crate::page::Page,
    page_id: PageId,
    in_page: usize,
    dirty: bool,
}

impl<'a, S: PageStore> SectionWriter<'a, S> {
    fn new(store: &'a mut S, start: PageId) -> Self {
        SectionWriter {
            store,
            page: new_page(),
            page_id: start,
            in_page: 0,
            dirty: true, // always materialize at least one page per section
        }
    }

    fn record(
        &mut self,
        rec: usize,
        per_page: usize,
        fill: impl FnOnce(&mut [u8; PAGE_SIZE], usize),
    ) -> io::Result<()> {
        if self.in_page == per_page {
            self.store.write_page(self.page_id, &self.page)?;
            self.page = new_page();
            self.page_id += 1;
            self.in_page = 0;
        }
        fill(&mut self.page, self.in_page * rec);
        self.in_page += 1;
        self.dirty = true;
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dirty {
            self.store.write_page(self.page_id, &self.page)?;
            self.dirty = false;
        }
        Ok(())
    }
}

/// A disk-resident trie: [`TrieView`] over a page file through a buffer
/// pool.
///
/// The pool sits behind a [`Mutex`], so a `PagedTrie` over a `Send` store
/// is `Sync`: concurrent readers share one page cache (and its counters),
/// serializing only the page fetch itself.
#[derive(Debug)]
pub struct PagedTrie<S: PageStore> {
    pool: Mutex<BufferPool<S>>,
    node_count: u32,
    end_count: u32,
    nodes_start: PageId,
    entries_start: PageId,
    ends_start: PageId,
    docs_start: PageId,
    /// In-memory link directory (the catalog): path → (entry start, len).
    dir: HashMap<PathId, (u32, u32)>,
}

impl<S: PageStore> PagedTrie<S> {
    /// Opens a paged trie, loading the header and link directory.
    pub fn open(store: S, pool_capacity: usize) -> io::Result<Self> {
        let mut pool = BufferPool::new(store, pool_capacity);
        let (magic, node_count, dir_count, end_count, starts) = pool.with_page(0, |p| {
            (
                get_u64(p, 0),
                get_u32(p, 8),
                get_u32(p, 12),
                get_u32(p, 20),
                [
                    get_u32(p, 28),
                    get_u32(p, 32),
                    get_u32(p, 36),
                    get_u32(p, 40),
                    get_u32(p, 44),
                ],
            )
        })?;
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut dir = HashMap::with_capacity(dir_count as usize);
        for i in 0..dir_count as usize {
            let (pg, off) = locate(starts[1], i, DIR_REC, DIR_PER_PAGE);
            let (p, s, l) = pool.with_page(pg, |page| {
                (
                    get_u32(page, off),
                    get_u32(page, off + 4),
                    get_u32(page, off + 8),
                )
            })?;
            dir.insert(PathId(p), (s, l));
        }
        // catalog loading is setup cost, not query cost
        pool.clear();
        Ok(PagedTrie {
            pool: Mutex::new(pool),
            node_count,
            end_count,
            nodes_start: starts[0],
            entries_start: starts[2],
            ends_start: starts[3],
            docs_start: starts[4],
            dir,
        })
    }

    /// Buffer-pool counters (misses = disk accesses).
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.lock().expect("pool mutex poisoned").stats()
    }

    /// Mirrors this trie's page traffic into `storage.pool.*` counters.
    pub fn attach_pool_telemetry(&self, telemetry: crate::pool::PoolTelemetry) {
        self.pool
            .lock()
            .expect("pool mutex poisoned")
            .attach_telemetry(telemetry);
    }

    /// Cold-starts the pool and zeroes the counters.
    pub fn reset_pool(&self) {
        self.pool.lock().expect("pool mutex poisoned").clear();
    }

    /// Number of trie nodes (excluding the virtual root).
    pub fn node_count(&self) -> usize {
        self.node_count as usize - 1
    }

    // PANIC-FREE: the pool mutex poisons only if a holder panicked (the
    // process is already unwinding); with_page fails only on store I/O
    // errors, which the storage layer treats as fatal by design
    fn node_field(&self, n: TrieNodeId, field: usize) -> u32 {
        let (pg, off) = locate(self.nodes_start, n as usize, NODE_REC, NODES_PER_PAGE);
        self.pool
            .lock()
            .expect("pool mutex poisoned")
            .with_page(pg, |p| get_u32(p, off + field))
            .expect("paged trie I/O")
    }

    // PANIC-FREE: same pool-poison / fatal-I/O argument as node_field
    fn end_record(&self, i: usize) -> (u32, TrieNodeId, u32, u32) {
        let (pg, off) = locate(self.ends_start, i, END_REC, ENDS_PER_PAGE);
        self.pool
            .lock()
            .expect("pool mutex poisoned")
            .with_page(pg, |p| {
                (
                    get_u32(p, off),
                    get_u32(p, off + 4),
                    get_u32(p, off + 8),
                    get_u32(p, off + 12),
                )
            })
            .expect("paged trie I/O")
    }
}

impl<S: PageStore> TrieView for PagedTrie<S> {
    fn root(&self) -> TrieNodeId {
        0
    }

    // PANIC-FREE: same pool-poison / fatal-I/O argument as node_field
    fn label(&self, n: TrieNodeId) -> (u32, u32) {
        let (pg, off) = locate(self.nodes_start, n as usize, NODE_REC, NODES_PER_PAGE);
        self.pool
            .lock()
            .expect("pool mutex poisoned")
            .with_page(pg, |p| (get_u32(p, off + 8), get_u32(p, off + 12)))
            .expect("paged trie I/O")
    }

    fn path(&self, n: TrieNodeId) -> PathId {
        PathId(self.node_field(n, 0))
    }

    fn parent(&self, n: TrieNodeId) -> TrieNodeId {
        self.node_field(n, 4)
    }

    fn embeds_identical(&self, n: TrieNodeId) -> bool {
        self.node_field(n, 16) != 0
    }

    fn link_len(&self, path: PathId) -> usize {
        self.dir.get(&path).map(|&(_, l)| l as usize).unwrap_or(0)
    }

    // PANIC-FREE: callers iterate idx < link_len(path), which also
    // guarantees `dir` contains the path; I/O failure is fatal by design
    fn link_entry(&self, path: PathId, idx: usize) -> LinkEntry {
        let (start, len) = self.dir[&path];
        assert!(idx < len as usize, "link index out of range");
        let (pg, off) = locate(
            self.entries_start,
            start as usize + idx,
            ENTRY_REC,
            ENTRIES_PER_PAGE,
        );
        self.pool
            .lock()
            .expect("pool mutex poisoned")
            .with_page(pg, |p| LinkEntry {
                serial: get_u32(p, off),
                max_desc: get_u32(p, off + 4),
                node: get_u32(p, off + 8),
            })
            .expect("paged trie I/O")
    }

    // PANIC-FREE: same pool-poison / fatal-I/O argument as node_field
    fn collect_docs_in_range(&self, lo: u32, hi: u32, out: &mut Vec<DocId>) {
        // binary search the first end record with serial >= lo
        let n = self.end_count as usize;
        let mut a = 0usize;
        let mut b = n;
        while a < b {
            let mid = (a + b) / 2;
            if self.end_record(mid).0 < lo {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        let mut i = a;
        while i < n {
            let (serial, _, doc_off, doc_len) = self.end_record(i);
            if serial > hi {
                break;
            }
            for k in 0..doc_len as usize {
                let (pg, off) = locate(self.docs_start, doc_off as usize + k, 4, DOCS_PER_PAGE);
                let d = self
                    .pool
                    .lock()
                    .expect("pool mutex poisoned")
                    .with_page(pg, |p| get_u32(p, off))
                    .expect("paged trie I/O");
                out.push(d);
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FileStore, MemStore};
    use xseq_index::{constraint_search, tree_search, QuerySequence};
    use xseq_sequence::Sequence;
    use xseq_xml::{PathTable, Symbol, SymbolTable, ValueMode};

    struct Fx {
        st: SymbolTable,
        pt: PathTable,
        trie: SequenceTrie,
    }

    impl Fx {
        fn new() -> Self {
            Fx {
                st: SymbolTable::with_value_mode(ValueMode::Intern),
                pt: PathTable::new(),
                trie: SequenceTrie::new(),
            }
        }
        fn seq(&mut self, specs: &[&str]) -> Sequence {
            Sequence(
                specs
                    .iter()
                    .map(|s| {
                        let syms: Vec<Symbol> = s.split('.').map(|x| self.st.elem(x)).collect();
                        self.pt.intern(&syms)
                    })
                    .collect(),
            )
        }
        fn load(&mut self) {
            let data = vec![
                (vec!["P", "P.A", "P.A.X"], 0),
                (vec!["P", "P.A", "P.A.Y"], 1),
                (vec!["P", "P.B"], 2),
                (vec!["P", "P.L", "P.L.S", "P.L", "P.L.B"], 3),
                (vec!["P", "P.L", "P.L.S", "P.L.B"], 4),
            ];
            for (specs, id) in data {
                let s = self.seq(&specs);
                self.trie.insert(&s, id);
            }
            self.trie.freeze();
        }
    }

    fn paged(fx: &Fx, capacity: usize) -> PagedTrie<MemStore> {
        let mut store = MemStore::new();
        write_paged_trie(&fx.trie, &mut store).unwrap();
        PagedTrie::open(store, capacity).unwrap()
    }

    #[test]
    fn paged_serialization_excludes_the_delta_overlay() {
        use xseq_index::{PlanOptions, XmlIndex};
        use xseq_xml::parse_document;
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = vec![
            parse_document("<a><b/></a>", &mut st).expect("valid xml"),
            parse_document("<a><c/></a>", &mut st).expect("valid xml"),
        ];
        let mut pt = PathTable::new();
        let mut index = XmlIndex::build(
            &docs,
            &mut pt,
            xseq_sequence::Strategy::DepthFirst,
            PlanOptions::default(),
        );
        let frozen_nodes = index.trie().node_count();
        let delta_doc = parse_document("<a><z/></a>", &mut st).expect("valid xml");
        index.insert_delta(&delta_doc, 2, &mut pt);
        index.remove_doc(0);
        assert!(index.delta().node_count() > 0);
        // Serializing the index's frozen segment writes the frozen trie
        // only: the delta overlay and tombstones never reach the pages.
        let mut store = MemStore::new();
        write_paged_trie(index.trie(), &mut store).expect("serialize");
        let paged = PagedTrie::open(store, 16).expect("open");
        assert_eq!(paged.node_count(), frozen_nodes);
        assert!(
            paged.node_count() < frozen_nodes + index.delta().node_count(),
            "delta nodes must not be serialized"
        );
        let mut docs_on_disk = Vec::new();
        let (lo, hi) = {
            let root = TrieView::root(&paged);
            let (l, h) = TrieView::label(&paged, root);
            (l, h)
        };
        paged.collect_docs_in_range(lo, hi, &mut docs_on_disk);
        docs_on_disk.sort_unstable();
        docs_on_disk.dedup();
        assert_eq!(
            docs_on_disk,
            vec![0, 1],
            "pages hold the frozen docs verbatim: no delta doc, no tombstone filtering"
        );
    }

    #[test]
    fn paged_view_mirrors_memory_view() {
        let mut fx = Fx::new();
        fx.load();
        let pv = paged(&fx, 64);
        assert_eq!(pv.node_count(), fx.trie.node_count());
        for n in 0..=fx.trie.node_count() as TrieNodeId {
            assert_eq!(TrieView::label(&pv, n), fx.trie.label(n));
            assert_eq!(TrieView::path(&pv, n), fx.trie.path(n));
            assert_eq!(TrieView::parent(&pv, n), fx.trie.parent(n));
            assert_eq!(
                TrieView::embeds_identical(&pv, n),
                fx.trie.frozen().embeds_identical[n as usize]
            );
        }
        // links agree
        for (path, link) in &fx.trie.frozen().links {
            assert_eq!(pv.link_len(*path), link.len());
            for (i, e) in link.iter().enumerate() {
                assert_eq!(pv.link_entry(*path, i), *e);
            }
        }
    }

    #[test]
    fn same_answers_from_disk_and_memory() {
        let mut fx = Fx::new();
        fx.load();
        let pv = paged(&fx, 8);
        for qspec in [
            vec!["P"],
            vec!["P", "P.A"],
            vec!["P", "P.L", "P.L.S", "P.L.B"],
            vec!["P", "P.L", "P.L.S", "P.L", "P.L.B"],
            vec!["P", "P.Z"],
        ] {
            let s = fx.seq(&qspec);
            let q = QuerySequence::from_sequence(&s, &fx.pt);
            let (mem, _) = tree_search(&fx.trie, &q);
            let (disk, _) = tree_search(&pv, &q);
            assert_eq!(mem, disk, "{qspec:?}");
            let (mem_o, _) = constraint_search(&fx.trie, &q);
            let (disk_o, _) = constraint_search(&pv, &q);
            assert_eq!(mem_o, disk_o, "{qspec:?} ordered");
        }
    }

    #[test]
    fn disk_access_counting() {
        let mut fx = Fx::new();
        fx.load();
        let pv = paged(&fx, 64);
        pv.reset_pool();
        let s = fx.seq(&["P", "P.A", "P.A.X"]);
        let q = QuerySequence::from_sequence(&s, &fx.pt);
        let (docs, _) = tree_search(&pv, &q);
        assert_eq!(docs, vec![0]);
        let stats = pv.pool_stats();
        assert!(stats.misses > 0, "a cold query must touch disk");
        // warm repeat: all hits
        pv.reset_pool();
        let _ = tree_search(&pv, &q);
        let cold = pv.pool_stats().misses;
        let _ = tree_search(&pv, &q);
        let warm = pv.pool_stats();
        assert_eq!(warm.misses, cold, "second run fully cached");
    }

    #[test]
    fn file_backed_roundtrip() {
        let mut fx = Fx::new();
        fx.load();
        let dir = std::env::temp_dir().join(format!("xseq-paged-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.pages");
        {
            let mut store = FileStore::create(&path).unwrap();
            write_paged_trie(&fx.trie, &mut store).unwrap();
        }
        let store = FileStore::open(&path).unwrap();
        let pv = PagedTrie::open(store, 16).unwrap();
        let s = fx.seq(&["P", "P.L", "P.L.S", "P.L.B"]);
        let q = QuerySequence::from_sequence(&s, &fx.pt);
        let (docs, _) = tree_search(&pv, &q);
        assert_eq!(docs, vec![4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let mut store = MemStore::new();
        store.write_page(0, &new_page()).unwrap();
        assert!(PagedTrie::open(store, 4).is_err());
    }

    #[test]
    fn shared_paged_trie_serves_concurrent_readers() {
        let mut fx = Fx::new();
        fx.load();
        let pv = paged(&fx, 8);
        let queries: Vec<(Sequence, Vec<DocId>)> = [
            (vec!["P", "P.A"], vec![0, 1]),
            (vec!["P", "P.B"], vec![2]),
            (vec!["P", "P.L", "P.L.S", "P.L.B"], vec![4]),
            (vec!["P", "P.Z"], vec![]),
        ]
        .into_iter()
        .map(|(specs, want)| (fx.seq(&specs), want))
        .collect();
        let pt = &fx.pt;
        let pv = &pv;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (seq, want) in &queries {
                        let q = QuerySequence::from_sequence(seq, pt);
                        let (docs, _) = tree_search(pv, &q);
                        assert_eq!(&docs, want);
                    }
                });
            }
        });
        let st = pv.pool_stats();
        assert!(st.hits + st.misses > 0, "readers went through the pool");
    }

    #[test]
    fn tiny_pool_still_correct() {
        let mut fx = Fx::new();
        fx.load();
        let pv = paged(&fx, 1);
        let s = fx.seq(&["P", "P.L", "P.L.S", "P.L", "P.L.B"]);
        let q = QuerySequence::from_sequence(&s, &fx.pt);
        let (docs, _) = tree_search(&pv, &q);
        assert_eq!(docs, vec![3]);
        assert!(pv.pool_stats().evictions > 0);
    }
}
