//! # xseq-storage — paged storage for the constraint-sequence index
//!
//! The paper evaluates a *disk-based* index ("the size of the final
//! disk-based index comes to `4n + cN` bytes"; Table 7 reports "# disk
//! accesses"; Figure 16(c)/(d) report "I/O cost" in pages).  This crate
//! provides the substrate that makes those numbers measurable on any
//! machine:
//!
//! * [`page`] — 4 KiB pages and fixed-width little-endian codecs (the page
//!   layout *is* part of the system under study, so it is explicit, not
//!   derived from a serialization library);
//! * [`store`] — page files, in memory or on disk;
//! * [`pool`] — an LRU buffer pool with hit/miss/eviction counters: the
//!   miss count of a cold query is the paper's "# disk accesses";
//! * [`paged`] — the on-page layout of a frozen trie (node records, path
//!   link directory + entries, end-node registry, document id lists) and
//!   [`paged::PagedTrie`], which implements `xseq_index::TrieView` so the
//!   *same* matching code runs over memory and disk.
#![forbid(unsafe_code)]

pub mod page;
pub mod paged;
pub mod pool;
pub mod store;

pub use page::{Page, PageId, PAGE_SIZE};
pub use paged::{write_paged_trie, PagedTrie};
pub use pool::{BufferPool, PoolStats, PoolTelemetry};
pub use store::{FileStore, MemStore, PageStore};
