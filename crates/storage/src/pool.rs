//! An LRU buffer pool with access accounting.
//!
//! The pool is the measurement instrument for the paper's I/O numbers: a
//! *miss* is a disk access; Figure 16(c)/(d)'s "I/O cost (# of pages)" is
//! the miss count of a query run against a cold pool.

use crate::page::{new_page, Page, PageId, PAGE_SIZE};
use crate::store::PageStore;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use xseq_telemetry::{Counter, MetricsRegistry};

/// Pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read the store — "disk accesses".
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl PoolStats {
    /// Fraction of page requests served from the pool, `None` before any
    /// request has been made.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Arc'd handles to the `storage.pool.*` metrics of a registry.
///
/// Unlike [`PoolStats`] (which [`BufferPool::reset_stats`] zeroes between
/// queries), these counters are cumulative for the registry's lifetime.
#[derive(Debug, Clone)]
pub struct PoolTelemetry {
    /// `storage.pool.hits`.
    pub hits: Arc<Counter>,
    /// `storage.pool.misses` — disk accesses.
    pub misses: Arc<Counter>,
    /// `storage.pool.evictions`.
    pub evictions: Arc<Counter>,
}

impl PoolTelemetry {
    /// Gets-or-registers the pool metrics in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        PoolTelemetry {
            hits: registry.counter("storage.pool.hits"),
            misses: registry.counter("storage.pool.misses"),
            evictions: registry.counter("storage.pool.evictions"),
        }
    }
}

/// A fixed-capacity LRU cache of pages over a [`PageStore`].
///
/// Read-only from the caller's perspective (the index is immutable once
/// written), so eviction never writes back.
#[derive(Debug)]
pub struct BufferPool<S: PageStore> {
    store: S,
    capacity: usize,
    frames: HashMap<PageId, (Page, u64)>,
    clock: u64,
    stats: PoolStats,
    telemetry: Option<PoolTelemetry>,
}

impl<S: PageStore> BufferPool<S> {
    /// Wraps a store with an LRU cache of `capacity` pages (minimum 1).
    pub fn new(store: S, capacity: usize) -> Self {
        BufferPool {
            store,
            capacity: capacity.max(1),
            frames: HashMap::new(),
            clock: 0,
            stats: PoolStats::default(),
            telemetry: None,
        }
    }

    /// Mirrors every hit/miss/eviction into the given registry counters
    /// (on top of the resettable [`PoolStats`]).
    ///
    /// Accesses made before attaching are seeded into the counters, so a
    /// pool attached after first use still reports hits+misses consistent
    /// with its own [`PoolStats`].
    pub fn attach_telemetry(&mut self, telemetry: PoolTelemetry) {
        telemetry.hits.add(self.stats.hits);
        telemetry.misses.add(self.stats.misses);
        telemetry.evictions.add(self.stats.evictions);
        self.telemetry = Some(telemetry);
    }

    /// Fetches a page, reading through on a miss, and hands it to `f`.
    pub fn with_page<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> io::Result<R> {
        self.clock += 1;
        let clock = self.clock;
        if let Some((page, used)) = self.frames.get_mut(&id) {
            *used = clock;
            self.stats.hits += 1;
            if let Some(t) = &self.telemetry {
                t.hits.inc();
            }
            return Ok(f(page));
        }
        self.stats.misses += 1;
        if let Some(t) = &self.telemetry {
            t.misses.inc();
        }
        let mut page = new_page();
        self.store.read_page(id, &mut page)?;
        if self.frames.len() >= self.capacity {
            // evict the least recently used frame
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(&k, _)| k)
                .expect("non-empty");
            self.frames.remove(&victim);
            self.stats.evictions += 1;
            if let Some(t) = &self.telemetry {
                t.evictions.inc();
            }
        }
        let r = f(&page);
        self.frames.insert(id, (page, clock));
        Ok(r)
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Zeroes the counters (e.g. between queries).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Drops every cached frame (cold start) and zeroes the counters.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.reset_stats();
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// The wrapped store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the wrapped store (loading phase).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }
}

/// Heap attribution for the pool: the frame table (one boxed page per
/// resident frame) plus the wrapped store's own heap.
impl<S: PageStore + xseq_telemetry::HeapSize> xseq_telemetry::HeapSize for BufferPool<S> {
    fn heap_bytes(&self) -> usize {
        xseq_telemetry::hash_table_alloc_bytes(
            self.frames.capacity(),
            std::mem::size_of::<(PageId, (Page, u64))>(),
        ) + self.frames.len() * PAGE_SIZE
            + self.store.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{get_u32, put_u32};
    use crate::store::MemStore;

    fn store_with(n: u32) -> MemStore {
        let mut s = MemStore::new();
        for i in 0..n {
            let mut p = new_page();
            put_u32(&mut p, 0, i * 10);
            s.write_page(i, &p).unwrap();
        }
        s
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut pool = BufferPool::new(store_with(4), 2);
        assert_eq!(pool.with_page(0, |p| get_u32(p, 0)).unwrap(), 0);
        assert_eq!(pool.with_page(0, |p| get_u32(p, 0)).unwrap(), 0);
        assert_eq!(pool.with_page(1, |p| get_u32(p, 0)).unwrap(), 10);
        let st = pool.stats();
        assert_eq!(st.misses, 2);
        assert_eq!(st.hits, 1);
        assert_eq!(st.evictions, 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut pool = BufferPool::new(store_with(4), 2);
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(1, |_| ()).unwrap();
        pool.with_page(0, |_| ()).unwrap(); // 0 freshened, 1 is LRU
        pool.with_page(2, |_| ()).unwrap(); // evicts 1
        assert_eq!(pool.stats().evictions, 1);
        pool.reset_stats();
        pool.with_page(0, |_| ()).unwrap(); // still resident
        assert_eq!(pool.stats().hits, 1);
        pool.with_page(1, |_| ()).unwrap(); // was evicted
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut pool = BufferPool::new(store_with(4), 2);
        for i in 0..4 {
            pool.with_page(i, |_| ()).unwrap();
        }
        assert!(pool.resident() <= 2);
    }

    #[test]
    fn clear_gives_cold_start() {
        let mut pool = BufferPool::new(store_with(2), 4);
        pool.with_page(0, |_| ()).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
        pool.with_page(0, |_| ()).unwrap();
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn missing_page_is_an_error() {
        let mut pool = BufferPool::new(store_with(1), 2);
        assert!(pool.with_page(9, |_| ()).is_err());
    }

    #[test]
    fn late_attach_seeds_existing_stats() {
        use xseq_telemetry::MetricsRegistry;
        let mut pool = BufferPool::new(store_with(4), 2);
        // pre-attach traffic: 3 misses, 1 hit, 1 eviction
        for i in 0..3 {
            pool.with_page(i, |_| ()).unwrap();
        }
        pool.with_page(2, |_| ()).unwrap();
        let reg = MetricsRegistry::new();
        pool.attach_telemetry(PoolTelemetry::register(&reg));
        let st = pool.stats();
        assert_eq!(reg.snapshot().counter("storage.pool.hits"), st.hits);
        assert_eq!(reg.snapshot().counter("storage.pool.misses"), st.misses);
        assert_eq!(
            reg.snapshot().counter("storage.pool.evictions"),
            st.evictions
        );
        // post-attach traffic stays consistent
        pool.with_page(2, |_| ()).unwrap(); // hit
        pool.with_page(0, |_| ()).unwrap(); // miss + eviction
        let st = pool.stats();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("storage.pool.hits"), st.hits);
        assert_eq!(snap.counter("storage.pool.misses"), st.misses);
        assert_eq!(snap.counter("storage.pool.evictions"), st.evictions);
        assert_eq!(
            st.hit_ratio(),
            Some(st.hits as f64 / (st.hits + st.misses) as f64)
        );
    }
}
