//! Fixed-size pages and field codecs.

/// Page size in bytes (a common database default).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a page store.
pub type PageId = u32;

/// One page worth of bytes.
pub type Page = Box<[u8; PAGE_SIZE]>;

/// Allocates a zeroed page.
pub fn new_page() -> Page {
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("exact size")
}

/// Reads a little-endian `u32` at byte offset `off`.
#[inline]
pub fn get_u32(page: &[u8; PAGE_SIZE], off: usize) -> u32 {
    u32::from_le_bytes(page[off..off + 4].try_into().expect("in bounds"))
}

/// Writes a little-endian `u32` at byte offset `off`.
#[inline]
pub fn put_u32(page: &mut [u8; PAGE_SIZE], off: usize, v: u32) {
    page[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u64` at byte offset `off`.
#[inline]
pub fn get_u64(page: &[u8; PAGE_SIZE], off: usize) -> u64 {
    u64::from_le_bytes(page[off..off + 8].try_into().expect("in bounds"))
}

/// Writes a little-endian `u64` at byte offset `off`.
#[inline]
pub fn put_u64(page: &mut [u8; PAGE_SIZE], off: usize, v: u64) {
    page[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Addressing helper: which page and offset hold record `idx` of a section
/// starting at page `base`, with `rec` bytes per record and `per` records
/// per page.
// PANIC-FREE: every caller passes one of the *_PER_PAGE constants,
// all of which are nonzero by construction
#[inline]
pub fn locate(base: PageId, idx: usize, rec: usize, per: usize) -> (PageId, usize) {
    (base + (idx / per) as PageId, (idx % per) * rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let mut p = new_page();
        put_u32(&mut p, 100, 0xdead_beef);
        assert_eq!(get_u32(&p, 100), 0xdead_beef);
        // neighbours untouched
        assert_eq!(get_u32(&p, 96), 0);
        assert_eq!(get_u32(&p, 104), 0);
    }

    #[test]
    fn u64_roundtrip() {
        let mut p = new_page();
        put_u64(&mut p, 8, u64::MAX - 5);
        assert_eq!(get_u64(&p, 8), u64::MAX - 5);
    }

    #[test]
    fn locate_math() {
        // 20-byte records, 204 per page, base page 3
        assert_eq!(locate(3, 0, 20, 204), (3, 0));
        assert_eq!(locate(3, 203, 20, 204), (3, 203 * 20));
        assert_eq!(locate(3, 204, 20, 204), (4, 0));
        assert_eq!(locate(3, 205, 20, 204), (4, 20));
    }
}
