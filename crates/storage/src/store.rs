//! Page stores: where pages live when they are not in the buffer pool.

use crate::page::{new_page, Page, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A flat array of pages.
pub trait PageStore {
    /// Reads page `id` into `buf`.
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> io::Result<()>;
    /// Writes page `id` from `buf`, extending the store if necessary.
    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> io::Result<()>;
    /// Number of pages.
    fn page_count(&self) -> PageId;
}

/// In-memory page store.
#[derive(Debug, Default)]
pub struct MemStore {
    pages: Vec<Page>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl PageStore for MemStore {
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        let p = self
            .pages
            .get(id as usize)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "page out of range"))?;
        buf.copy_from_slice(&p[..]);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> io::Result<()> {
        while self.pages.len() <= id as usize {
            self.pages.push(new_page());
        }
        self.pages[id as usize].copy_from_slice(buf);
        Ok(())
    }

    fn page_count(&self) -> PageId {
        self.pages.len() as PageId
    }
}

/// Heap attribution for the in-memory store: the page pointer vector plus
/// one boxed page per entry.
impl xseq_telemetry::HeapSize for MemStore {
    fn heap_bytes(&self) -> usize {
        self.pages.capacity() * std::mem::size_of::<Page>() + self.pages.len() * PAGE_SIZE
    }
}

/// File-backed page store (a plain page file).
#[derive(Debug)]
pub struct FileStore {
    file: File,
    pages: PageId,
}

impl FileStore {
    /// Creates (truncating) a page file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore { file, pages: 0 })
    }

    /// Opens an existing page file.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file length is not a multiple of the page size",
            ));
        }
        Ok(FileStore {
            file,
            pages: (len / PAGE_SIZE as u64) as PageId,
        })
    }
}

impl PageStore for FileStore {
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        if id >= self.pages {
            return Err(io::Error::new(io::ErrorKind::NotFound, "page out of range"));
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(&mut buf[..])
    }

    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> io::Result<()> {
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(&buf[..])?;
        self.pages = self.pages.max(id + 1);
        Ok(())
    }

    fn page_count(&self) -> PageId {
        self.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{get_u32, put_u32};

    fn roundtrip(store: &mut dyn PageStore) {
        let mut p = new_page();
        put_u32(&mut p, 0, 11);
        store.write_page(0, &p).unwrap();
        put_u32(&mut p, 0, 22);
        store.write_page(3, &p).unwrap();
        assert_eq!(store.page_count(), 4);

        let mut buf = new_page();
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(get_u32(&buf, 0), 11);
        store.read_page(3, &mut buf).unwrap();
        assert_eq!(get_u32(&buf, 0), 22);
        // the gap pages exist and are zeroed (mem) / readable (file)
        store.read_page(1, &mut buf).unwrap();
        assert_eq!(get_u32(&buf, 0), 0);
        assert!(store.read_page(99, &mut buf).is_err());
    }

    #[test]
    fn mem_store_roundtrip() {
        roundtrip(&mut MemStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("xseq-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pages");
        {
            let mut fs = FileStore::create(&path).unwrap();
            // file gaps: must write the gap pages explicitly for read_exact
            let z = new_page();
            fs.write_page(0, &z).unwrap();
            fs.write_page(1, &z).unwrap();
            fs.write_page(2, &z).unwrap();
            fs.write_page(3, &z).unwrap();
            roundtrip(&mut fs);
        }
        // reopen and read back
        let mut fs = FileStore::open(&path).unwrap();
        assert_eq!(fs.page_count(), 4);
        let mut buf = new_page();
        fs.read_page(3, &mut buf).unwrap();
        assert_eq!(get_u32(&buf, 0), 22);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_ragged_file() {
        let dir = std::env::temp_dir().join(format!("xseq-store-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.pages");
        std::fs::write(&path, b"not a page").unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
