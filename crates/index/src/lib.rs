//! # xseq-index — the constraint-sequence XML index
//!
//! The paper's index (Section 4): a trie over constraint sequences with
//! preorder range labels and horizontal path links ([`trie`]), searched by
//! constraint subsequence matching ([`search`], Algorithm 1), fed by a query
//! planner that instantiates wildcards against the path dictionary
//! ([`plan`]).
//!
//! [`XmlIndex`] packages the pieces behind the interface the paper
//! advertises in its introduction:
//!
//! ```text
//! Tree Pattern ⇒ P(Doc Ids)
//! ```
//!
//! — the tree pattern is the basic query unit; no join operations, no
//! per-document post-processing, no false alarms.
//!
//! [`verify`] is the `xseq-check` invariant verifier: it exhaustively
//! validates a built index (label nesting, link order/coverage,
//! sibling-cover bookkeeping, stored-sequence `f2`/round-trip) and reports
//! violations with trie-node/serial coordinates.

#![forbid(unsafe_code)]

pub mod delta;
pub mod plan;
pub mod search;
pub mod stats;
pub mod telemetry;
pub mod trie;
pub mod verify;

pub use delta::{
    check_updates, check_updates_tiered, DeltaRun, DeltaView, MergeOutcome, TieredDelta,
    Tombstones, UpdateOp, DEFAULT_MEMTABLE_LIMIT, DEFAULT_TIER_RATIO,
};
pub use plan::{instantiate, PlanOptions};
pub use search::{
    constraint_search, constraint_search_with, filter_tombstones, naive_search, naive_search_with,
    tree_search, tree_search_with, QuerySequence, SearchScratch, SearchStats,
};
pub use stats::{index_stats, IndexStats, SegmentStats};
pub use telemetry::IndexTelemetry;
pub use trie::{LinkEntry, SequenceTrie, TrieNodeId, TrieView, NIL};
pub use verify::{verify_trie, verify_trie_structure, IntegrityReport, InvariantClass, Violation};

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use xseq_sequence::{isomorphic_variants, sequence_document, Sequence, Strategy};
use xseq_telemetry::{ActiveTrace, SpanId, Trace};
use xseq_xml::{DocId, Document, PathId, PathTable, TreePattern};

/// Aggregated statistics of one pattern query.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Concrete instantiations produced by the planner.
    pub instantiations: u64,
    /// Total sequence variants searched (instantiations × isomorphisms).
    pub variants: u64,
    /// Summed matcher counters.
    pub search: SearchStats,
    /// Wall time of wildcard instantiation (`index.plan`), nanoseconds.
    pub plan_ns: u64,
    /// Wall time of query-sequence encoding (`sequence.encode`), ns.
    pub encode_ns: u64,
    /// Wall time of constraint matching (`index.search`), ns.
    pub search_ns: u64,
    /// Buffer-pool hits during this query (filled in by callers that route
    /// the index through paged storage; 0 for the in-memory trie).
    pub pool_hits: u64,
    /// Buffer-pool misses (disk accesses) during this query.
    pub pool_misses: u64,
}

/// Result of a pattern query.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// Matching document ids, sorted, deduplicated.
    pub docs: Vec<DocId>,
    /// Work counters.
    pub stats: QueryStats,
    /// The sealed trace of this query, when it ran under a tracer.
    pub trace: Option<Arc<Trace>>,
    /// Post-query integrity spot check, when one fired (off by default;
    /// enabled via `DatabaseBuilder::integrity_spot_check`).
    pub integrity: Option<IntegrityReport>,
    /// The schema node classes `C` this query touched: the distinct
    /// [`PathId`]s across every searched variant's query sequence, sorted.
    /// This is the classification the workload profiler accumulates
    /// (Eq. 6's `w(C)` is keyed by exactly these ids).
    pub classes: Vec<PathId>,
    /// Candidates examined per searched variant, in variant order (frozen
    /// and delta descents of one variant sum into one entry).
    pub descents: Vec<u64>,
}

impl QueryOutcome {
    fn absorb(&mut self, docs: &[DocId], st: SearchStats) {
        self.stats.variants += 1;
        self.descents.push(0);
        self.absorb_segment(docs, st);
    }

    /// Folds one more *segment's* search of the current variant into the
    /// outcome: stats sum, docs union — but `variants` does not bump, so a
    /// two-segment (frozen + delta) index still reports one variant per
    /// searched query sequence.
    fn absorb_segment(&mut self, docs: &[DocId], st: SearchStats) {
        if let Some(last) = self.descents.last_mut() {
            *last += st.candidates;
        }
        self.stats.search.candidates += st.candidates;
        self.stats.search.cover_rejections += st.cover_rejections;
        self.stats.search.completions += st.completions;
        self.stats.search.link_probes += st.link_probes;
        self.stats.search.scratch_reuses += st.scratch_reuses;
        self.docs.extend_from_slice(docs);
    }

    /// Renders this query's work breakdown — phase latencies and matcher
    /// counters — as a small text report (an EXPLAIN of what the index did).
    pub fn explain(&self) -> String {
        let st = &self.stats;
        let total = st.plan_ns + st.encode_ns + st.search_ns;
        let pct = |ns: u64| {
            if total == 0 {
                0.0
            } else {
                ns as f64 * 100.0 / total as f64
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "query: {} matching document(s)", self.docs.len());
        for (phase, ns) in [
            ("index.plan", st.plan_ns),
            ("sequence.encode", st.encode_ns),
            ("index.search", st.search_ns),
        ] {
            let _ = writeln!(
                out,
                "  {phase:<16} {:>10}  ({:>5.1}%)",
                xseq_telemetry::format_ns(ns),
                pct(ns)
            );
        }
        let _ = writeln!(
            out,
            "  instantiations {} | variants {} | candidates {} | cover rejections {} | completions {} | link probes {}",
            st.instantiations,
            st.variants,
            st.search.candidates,
            st.search.cover_rejections,
            st.search.completions,
            st.search.link_probes
        );
        let fmt_list = |vals: &mut dyn Iterator<Item = u64>| {
            const SHOWN: usize = 16;
            let mut shown: Vec<String> = Vec::with_capacity(SHOWN + 1);
            let mut truncated = false;
            for (i, v) in vals.enumerate() {
                if i == SHOWN {
                    truncated = true;
                    break;
                }
                shown.push(v.to_string());
            }
            if truncated {
                shown.push("…".into());
            }
            format!("[{}]", shown.join(" "))
        };
        let _ = writeln!(
            out,
            "  stats: results {} | classes {} | descents/variant {}",
            self.docs.len(),
            fmt_list(&mut self.classes.iter().map(|c| u64::from(c.0))),
            fmt_list(&mut self.descents.iter().copied()),
        );
        let pool_total = st.pool_hits + st.pool_misses;
        if pool_total > 0 {
            let _ = writeln!(
                out,
                "  storage.pool.hit_ratio {:.3} ({} hits, {} misses)",
                st.pool_hits as f64 / pool_total as f64,
                st.pool_hits,
                st.pool_misses
            );
        }
        if let Some(report) = &self.integrity {
            out.push_str(&report.render());
        }
        if let Some(trace) = &self.trace {
            out.push_str(&trace.render());
        }
        out
    }
}

#[inline]
fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Upper bound on per-variant span groups in one trace; beyond it the
/// remaining variants run untraced (counted in the `untraced_variants` root
/// attribute) so a pathological wildcard query cannot balloon its own trace.
const TRACE_VARIANT_CAP: usize = 32;

/// Attaches one descent's work to its span: candidate/result counts on the
/// span itself, and the paper's inner-loop quantities (sibling-cover checks,
/// path-link binary searches, completions) as zero-length marker events —
/// the hot loops themselves stay uninstrumented.
fn record_descent(tr: &mut ActiveTrace, span: SpanId, st: &SearchStats, docs: usize) {
    tr.attr(span, "candidates", st.candidates);
    tr.attr(span, "docs", docs as u64);
    let e = tr.event("search.sibling_cover_checks");
    tr.attr(e, "rejections", st.cover_rejections);
    let e = tr.event("search.link_probes");
    tr.attr(e, "count", st.link_probes);
    let e = tr.event("search.completions");
    tr.attr(e, "count", st.completions);
    tr.end_span(span);
}

/// Which matching algorithm a query runs.
#[derive(Debug, Clone, Copy)]
enum Mode {
    TreeSearch,
    Ordered,
    Naive,
}

/// Reusable per-query state.
///
/// Queries need scratch buffers (the matcher's alignment stack and result
/// accumulator); a context owns them so a caller running many queries on one
/// thread — a batch worker, a benchmark loop — pays for the allocations once
/// and reuses warm buffers afterwards.  Reuse is observable as
/// [`SearchStats::scratch_reuses`].  Contexts are cheap to create and not
/// shared between threads: one per worker.
#[derive(Debug, Default)]
pub struct QueryContext {
    scratch: SearchScratch,
}

impl QueryContext {
    /// A fresh context with cold buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The sequence-based XML index.
///
/// Since the update subsystem (DESIGN.md §11, tiered in §16) an index is
/// the bulk-built frozen trie plus a tiered [`TieredDelta`] overlay fed by
/// [`XmlIndex::insert_delta`] — a raw-sequence memtable, frozen runs and
/// merged tiers — with removed documents tracked in its copy-on-write
/// [`Tombstones`] set.  Every query snapshots the overlay once
/// ([`TieredDelta::delta_view`]) and runs over *frozen ∪ segments −
/// tombstones*; compaction (at the `Database` layer) folds the overlay
/// back into a single frozen segment.
#[derive(Debug)]
pub struct XmlIndex {
    trie: SequenceTrie,
    strategy: Strategy,
    /// Distinct path encodings of indexed data — the path dictionary used
    /// for wildcard instantiation.  Covers every segment.
    data_paths: HashSet<PathId>,
    options: PlanOptions,
    telemetry: Option<IndexTelemetry>,
    /// The tiered update overlay (post-build insertions + tombstones),
    /// shared by `Arc` with the background merge worker.
    delta: Arc<TieredDelta>,
}

impl XmlIndex {
    /// Builds an index over `docs` with the given sequencing strategy.
    ///
    /// Sequences every document, bulk-loads the trie (sorted insertion) and
    /// freezes it (labels + path links), so the index is immediately
    /// queryable.
    pub fn build(
        docs: &[Document],
        paths: &mut PathTable,
        strategy: Strategy,
        options: PlanOptions,
    ) -> Self {
        Self::build_instrumented(docs, paths, strategy, options, None)
    }

    /// [`XmlIndex::build`] with registry wiring: build-time document
    /// sequencing is sampled into `sequence.encode`, and every later query
    /// flushes its phase timings and work counters through `telemetry`.
    pub fn build_instrumented(
        docs: &[Document],
        paths: &mut PathTable,
        strategy: Strategy,
        options: PlanOptions,
        telemetry: Option<IndexTelemetry>,
    ) -> Self {
        let mut index = XmlIndex {
            trie: SequenceTrie::new(),
            strategy,
            data_paths: HashSet::new(),
            options,
            telemetry,
            delta: Arc::new(TieredDelta::new()),
        };
        let mut seqs = Vec::with_capacity(docs.len());
        for (id, doc) in docs.iter().enumerate() {
            let t0 = index.telemetry.as_ref().map(|_| Instant::now());
            let seq = sequence_document(doc, paths, &index.strategy);
            if let (Some(t), Some(tel)) = (t0, index.telemetry.as_ref()) {
                tel.encode.record_duration(t.elapsed());
            }
            index.data_paths.extend(seq.elems().iter().copied());
            seqs.push((seq, id as DocId));
        }
        index.trie.bulk_load(seqs);
        index.trie.freeze();
        index
    }

    /// [`XmlIndex::build_instrumented`] fanned out across `pool`.
    ///
    /// Documents are sequenced in parallel chunks; each worker interns new
    /// paths into a private clone of the path table, and the per-chunk
    /// deltas are absorbed back in chunk (= document) order, which replays
    /// the sequential first-occurrence interning exactly.  The sorted
    /// sequence list comes from parallel per-part stable sorts merged with
    /// earlier parts winning ties (≡ one global stable sort), and labels and
    /// path links come from [`SequenceTrie::freeze_parallel`] — so the
    /// frozen index is bit-identical to the sequential build at any thread
    /// count.
    pub fn build_parallel(
        docs: &[Document],
        paths: &mut PathTable,
        strategy: Strategy,
        options: PlanOptions,
        telemetry: Option<IndexTelemetry>,
        pool: &xseq_exec::Pool,
    ) -> Self {
        if pool.is_sequential() {
            return Self::build_instrumented(docs, paths, strategy, options, telemetry);
        }
        let mut index = XmlIndex {
            trie: SequenceTrie::new(),
            strategy,
            data_paths: HashSet::new(),
            options,
            telemetry,
            delta: Arc::new(TieredDelta::new()),
        };
        let base_len = paths.len();
        let chunk = pool.chunk_for(docs.len());
        let chunks = {
            let base: &PathTable = paths;
            let strategy = &index.strategy;
            pool.map_chunks(docs, chunk, |ci, slice| {
                let mut local = base.clone();
                let mut seqs = Vec::with_capacity(slice.len());
                let mut encode_ns = Vec::with_capacity(slice.len());
                for (j, doc) in slice.iter().enumerate() {
                    let t0 = Instant::now();
                    let seq = sequence_document(doc, &mut local, strategy);
                    encode_ns.push(t0.elapsed());
                    seqs.push((seq, (ci * chunk + j) as DocId));
                }
                (local, seqs, encode_ns)
            })
        };
        // Serial barrier: absorb interning deltas in chunk order and remap
        // each chunk's sequences onto the global path ids.
        let mut flat: Vec<(Sequence, DocId)> = Vec::with_capacity(docs.len());
        for (local, mut seqs, encode_ns) in chunks {
            let remap = paths.absorb_delta(&local, base_len);
            for (seq, _) in &mut seqs {
                if !remap.is_identity() {
                    for p in &mut seq.0 {
                        *p = remap.path(*p);
                    }
                }
                index.data_paths.extend(seq.elems().iter().copied());
            }
            if let Some(tel) = &index.telemetry {
                for d in encode_ns {
                    tel.encode.record_duration(d);
                }
            }
            flat.append(&mut seqs);
        }
        // Parallel per-part stable sorts; each part keeps its documents in
        // doc order on equal sequences.
        let part = flat.len().div_ceil(pool.threads()).max(1);
        let bounds: Vec<(usize, usize)> = (0..flat.len())
            .step_by(part)
            .map(|s| (s, (s + part).min(flat.len())))
            .collect();
        pool.run(
            flat.chunks_mut(part)
                .map(|p| move || p.sort_by(|a, b| a.0.elems().cmp(b.0.elems())))
                .collect(),
        );
        // K-way merge, earliest part winning ties: parts hold ascending doc
        // ids, so this reproduces one global stable sort over `flat`.
        let mut cur: Vec<usize> = bounds.iter().map(|&(s, _)| s).collect();
        let mut merged: Vec<(Sequence, DocId)> = Vec::with_capacity(flat.len());
        loop {
            let mut best: Option<usize> = None;
            for (pi, &(_, end)) in bounds.iter().enumerate() {
                if cur[pi] < end {
                    best = match best {
                        Some(b) if flat[cur[b]].0.elems() <= flat[cur[pi]].0.elems() => Some(b),
                        _ => Some(pi),
                    };
                }
            }
            let Some(b) = best else { break };
            let id = flat[cur[b]].1;
            merged.push((std::mem::take(&mut flat[cur[b]].0), id));
            cur[b] += 1;
        }
        index.trie.bulk_load_presorted(merged);
        index.trie.freeze_parallel(pool);
        index
    }

    /// Attaches (or replaces) the registry wiring of an existing index.
    pub fn attach_telemetry(&mut self, telemetry: IndexTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The attached registry wiring, if any.
    pub fn telemetry(&self) -> Option<&IndexTelemetry> {
        self.telemetry.as_ref()
    }

    /// Inserts one more document (dynamic maintenance).  Labels are
    /// invalidated; call [`XmlIndex::refresh`] (or let the next build step)
    /// before querying again.
    pub fn insert(&mut self, doc: &Document, id: DocId, paths: &mut PathTable) {
        let seq = sequence_document(doc, paths, &self.strategy);
        self.data_paths.extend(seq.elems().iter().copied());
        self.trie.insert(&seq, id);
    }

    /// Recomputes labels and path links after insertions.
    pub fn refresh(&mut self) {
        self.trie.freeze();
    }

    /// Appends one document to the **update overlay** — an `O(1)` amortized
    /// memtable push that keeps the frozen trie untouched and the whole
    /// index queryable.
    ///
    /// The document is sequenced with the index's own strategy against the
    /// shared path table (new paths intern here, never at query time), its
    /// paths join the wildcard dictionary, and the raw sequence lands in
    /// the overlay's memtable — so the very next query sees *frozen ∪
    /// segments*.
    pub fn insert_delta(&mut self, doc: &Document, id: DocId, paths: &mut PathTable) {
        let t0 = self.telemetry.as_ref().map(|_| Instant::now());
        let seq = sequence_document(doc, paths, &self.strategy);
        if let (Some(t), Some(tel)) = (t0, self.telemetry.as_ref()) {
            tel.encode.record_duration(t.elapsed());
        }
        self.data_paths.extend(seq.elems().iter().copied());
        self.delta.insert(&seq, id);
        if let Some(tel) = &self.telemetry {
            tel.delta_sequences.set(self.delta.sequence_count() as i64);
            tel.delta_runs.set(self.delta.run_count() as i64);
        }
    }

    /// Tombstones a document id: it stops appearing in query results
    /// immediately, background merges resolve it out of the runs they fold,
    /// and compaction drops it for good.  Returns `false` when `id` was
    /// already tombstoned.
    pub fn remove_doc(&mut self, id: DocId) -> bool {
        let fresh = self.delta.remove(id);
        if fresh {
            if let Some(tel) = &self.telemetry {
                tel.tombstones.set(self.delta.tombstones().len() as i64);
            }
        }
        fresh
    }

    /// The tiered update overlay (post-build insertions + tombstones).
    pub fn delta(&self) -> &TieredDelta {
        &self.delta
    }

    /// A shared handle onto the overlay, for the background merge worker.
    pub fn delta_handle(&self) -> Arc<TieredDelta> {
        Arc::clone(&self.delta)
    }

    /// An epoch-stamped immutable snapshot of the overlay's segment set —
    /// what every query pins for its whole run.
    pub fn delta_view(&self) -> DeltaView {
        self.delta.delta_view()
    }

    /// The current overlay epoch (bumped by every insert/remove/merge).
    pub fn delta_epoch(&self) -> u64 {
        self.delta.epoch()
    }

    /// Applies tiering knobs (memtable cut threshold, per-tier fan-in) to
    /// the overlay.
    pub fn configure_delta(&self, memtable_limit: usize, tier_ratio: usize) {
        self.delta.configure(memtable_limit, tier_ratio);
    }

    /// Attempts one overlay tier merge — see [`TieredDelta::maybe_merge`].
    pub fn maybe_merge(&self) -> Option<MergeOutcome> {
        self.delta.maybe_merge()
    }

    /// Re-publishes the overlay gauges (`index.delta.sequences`,
    /// `index.delta.runs`, `index.tombstones`) from current state — called
    /// after background merges, which shrink the overlay outside the
    /// insert/remove paths that normally maintain them.
    pub fn refresh_delta_gauges(&self) {
        if let Some(tel) = &self.telemetry {
            tel.delta_sequences.set(self.delta.sequence_count() as i64);
            tel.delta_runs.set(self.delta.run_count() as i64);
            tel.tombstones.set(self.delta.tombstones().len() as i64);
        }
    }

    /// A snapshot of the tombstoned document ids.
    pub fn tombstones(&self) -> Arc<Tombstones> {
        self.delta.tombstones()
    }

    /// Outstanding update volume: overlay sequences plus tombstones — the
    /// quantity auto-compaction thresholds measure.
    pub fn pending_updates(&self) -> usize {
        self.delta.sequence_count() + self.delta.tombstones().len()
    }

    /// Answers a tree-pattern query by order-free constraint matching
    /// ([`search::tree_search`]): wildcard instantiation against the path
    /// dictionary, one search per concrete query tree, union.
    ///
    /// Sound and complete for every valid sequencing strategy, with no
    /// isomorphism expansion (see the `tree_search` docs for why the
    /// order-free formulation subsumes it).
    ///
    /// Takes `&self` and a shared path table: queries never intern, so any
    /// number of threads may query one frozen index concurrently.
    pub fn query(&self, pattern: &TreePattern, paths: &PathTable) -> QueryOutcome {
        self.run_query(
            pattern,
            paths,
            Mode::TreeSearch,
            None,
            &mut QueryContext::new(),
        )
    }

    /// [`XmlIndex::query`] against a caller-owned [`QueryContext`], reusing
    /// its scratch buffers across calls.
    pub fn query_with(
        &self,
        pattern: &TreePattern,
        paths: &PathTable,
        ctx: &mut QueryContext,
    ) -> QueryOutcome {
        self.run_query(pattern, paths, Mode::TreeSearch, None, ctx)
    }

    /// [`XmlIndex::query`] with span emission: the planning and per-variant
    /// encoding/descent phases land as spans under `trace`'s current span,
    /// carrying candidate counts, the trie root range `(n⊢, n⊣)`, the chosen
    /// plan, and the inner-loop work (sibling-cover checks, path-link binary
    /// searches, completions) as marker events.
    pub fn query_traced(
        &self,
        pattern: &TreePattern,
        paths: &PathTable,
        trace: &mut ActiveTrace,
    ) -> QueryOutcome {
        self.run_query(
            pattern,
            paths,
            Mode::TreeSearch,
            Some(trace),
            &mut QueryContext::new(),
        )
    }

    /// The paper's Algorithm 1 verbatim: left-to-right constraint
    /// subsequence matching plus isomorphic query expansion.  Complete only
    /// for order-consistent strategies (canonical depth-first); kept for
    /// faithfulness experiments and the ViST-style baseline.
    pub fn query_ordered(&self, pattern: &TreePattern, paths: &PathTable) -> QueryOutcome {
        self.run_query(
            pattern,
            paths,
            Mode::Ordered,
            None,
            &mut QueryContext::new(),
        )
    }

    /// Naïve subsequence matching (no constraint check) — the ViST query
    /// primitive, which suffers false alarms that a ViST-style system must
    /// repair with joins or per-document post-processing.
    pub fn query_naive(&self, pattern: &TreePattern, paths: &PathTable) -> QueryOutcome {
        self.run_query(pattern, paths, Mode::Naive, None, &mut QueryContext::new())
    }

    /// The index shape report: a read-only statistics walk over
    /// *frozen ∪ delta* (see [`stats::IndexStats`]).
    pub fn stats(&self) -> IndexStats {
        stats::index_stats(self)
    }

    fn run_query(
        &self,
        pattern: &TreePattern,
        paths: &PathTable,
        mode: Mode,
        mut trace: Option<&mut ActiveTrace>,
        ctx: &mut QueryContext,
    ) -> QueryOutcome {
        let mut outcome = QueryOutcome::default();
        let plan_span = trace.as_mut().map(|tr| tr.start_span("index.plan"));
        let t_plan = Instant::now();
        let concrete = instantiate(pattern, paths, &self.data_paths, &self.options);
        outcome.stats.plan_ns = elapsed_ns(t_plan);
        outcome.stats.instantiations = concrete.len() as u64;
        if let (Some(tr), Some(sp)) = (trace.as_mut(), plan_span) {
            tr.attr(sp, "instantiations", concrete.len() as u64);
            tr.attr(sp, "plan", self.options.describe());
            tr.end_span(sp);
            let (lo, hi) = self.trie.root_range();
            tr.root_attr("n⊢", lo as u64);
            tr.root_attr("n⊣", hi as u64);
            tr.root_attr("strategy", self.strategy.short_name());
            tr.root_attr(
                "mode",
                match mode {
                    Mode::TreeSearch => "tree_search",
                    Mode::Ordered => "ordered",
                    Mode::Naive => "naive",
                },
            );
        }
        // One epoch-stamped overlay snapshot for the whole query: every
        // variant searches the same pinned segment set, however many merges
        // swap runs underneath while the query runs.
        let delta_view = self.delta.delta_view();
        // Phase timings accumulate in plain locals; the registry (if any) is
        // touched exactly once, after the loop.
        let mut encode_ns = 0u64;
        let mut search_ns = 0u64;
        let mut traced_variants = 0usize;
        for qdoc in &concrete {
            match mode {
                Mode::TreeSearch => {
                    let mut tr = if traced_variants < TRACE_VARIANT_CAP {
                        trace.as_deref_mut()
                    } else {
                        None
                    };
                    if tr.is_some() {
                        traced_variants += 1;
                    }
                    let enc = tr.as_mut().map(|t| t.start_span("sequence.encode"));
                    let t0 = Instant::now();
                    let qs = QuerySequence::from_document_readonly(qdoc, paths, &self.strategy);
                    encode_ns += elapsed_ns(t0);
                    if let (Some(t), Some(sp)) = (tr.as_mut(), enc) {
                        t.end_span(sp);
                    }
                    // A query path absent from the table matches no data —
                    // the variant is provably empty, skip the descent.
                    let Some(qs) = qs else { continue };
                    outcome.classes.extend_from_slice(&qs.paths);
                    let descent = tr.as_mut().map(|t| t.start_span("trie.descent"));
                    let t0 = Instant::now();
                    let st = search::tree_search_with(&self.trie, &qs, &mut ctx.scratch);
                    search_ns += elapsed_ns(t0);
                    if let (Some(t), Some(sp)) = (tr.as_mut(), descent) {
                        record_descent(t, sp, &st, ctx.scratch.docs.len());
                    }
                    outcome.absorb(&ctx.scratch.docs, st);
                    for segment in delta_view.segments() {
                        let descent = tr.as_mut().map(|t| t.start_span("trie.descent.delta"));
                        let t0 = Instant::now();
                        let st = search::tree_search_with(segment, &qs, &mut ctx.scratch);
                        search_ns += elapsed_ns(t0);
                        if let (Some(t), Some(sp)) = (tr.as_mut(), descent) {
                            record_descent(t, sp, &st, ctx.scratch.docs.len());
                        }
                        outcome.absorb_segment(&ctx.scratch.docs, st);
                    }
                }
                Mode::Ordered | Mode::Naive => {
                    for variant in isomorphic_variants(qdoc, self.options.max_isomorphs) {
                        let mut tr = if traced_variants < TRACE_VARIANT_CAP {
                            trace.as_deref_mut()
                        } else {
                            None
                        };
                        if tr.is_some() {
                            traced_variants += 1;
                        }
                        let enc = tr.as_mut().map(|t| t.start_span("sequence.encode"));
                        let t0 = Instant::now();
                        let qs =
                            QuerySequence::from_document_readonly(&variant, paths, &self.strategy);
                        encode_ns += elapsed_ns(t0);
                        if let (Some(t), Some(sp)) = (tr.as_mut(), enc) {
                            t.end_span(sp);
                        }
                        let Some(qs) = qs else { continue };
                        outcome.classes.extend_from_slice(&qs.paths);
                        let descent = tr.as_mut().map(|t| t.start_span("trie.descent"));
                        let t0 = Instant::now();
                        let st = if matches!(mode, Mode::Ordered) {
                            constraint_search_with(&self.trie, &qs, &mut ctx.scratch)
                        } else {
                            naive_search_with(&self.trie, &qs, &mut ctx.scratch)
                        };
                        search_ns += elapsed_ns(t0);
                        if let (Some(t), Some(sp)) = (tr.as_mut(), descent) {
                            record_descent(t, sp, &st, ctx.scratch.docs.len());
                        }
                        outcome.absorb(&ctx.scratch.docs, st);
                        for segment in delta_view.segments() {
                            let descent = tr.as_mut().map(|t| t.start_span("trie.descent.delta"));
                            let t0 = Instant::now();
                            let st = if matches!(mode, Mode::Ordered) {
                                constraint_search_with(segment, &qs, &mut ctx.scratch)
                            } else {
                                naive_search_with(segment, &qs, &mut ctx.scratch)
                            };
                            search_ns += elapsed_ns(t0);
                            if let (Some(t), Some(sp)) = (tr.as_mut(), descent) {
                                record_descent(t, sp, &st, ctx.scratch.docs.len());
                            }
                            outcome.absorb_segment(&ctx.scratch.docs, st);
                        }
                    }
                }
            }
        }
        outcome.stats.encode_ns = encode_ns;
        outcome.stats.search_ns = search_ns;
        if let Some(tr) = trace.as_mut() {
            let total = outcome.stats.variants as usize;
            if total > traced_variants {
                // no silent caps: record how many variants ran untraced
                tr.root_attr("untraced_variants", (total - traced_variants) as u64);
            }
        }
        outcome.docs.sort_unstable();
        outcome.docs.dedup();
        outcome.classes.sort_unstable();
        outcome.classes.dedup();
        search::filter_tombstones(&mut outcome.docs, &self.delta.tombstones());
        if let Some(tel) = &self.telemetry {
            tel.observe(&outcome.stats);
        }
        outcome
    }

    /// Runs a single pre-built query sequence (no instantiation) — the
    /// primitive used by the synthetic query-performance experiments.
    /// Searches both segments and applies the tombstone filter, like a full
    /// query.
    pub fn query_sequence(&self, q: &QuerySequence) -> (Vec<DocId>, SearchStats) {
        let (mut docs, mut st) = search::tree_search(&self.trie, q);
        let view = self.delta.delta_view();
        if !view.is_empty() {
            for segment in view.segments() {
                let (delta_docs, delta_st) = search::tree_search(segment, q);
                docs.extend_from_slice(&delta_docs);
                st.candidates += delta_st.candidates;
                st.cover_rejections += delta_st.cover_rejections;
                st.completions += delta_st.completions;
                st.link_probes += delta_st.link_probes;
                st.scratch_reuses += delta_st.scratch_reuses;
            }
            docs.sort_unstable();
            docs.dedup();
        }
        search::filter_tombstones(&mut docs, &self.delta.tombstones());
        (docs, st)
    }

    /// The sequencing strategy in use.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Number of trie nodes — the index-size metric of Figure 14 and
    /// Tables 5/6.
    pub fn node_count(&self) -> usize {
        self.trie.node_count()
    }

    /// Number of indexed documents (both segments; tombstoned documents
    /// still count until compaction drops them).
    pub fn doc_count(&self) -> usize {
        self.trie.sequence_count() + self.delta.sequence_count()
    }

    /// Access to the underlying trie (storage layer, baselines, tests).
    pub fn trie(&self) -> &SequenceTrie {
        &self.trie
    }

    /// Mutable access to the trie — only for tests that seed deliberate
    /// corruptions to exercise the verifier.
    #[doc(hidden)]
    pub fn trie_mut(&mut self) -> &mut SequenceTrie {
        &mut self.trie
    }

    /// Structural integrity check: preorder-label nesting, subtree extents,
    /// path-link order and coverage, sibling-cover bookkeeping, and the
    /// end-node registry.  Needs no path table, so it is cheap enough for
    /// sampled post-query spot checks.
    ///
    /// Covers **every segment**: the frozen trie and each overlay segment
    /// (runs + memtable view) of one consistent snapshot, merged into one
    /// report.
    pub fn verify_structure(&self) -> IntegrityReport {
        let mut report = verify_trie_structure(&self.trie);
        for segment in self.delta.delta_view().segments() {
            report.merge(verify_trie_structure(segment));
        }
        report
    }

    /// Full integrity check: [`XmlIndex::verify_structure`] plus `f2`
    /// validity (Eq. 3) and the Theorem 1 round-trip of every distinct
    /// stored constraint sequence — over the frozen trie *and* every
    /// overlay segment, merged into one report.
    pub fn verify_integrity(&self, paths: &mut PathTable) -> IntegrityReport {
        let mut report = verify_trie(&self.trie, paths, &self.strategy);
        for segment in self.delta.delta_view().segments() {
            report.merge(verify_trie(segment, paths, &self.strategy));
        }
        report
    }

    /// The path dictionary (distinct data paths).
    pub fn data_paths(&self) -> &HashSet<PathId> {
        &self.data_paths
    }

    /// Planner caps in use.
    pub fn options(&self) -> &PlanOptions {
        &self.options
    }
}

/// Heap attribution for the whole index: the frozen trie, the full tiered
/// overlay (memtable + cached view + runs + tombstones), the wildcard
/// dictionary and the strategy's priority tables.  The telemetry handles
/// are excluded — they are `Arc`s shared with the registry, which accounts
/// for itself.
impl xseq_telemetry::HeapSize for XmlIndex {
    fn heap_bytes(&self) -> usize {
        self.trie.heap_bytes()
            + self.delta.heap_bytes()
            + self.data_paths.heap_bytes()
            + self.strategy.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::{parse_document, Axis, PatternLabel, SymbolTable, ValueMode};

    fn corpus(xmls: &[&str]) -> (SymbolTable, PathTable, Vec<Document>) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs: Vec<Document> = xmls
            .iter()
            .map(|x| parse_document(x, &mut st).unwrap())
            .collect();
        (st, PathTable::new(), docs)
    }

    #[test]
    fn end_to_end_exact_pattern() {
        let (mut st, mut pt, docs) = corpus(&[
            "<p><r><l>boston</l></r></p>",
            "<p><d><l>boston</l></d></p>",
            "<p><r><l>newyork</l></r></p>",
        ]);
        let index = XmlIndex::build(&docs, &mut pt, Strategy::DepthFirst, PlanOptions::default());
        assert_eq!(index.doc_count(), 3);

        let p = st.designator("p");
        let r = st.designator("r");
        let l = st.designator("l");
        let boston = st.values.lookup("boston").unwrap();
        let mut q = TreePattern::root(PatternLabel::Elem(p));
        let rn = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(r));
        let ln = q.add(rn, Axis::Child, PatternLabel::Elem(l));
        q.add(ln, Axis::Child, PatternLabel::Value(boston));

        let out = index.query(&q, &pt);
        assert_eq!(out.docs, vec![0]);
    }

    #[test]
    fn end_to_end_wildcards() {
        let (mut st, mut pt, docs) = corpus(&[
            "<p><r><l>boston</l></r></p>",
            "<p><d><l>boston</l></d></p>",
            "<p><r><l>newyork</l></r></p>",
        ]);
        let index = XmlIndex::build(&docs, &mut pt, Strategy::DepthFirst, PlanOptions::default());

        let p = st.designator("p");
        let l = st.designator("l");
        let boston = st.values.lookup("boston").unwrap();
        // /p/*[l = 'boston']
        let mut q = TreePattern::root(PatternLabel::Elem(p));
        let star = q.add(q.root_id(), Axis::Child, PatternLabel::AnyElem);
        let ln = q.add(star, Axis::Child, PatternLabel::Elem(l));
        q.add(ln, Axis::Child, PatternLabel::Value(boston));
        let out = index.query(&q, &pt);
        assert_eq!(out.docs, vec![0, 1]);
        assert_eq!(out.stats.instantiations, 2);

        // //l
        let q2 = TreePattern::with_root_axis(PatternLabel::Elem(l), Axis::Descendant);
        let out2 = index.query(&q2, &pt);
        assert_eq!(out2.docs, vec![0, 1, 2]);
    }

    #[test]
    fn probability_strategy_end_to_end() {
        let (mut st, mut pt, docs) = corpus(&[
            "<p><a/><b><c/></b></p>",
            "<p><b><c/></b></p>",
            "<p><a/></p>",
        ]);
        // hand-made priorities: p > b > c > a
        let p = st.elem("p");
        let a = st.elem("a");
        let b = st.elem("b");
        let c = st.elem("c");
        let pp = pt.intern(&[p]);
        let pa = pt.intern(&[p, a]);
        let pb = pt.intern(&[p, b]);
        let pbc = pt.intern(&[p, b, c]);
        let mut pm = xseq_sequence::PriorityMap::new(0.0);
        pm.insert(pp, 1.0);
        pm.insert(pb, 0.9);
        pm.insert(pbc, 0.8);
        pm.insert(pa, 0.1);
        let index = XmlIndex::build(
            &docs,
            &mut pt,
            Strategy::Probability(pm),
            PlanOptions::default(),
        );

        let pd = st.designator("p");
        let bd = st.designator("b");
        let cd = st.designator("c");
        let mut q = TreePattern::root(PatternLabel::Elem(pd));
        let bn = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(bd));
        q.add(bn, Axis::Child, PatternLabel::Elem(cd));
        let out = index.query(&q, &pt);
        assert_eq!(out.docs, vec![0, 1]);

        let ad = st.designator("a");
        let mut q2 = TreePattern::root(PatternLabel::Elem(pd));
        q2.add(q2.root_id(), Axis::Child, PatternLabel::Elem(ad));
        let out2 = index.query(&q2, &pt);
        assert_eq!(out2.docs, vec![0, 2]);
    }

    #[test]
    fn incremental_insert_and_refresh() {
        let (mut st, mut pt, docs) = corpus(&["<p><a/></p>"]);
        let mut index =
            XmlIndex::build(&docs, &mut pt, Strategy::DepthFirst, PlanOptions::default());
        let doc2 = parse_document("<p><b/></p>", &mut st).unwrap();
        index.insert(&doc2, 1, &mut pt);
        index.refresh();

        let pd = st.designator("p");
        let bd = st.designator("b");
        let mut q = TreePattern::root(PatternLabel::Elem(pd));
        q.add(q.root_id(), Axis::Child, PatternLabel::Elem(bd));
        assert_eq!(index.query(&q, &pt).docs, vec![1]);
    }

    #[test]
    fn sibling_order_mismatch_is_no_false_dismissal() {
        // Data doc P(L(B), L(S)) with the query's sibling order reversed:
        // P(L(S), L(B)).  The order-free search needs no isomorphism
        // expansion; the paper-faithful ordered search needs it — both must
        // answer correctly.
        let (mut st, mut pt, docs) = corpus(&["<p><l><b/></l><l><s/></l></p>"]);
        let index = XmlIndex::build(&docs, &mut pt, Strategy::DepthFirst, PlanOptions::default());
        let pd = st.designator("p");
        let ld = st.designator("l");
        let sd = st.designator("s");
        let bd = st.designator("b");
        let mut q = TreePattern::root(PatternLabel::Elem(pd));
        let l1 = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
        q.add(l1, Axis::Child, PatternLabel::Elem(sd));
        let l2 = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
        q.add(l2, Axis::Child, PatternLabel::Elem(bd));
        let out = index.query(&q, &pt);
        assert_eq!(out.docs, vec![0]);
        assert_eq!(out.stats.variants, 1, "tree_search needs no expansion");
        let ordered = index.query_ordered(&q, &pt);
        assert_eq!(ordered.docs, vec![0]);
        assert!(
            ordered.stats.variants >= 2,
            "Algorithm 1 relies on isomorphic expansion here"
        );
    }

    #[test]
    fn build_parallel_is_bit_identical_to_sequential() {
        let xmls = [
            "<p><r><l>boston</l></r></p>",
            "<p><d><l>boston</l></d></p>",
            "<p><r><l>newyork</l></r></p>",
            "<p><l><b/></l><l><s/></l></p>",
            "<q><a/><b><c/></b></q>",
            "<p/>",
            "<p><r><l>boston</l></r><r><l>austin</l></r></p>",
        ];
        let (_, mut pt_seq, docs) = corpus(&xmls);
        let seq = XmlIndex::build(
            &docs,
            &mut pt_seq,
            Strategy::DepthFirst,
            PlanOptions::default(),
        );
        for threads in [2, 4, 8] {
            let (_, mut pt_par, docs) = corpus(&xmls);
            let par = XmlIndex::build_parallel(
                &docs,
                &mut pt_par,
                Strategy::DepthFirst,
                PlanOptions::default(),
                None,
                &xseq_exec::Pool::new(threads),
            );
            assert!(
                par.trie().identical_to(seq.trie()),
                "parallel build ({threads} threads) diverged"
            );
            assert_eq!(par.data_paths(), seq.data_paths());
            assert_eq!(pt_par.len(), pt_seq.len(), "path tables diverged");
            assert!(par.verify_integrity(&mut pt_par).is_clean());
        }
    }

    #[test]
    fn query_with_reuses_scratch_buffers() {
        let (mut st, mut pt, docs) =
            corpus(&["<p><r><l>boston</l></r></p>", "<p><d><l>boston</l></d></p>"]);
        let index = XmlIndex::build(&docs, &mut pt, Strategy::DepthFirst, PlanOptions::default());
        let p = st.designator("p");
        let l = st.designator("l");
        let mut q = TreePattern::root(PatternLabel::Elem(p));
        let star = q.add(q.root_id(), Axis::Child, PatternLabel::AnyElem);
        q.add(star, Axis::Child, PatternLabel::Elem(l));
        let mut ctx = QueryContext::new();
        let first = index.query_with(&q, &pt, &mut ctx);
        assert_eq!(first.docs, vec![0, 1]);
        let again = index.query_with(&q, &pt, &mut ctx);
        assert_eq!(again.docs, vec![0, 1]);
        assert!(
            again.stats.search.scratch_reuses > 0,
            "second query on one context must reuse warm buffers"
        );
    }

    #[test]
    fn naive_query_reports_false_alarms() {
        let (mut st, mut pt, docs) = corpus(&["<p><l><s/></l><l><b/></l></p>"]);
        let index = XmlIndex::build(&docs, &mut pt, Strategy::DepthFirst, PlanOptions::default());
        let pd = st.designator("p");
        let ld = st.designator("l");
        let sd = st.designator("s");
        let bd = st.designator("b");
        // P(L(S,B)) — not contained.
        let mut q = TreePattern::root(PatternLabel::Elem(pd));
        let ln = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
        q.add(ln, Axis::Child, PatternLabel::Elem(sd));
        q.add(ln, Axis::Child, PatternLabel::Elem(bd));
        assert!(index.query(&q, &pt).docs.is_empty());
        assert_eq!(index.query_naive(&q, &pt).docs, vec![0]);
    }
}
