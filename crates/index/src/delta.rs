//! LSM-style update overlay: a mutable **delta trie** plus **tombstones**.
//!
//! The paper's index is built once over a static corpus — preorder ranges
//! `(n⊢, n⊣)` and horizontal path links are assigned at freeze time — so a
//! live system cannot mutate the frozen trie in place without re-deriving
//! every label.  Instead, updates accumulate in a small side segment:
//!
//! * **Inserts** append constraint sequences (same `f2` sequencing as the
//!   frozen segment, against the same shared path table) into a second
//!   in-memory [`SequenceTrie`] with its *own* preorder-range space.  The
//!   delta trie is re-frozen after every insert — an `O(delta)` cost that
//!   stays cheap because compaction bounds the delta's size — so both
//!   segments are always queryable and every Theorem 2 invariant holds in
//!   each segment independently.
//! * **Removes** record the document id in a [`Tombstones`] set; matches
//!   are filtered at result-collection time
//!   ([`filter_tombstones`](crate::search::filter_tombstones)), after the
//!   per-segment searches union.
//!
//! Queries therefore run over *frozen ∪ delta − tombstones*.  Each segment
//! is searched with the identical query sequence (the strategy and path
//! table are shared), so no false alarms and no false dismissals are
//! introduced: a sequence matches the union exactly when it matches either
//! segment, and tombstone filtering only ever removes documents the caller
//! deleted.
//!
//! Compaction (`Database::compact` in `xseq-core`) folds the overlay back
//! into a single frozen segment by replaying the full parallel build over
//! the surviving documents — see DESIGN.md §11 for why that is bit-identical
//! to a from-scratch rebuild.
//!
//! [`check_updates`] wires the overlay into the `xseq-telemetry::sched`
//! deterministic interleaving checker (the same harness that model-checks
//! `BoundedRing`): scripted per-thread op lists run under every (or a seeded
//! sample of) arrival orders against a reference set model.

use crate::trie::SequenceTrie;
use xseq_sequence::{sequence_document, Sequence, Strategy};
use xseq_telemetry::Schedules;
use xseq_xml::{DocId, Document, PathTable, SymbolTable};

/// The mutable in-memory segment holding post-build insertions.
///
/// A thin wrapper over a second [`SequenceTrie`] that keeps itself frozen
/// (labels + path links valid) after every mutation, so it is *always*
/// queryable through the same [`TrieView`](crate::trie::TrieView) search
/// paths as the main segment.
#[derive(Debug, Default)]
pub struct DeltaSegment {
    trie: SequenceTrie,
}

impl DeltaSegment {
    /// An empty, frozen (hence queryable) delta segment.
    pub fn new() -> Self {
        let mut trie = SequenceTrie::new();
        trie.freeze();
        DeltaSegment { trie }
    }

    /// Appends one constraint sequence and re-freezes.
    ///
    /// Re-freezing recomputes the delta's preorder labels and path links
    /// from scratch — `O(delta nodes)`, acceptable because the compaction
    /// threshold keeps the delta small by design.
    pub fn insert(&mut self, seq: &Sequence, doc: DocId) {
        self.trie.insert(seq, doc);
        self.trie.freeze();
    }

    /// True when no sequence has been inserted since the last compaction.
    pub fn is_empty(&self) -> bool {
        self.trie.sequence_count() == 0
    }

    /// Number of sequences living in the delta.
    pub fn sequence_count(&self) -> usize {
        self.trie.sequence_count()
    }

    /// Number of delta trie nodes.
    pub fn node_count(&self) -> usize {
        self.trie.node_count()
    }

    /// The underlying (frozen) trie, for searching and verification.
    pub fn trie(&self) -> &SequenceTrie {
        &self.trie
    }

    /// All document ids present in the delta, sorted and deduplicated.
    pub fn doc_ids(&self) -> Vec<DocId> {
        let mut out = Vec::new();
        let (lo, hi) = self.trie.root_range();
        self.trie.collect_docs_in_range(lo, hi, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The set of removed document ids, filtered out of every query result.
///
/// Kept as a sorted vector: tombstone sets stay small (compaction drains
/// them), membership is a binary search, and the sorted order makes the
/// result-filter merge-friendly.
#[derive(Debug, Clone, Default)]
pub struct Tombstones {
    ids: Vec<DocId>,
}

impl Tombstones {
    /// An empty tombstone set.
    pub fn new() -> Self {
        Tombstones::default()
    }

    /// Records `id` as removed.  Returns `false` when it was already
    /// tombstoned (the set is idempotent).
    pub fn insert(&mut self, id: DocId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// True when `id` has been removed.
    pub fn contains(&self, id: DocId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Number of tombstoned documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been removed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The tombstoned ids, ascending.
    pub fn ids(&self) -> &[DocId] {
        &self.ids
    }
}

/// Heap attribution for the tombstone set: its sorted id vector.
impl xseq_telemetry::HeapSize for Tombstones {
    fn heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<DocId>()
    }
}

/// One scripted operation against the update overlay, for
/// [`check_updates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert a synthetic document with this id into the delta segment.
    Insert(DocId),
    /// Tombstone this id.
    Remove(DocId),
    /// Collect *delta − tombstones* and compare against the reference
    /// model.
    Query,
}

/// Builds the synthetic single-path document used by [`check_updates`] for
/// a given id — ids map onto a small family of shapes so schedules exercise
/// shared and distinct trie paths alike.
fn synthetic_doc(id: DocId, symbols: &mut SymbolTable) -> Document {
    let r = symbols.elem("r");
    let names = ["a", "b", "c"];
    let leaf = symbols.elem(names[(id as usize) % names.len()]);
    let mut doc = Document::with_root(r);
    let root = doc.root().expect("document was just given a root");
    let mid = doc.child(root, leaf);
    if id.is_multiple_of(2) {
        let deep = symbols.elem("d");
        doc.child(mid, deep);
    }
    doc
}

/// Model-checks the update overlay under deterministic interleavings, the
/// same way `check_ring` model-checks `BoundedRing`.
///
/// `threads[i]` is thread *i*'s op script.  Every schedule (exhaustive when
/// the interleaving count is at most `limit`, a seeded sample otherwise)
/// executes each arriving op *whole* — the overlay's single-writer
/// discipline means ops are atomic units, and what the checker explores is
/// every arrival order — against both the real
/// [`DeltaSegment`]/[`Tombstones`] pair and a reference set model.  Any
/// `Query` op (and a final drain) must observe *exactly* the inserted-set
/// minus the removed-set; the first divergence fails with the offending
/// schedule attached.
///
/// Returns the number of schedules checked.
pub fn check_updates(threads: &[Vec<UpdateOp>], limit: usize, seed: u64) -> Result<usize, String> {
    let lens: Vec<usize> = threads.iter().map(Vec::len).collect();
    let schedules = Schedules::new(&lens, limit, seed);
    let mut checked = 0usize;
    let mut failure: Option<String> = None;
    schedules.for_each(|sched| {
        if failure.is_some() {
            return;
        }
        checked += 1;
        if let Err(e) = run_update_schedule(threads, sched) {
            failure = Some(format!("schedule {sched:?}: {e}"));
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(checked),
    }
}

/// Executes one arrival order of the scripted ops, comparing the overlay
/// against the reference model after every query and at the end.
fn run_update_schedule(threads: &[Vec<UpdateOp>], sched: &[usize]) -> Result<(), String> {
    let mut symbols = SymbolTable::with_value_mode(xseq_xml::ValueMode::Intern);
    let mut paths = PathTable::new();
    let mut delta = DeltaSegment::new();
    let mut tombstones = Tombstones::new();
    // Reference model: the inserted and removed id sets.  Survivors are
    // *inserted − removed* irrespective of arrival order — a tombstone is
    // permanent until compaction (the corpus never reuses ids), so a remove
    // racing ahead of its insert still wins.
    let mut inserted: Vec<DocId> = Vec::new();
    let mut removed: Vec<DocId> = Vec::new();
    let mut cursors = vec![0usize; threads.len()];
    let strategy = Strategy::DepthFirst;
    let observe = |delta: &DeltaSegment, tombstones: &Tombstones| -> Vec<DocId> {
        let mut got = delta.doc_ids();
        got.retain(|d| !tombstones.contains(*d));
        got
    };
    for &t in sched {
        let op = threads[t][cursors[t]];
        cursors[t] += 1;
        match op {
            UpdateOp::Insert(id) => {
                let doc = synthetic_doc(id, &mut symbols);
                let seq = sequence_document(&doc, &mut paths, &strategy);
                delta.insert(&seq, id);
                if !inserted.contains(&id) {
                    inserted.push(id);
                }
            }
            UpdateOp::Remove(id) => {
                tombstones.insert(id);
                if !removed.contains(&id) {
                    removed.push(id);
                }
            }
            UpdateOp::Query => {
                let got = observe(&delta, &tombstones);
                let mut want: Vec<DocId> = inserted
                    .iter()
                    .copied()
                    .filter(|d| !removed.contains(d))
                    .collect();
                want.sort_unstable();
                if got != want {
                    return Err(format!("query saw {got:?}, model has {want:?}"));
                }
            }
        }
    }
    let got = observe(&delta, &tombstones);
    let mut want: Vec<DocId> = inserted
        .iter()
        .copied()
        .filter(|d| !removed.contains(d))
        .collect();
    want.sort_unstable();
    if got != want {
        return Err(format!("final state {got:?} diverges from model {want:?}"));
    }
    if !delta.trie().is_frozen() {
        return Err("delta segment left unfrozen after schedule".to_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_for(id: DocId) -> (Sequence, PathTable) {
        let mut symbols = SymbolTable::with_value_mode(xseq_xml::ValueMode::Intern);
        let mut paths = PathTable::new();
        let doc = synthetic_doc(id, &mut symbols);
        let seq = sequence_document(&doc, &mut paths, &Strategy::DepthFirst);
        (seq, paths)
    }

    #[test]
    fn empty_delta_is_frozen_and_queryable() {
        let delta = DeltaSegment::new();
        assert!(delta.is_empty());
        assert!(delta.trie().is_frozen());
        assert!(delta.doc_ids().is_empty());
    }

    #[test]
    fn insert_keeps_delta_frozen() {
        let mut delta = DeltaSegment::new();
        for id in 0..5u32 {
            let (seq, _) = seq_for(id);
            delta.insert(&seq, id);
            assert!(delta.trie().is_frozen(), "after insert {id}");
        }
        assert_eq!(delta.sequence_count(), 5);
        assert_eq!(delta.doc_ids(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tombstones_are_sorted_and_idempotent() {
        let mut t = Tombstones::new();
        assert!(t.insert(7));
        assert!(t.insert(2));
        assert!(!t.insert(7), "double-remove is a no-op");
        assert_eq!(t.ids(), &[2, 7]);
        assert!(t.contains(2) && t.contains(7) && !t.contains(3));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn exhaustive_interleavings_hold() {
        let threads = vec![
            vec![UpdateOp::Insert(0), UpdateOp::Query, UpdateOp::Insert(2)],
            vec![UpdateOp::Insert(1), UpdateOp::Remove(0), UpdateOp::Query],
        ];
        let checked = check_updates(&threads, 1 << 14, 0).expect("no divergence");
        assert_eq!(checked, 20, "C(6,3) arrival orders");
    }

    #[test]
    fn sampled_interleavings_hold() {
        let threads = vec![
            vec![
                UpdateOp::Insert(0),
                UpdateOp::Insert(4),
                UpdateOp::Remove(4),
                UpdateOp::Query,
            ],
            vec![UpdateOp::Insert(1), UpdateOp::Remove(0), UpdateOp::Query],
            vec![UpdateOp::Insert(2), UpdateOp::Query, UpdateOp::Remove(9)],
        ];
        // Beyond the limit the checker falls back to seeded sampling.
        let checked = check_updates(&threads, 64, 42).expect("no divergence");
        assert_eq!(checked, 64);
    }
}
