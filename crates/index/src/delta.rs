//! LSM-tiered update overlay: **memtable → frozen runs → merged tiers**,
//! plus **tombstones**.
//!
//! The paper's index is built once over a static corpus — preorder ranges
//! `(n⊢, n⊣)` and horizontal path links are assigned at freeze time — so a
//! live system cannot mutate the frozen trie in place without re-deriving
//! every label.  Updates instead flow through a tiered segment list,
//! following the op-log/run-segment idiom of LSM trees:
//!
//! * **Inserts** append `(sequence, doc)` pairs to a raw **memtable** — an
//!   `O(1)` amortized push, no trie work at all.  When the memtable reaches
//!   `memtable_limit` entries it is *cut*: its sequences become a frozen
//!   tier-0 [`DeltaRun`] (a small [`SequenceTrie`] with its own
//!   preorder-range space, labels and path links valid), and the memtable
//!   restarts empty.  The raw sequences are retained alongside each run so
//!   later merges replay them without walking tries.
//! * **Merges** fire when a tier accumulates `tier_ratio` runs: the runs'
//!   raw sequences are concatenated in insertion order — dropping documents
//!   tombstoned at merge time (*tombstone resolution*) — and rebuilt as a
//!   single run one tier up.  [`TieredDelta::maybe_merge`] builds the merged
//!   run entirely *outside* the segment-list lock and splices it in with a
//!   single `Arc` swap, validated by pointer identity against the candidate
//!   runs (a racing [`clear`](TieredDelta::clear) aborts the merge), so the
//!   run count stays logarithmic in the update volume without ever blocking
//!   readers.
//! * **Removes** record the document id in a copy-on-write [`Tombstones`]
//!   set; matches are filtered at result-collection time
//!   ([`filter_tombstones`](crate::search::filter_tombstones)), after the
//!   per-segment searches union.  Tombstones are never drained by merges —
//!   only full compaction clears them — so a tombstoned id stays invisible
//!   even while older runs still carry it.
//!
//! Queries call [`TieredDelta::delta_view`] once and hold an
//! **epoch-stamped immutable snapshot**: the run list is published as an
//! `Arc` swapped under a mutex, the memtable is served through a lazily
//! built (and cached) frozen view, and a monotonically increasing epoch
//! stamps every snapshot.  An in-flight query therefore always sees a
//! consistent segment set — never a torn list, never a document in two
//! tiers — while background merges swap runs underneath.  Queries run over
//! *frozen ∪ segments − tombstones*; each segment is searched with the
//! identical query sequence (the strategy and path table are shared), so no
//! false alarms and no false dismissals are introduced.
//!
//! Compaction (`Database::compact` in `xseq-core`) folds the overlay back
//! into a single frozen segment by replaying the full parallel build over
//! the surviving documents — see DESIGN.md §11/§16 for why that is
//! bit-identical to a from-scratch rebuild.
//!
//! [`check_updates`] and [`check_updates_tiered`] wire the overlay into the
//! `xseq-telemetry::sched` deterministic interleaving checker (the same
//! harness that model-checks `BoundedRing`): scripted per-thread op lists —
//! now including [`UpdateOp::Merge`] and [`UpdateOp::Compact`] — run under
//! every (or a seeded sample of) arrival orders against a reference set
//! model, with per-query invariants for torn segment sets, dropped
//! tombstones and double-visible documents.

use crate::trie::SequenceTrie;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use xseq_sequence::{sequence_document, Sequence, Strategy};
use xseq_telemetry::Schedules;
use xseq_xml::{DocId, Document, PathTable, SymbolTable};

/// Default memtable cut threshold (raw sequences per tier-0 run).
pub const DEFAULT_MEMTABLE_LIMIT: usize = 64;

/// Default per-tier fan-in: a tier holding this many runs merges into one
/// run a tier up.
pub const DEFAULT_TIER_RATIO: usize = 4;

/// One immutable frozen run of the tiered overlay.
///
/// The trie is always frozen (labels + path links valid, hence queryable
/// through the same [`TrieView`](crate::trie::TrieView) search paths as the
/// main segment); the raw sequences that built it are retained, in
/// insertion order, so merges replay them without trie walks.
#[derive(Debug)]
pub struct DeltaRun {
    trie: SequenceTrie,
    seqs: Vec<(Sequence, DocId)>,
    tier: u32,
}

impl DeltaRun {
    /// Builds a frozen run from raw sequences (insertion order preserved —
    /// the arena layout is deterministic in the input order).
    fn build(seqs: Vec<(Sequence, DocId)>, tier: u32) -> DeltaRun {
        let trie = build_mem_view(&seqs);
        DeltaRun { trie, seqs, tier }
    }

    /// The run's frozen trie.
    pub fn trie(&self) -> &SequenceTrie {
        &self.trie
    }

    /// The run's tier (0 = freshly cut memtable; merges bump it).
    pub fn tier(&self) -> u32 {
        self.tier
    }

    /// Number of raw sequences in the run.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when the run holds no sequences (never published).
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }
}

/// The published run list — immutable once behind its `Arc`; every
/// mutation clones and swaps (copy-on-write), so snapshot holders keep a
/// consistent list.
#[derive(Debug, Clone, Default)]
struct TierList {
    runs: Vec<Arc<DeltaRun>>,
}

/// The mutable raw-sequence head of the overlay plus its cached frozen
/// view.  The view is invalidated (set to `None`) by every insert and
/// rebuilt lazily on the next snapshot, so a burst of inserts pays for at
/// most one rebuild — bounded by `memtable_limit` — when queried.
#[derive(Debug, Default)]
struct Memtable {
    seqs: Vec<(Sequence, DocId)>,
    view: Option<Arc<SequenceTrie>>,
}

/// Builds the memtable's frozen view trie from its raw sequences.
fn build_mem_view(seqs: &[(Sequence, DocId)]) -> SequenceTrie {
    let mut trie = SequenceTrie::new();
    for (seq, doc) in seqs {
        SequenceTrie::insert(&mut trie, seq, *doc);
    }
    SequenceTrie::freeze(&mut trie);
    trie
}

/// An epoch-stamped immutable snapshot of the overlay's segment set.
///
/// Holding a view pins every segment (`Arc`s), so queries keep a consistent
/// set while merges swap runs underneath.  Segments iterate oldest run
/// first, memtable view last.
#[derive(Debug, Clone)]
pub struct DeltaView {
    epoch: u64,
    tiers: Arc<TierList>,
    mem: Option<Arc<SequenceTrie>>,
}

impl DeltaView {
    /// The overlay epoch at (or just after) snapshot time.  Epochs increase
    /// monotonically with every overlay mutation; two views with equal
    /// epochs observed no intervening mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of searchable segments (runs plus a non-empty memtable).
    pub fn segment_count(&self) -> usize {
        self.tiers.runs.len() + usize::from(self.mem.is_some())
    }

    /// True when the overlay held no sequences at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.segment_count() == 0
    }

    /// The frozen segment tries, oldest run first, memtable view last.
    pub fn segments(&self) -> impl Iterator<Item = &SequenceTrie> {
        self.tiers
            .runs
            .iter()
            .map(|r| r.trie())
            .chain(self.mem.as_deref())
    }

    /// The frozen runs of the snapshot (without the memtable view).
    pub fn runs(&self) -> impl Iterator<Item = &DeltaRun> {
        self.tiers.runs.iter().map(Arc::as_ref)
    }

    /// The memtable's frozen view, when the memtable was non-empty.
    pub fn mem_trie(&self) -> Option<&SequenceTrie> {
        self.mem.as_deref()
    }

    /// Per-segment document id lists (sorted, deduplicated), in segment
    /// order — the double-visibility probe used by the sched-model harness.
    pub fn segment_docs(&self) -> Vec<Vec<DocId>> {
        self.segments()
            .map(|trie| {
                let mut out = Vec::new();
                let (lo, hi) = trie.root_range();
                trie.collect_docs_in_range(lo, hi, &mut out);
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect()
    }
}

/// Summary of one completed tier merge, for telemetry and the flight
/// recorder (`compact.tier.*` events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Tier of the merged output run.
    pub tier: u32,
    /// Number of input runs folded.
    pub runs_merged: usize,
    /// Raw sequences read from the inputs.
    pub docs_in: usize,
    /// Sequences dropped by tombstone resolution.
    pub docs_dropped: usize,
}

/// The tiered mutable overlay holding post-build insertions and removals.
///
/// Interior-mutable (`&self` throughout): queries, the single writer and a
/// background merge worker share one instance through an `Arc`.  Lock
/// discipline: the three internal mutexes (`mem`, `tiers`, `tombs`) are
/// leaves — no two are ever held at once, and nothing is called while one
/// is held — so the overlay can never participate in a lock cycle.
#[derive(Debug)]
pub struct TieredDelta {
    mem: Mutex<Memtable>,
    tiers: Mutex<Arc<TierList>>,
    tombs: Mutex<Arc<Tombstones>>,
    /// Monotonic mutation stamp; snapshot consistency is carried by the
    /// `Arc` swaps under `tiers`, the epoch only *names* states.
    epoch: AtomicU64,
    memtable_limit: AtomicUsize,
    tier_ratio: AtomicUsize,
}

impl Default for TieredDelta {
    fn default() -> Self {
        TieredDelta::new()
    }
}

impl TieredDelta {
    /// An empty overlay with the default `memtable_limit`/`tier_ratio`.
    pub fn new() -> Self {
        TieredDelta {
            mem: Mutex::new(Memtable::default()),
            tiers: Mutex::new(Arc::new(TierList::default())),
            tombs: Mutex::new(Arc::new(Tombstones::new())),
            epoch: AtomicU64::new(0),
            memtable_limit: AtomicUsize::new(DEFAULT_MEMTABLE_LIMIT),
            tier_ratio: AtomicUsize::new(DEFAULT_TIER_RATIO),
        }
    }

    /// Reconfigures the cut threshold and per-tier fan-in (clamped to ≥ 1
    /// and ≥ 2 respectively).  Takes effect from the next insert/merge.
    pub fn configure(&self, memtable_limit: usize, tier_ratio: usize) {
        // ORDERING: config — tuning knobs; readers tolerate staleness
        self.memtable_limit
            .store(memtable_limit.max(1), Ordering::Relaxed);
        // ORDERING: config — same knob pair as above
        self.tier_ratio.store(tier_ratio.max(2), Ordering::Relaxed);
    }

    /// The configured memtable cut threshold.
    pub fn memtable_limit(&self) -> usize {
        // ORDERING: config — tuning knob; staleness acceptable
        self.memtable_limit.load(Ordering::Relaxed).max(1)
    }

    /// The configured per-tier merge fan-in.
    pub fn tier_ratio(&self) -> usize {
        // ORDERING: config — tuning knob; staleness acceptable
        self.tier_ratio.load(Ordering::Relaxed).max(2)
    }

    /// The current overlay epoch (bumped by every mutation).
    pub fn epoch(&self) -> u64 {
        // ORDERING: counter — monotonic stamp; data is published by the
        // mutexes, the epoch only names states for snapshot comparison
        self.epoch.load(Ordering::Relaxed)
    }

    fn bump_epoch(&self) {
        // ORDERING: counter — see `epoch`
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends one constraint sequence — an `O(1)` amortized memtable push.
    /// Crossing `memtable_limit` cuts the memtable into a frozen tier-0 run
    /// (`O(memtable_limit)`, amortized constant per insert).
    pub fn insert(&self, seq: &Sequence, doc: DocId) {
        let limit = self.memtable_limit();
        let entry = (seq.clone(), doc);
        let cut = {
            let mut mem = self.mem.lock().unwrap_or_else(|p| p.into_inner());
            mem.seqs.push(entry);
            mem.view = None;
            if mem.seqs.len() >= limit {
                Some(std::mem::take(&mut mem.seqs))
            } else {
                None
            }
        };
        if let Some(seqs) = cut {
            let run = Arc::new(DeltaRun::build(seqs, 0));
            let mut tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            let next = Arc::make_mut(&mut tiers);
            next.runs.push(run);
        }
        self.bump_epoch();
    }

    /// Tombstones `id` (copy-on-write, so snapshot holders are unaffected).
    /// Returns `false` when it was already tombstoned.
    pub fn remove(&self, id: DocId) -> bool {
        let fresh = {
            let mut tombs = self.tombs.lock().unwrap_or_else(|p| p.into_inner());
            Tombstones::insert(Arc::make_mut(&mut tombs), id)
        };
        if fresh {
            self.bump_epoch();
        }
        fresh
    }

    /// The current tombstone set (a cheap `Arc` snapshot).
    pub fn tombstones(&self) -> Arc<Tombstones> {
        let tombs = self.tombs.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(&tombs)
    }

    /// An epoch-stamped immutable snapshot of the segment set.
    ///
    /// Builds (and caches) the memtable's frozen view when the memtable is
    /// dirty — bounded by `memtable_limit` sequences — then clones the
    /// published run-list `Arc`.  The two reads are not mutually atomic,
    /// but the only mutator that can race a `&self` snapshot is the merge
    /// worker, and merges never move sequences between the memtable and the
    /// run list — so the union of segments is consistent in every
    /// interleaving (model-checked in `sched_tiers`).
    pub fn delta_view(&self) -> DeltaView {
        // Snapshot the memtable under a tight guard; the view trie (if
        // stale) is built with no lock held and re-cached only when the
        // memtable is provably unchanged (lengths match — the sequence
        // vector only grows or resets, never mutates in place).
        let (cached, raw) = {
            let mem = self.mem.lock().unwrap_or_else(|p| p.into_inner());
            let n = mem.seqs.len();
            if n == 0 {
                (None, None)
            } else if let Some(v) = &mem.view {
                (Some(Arc::clone(v)), None)
            } else {
                (None, Some(mem.seqs.clone()))
            }
        };
        let mem = if let Some(view) = cached {
            Some(view)
        } else if let Some(seqs) = raw {
            let built = Arc::new(build_mem_view(&seqs));
            {
                let mut mem = self.mem.lock().unwrap_or_else(|p| p.into_inner());
                if mem.seqs.len() == seqs.len() {
                    mem.view = Some(Arc::clone(&built));
                }
            }
            Some(built)
        } else {
            None
        };
        let tiers = {
            let tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(&tiers)
        };
        let epoch = self.epoch();
        DeltaView { epoch, tiers, mem }
    }

    /// Attempts one tier merge: picks the lowest tier holding at least
    /// `tier_ratio` runs, folds *all* of that tier's runs into one run a
    /// tier up (dropping tombstoned documents), and splices it into the
    /// published list.
    ///
    /// The merged run is built entirely outside the locks; before splicing,
    /// every candidate is re-validated by `Arc` pointer identity — if the
    /// list changed underneath (a concurrent [`clear`](Self::clear)), the
    /// merge aborts and returns `None`.  Returns `None` when no tier is due.
    /// Call in a loop to cascade merges up the tiers.
    pub fn maybe_merge(&self) -> Option<MergeOutcome> {
        let list = {
            let tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(&tiers)
        };
        let tombs = self.tombstones();
        let ratio = self.tier_ratio();
        // Lowest tier with >= ratio runs merges first, cascading upward.
        let tier = {
            let mut counts: Vec<(u32, usize)> = Vec::new();
            for run in &list.runs {
                match counts.iter_mut().find(|(t, _)| *t == run.tier) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((run.tier, 1)),
                }
            }
            counts
                .into_iter()
                .filter(|&(_, n)| n >= ratio)
                .map(|(t, _)| t)
                .min()?
        };
        let candidates: Vec<Arc<DeltaRun>> = list
            .runs
            .iter()
            .filter(|r| r.tier == tier)
            .cloned()
            .collect();
        let docs_in: usize = candidates.iter().map(|r| r.seqs.len()).sum();
        let mut merged_seqs = Vec::with_capacity(docs_in);
        for run in &candidates {
            for (seq, doc) in &run.seqs {
                if !tombs.contains(*doc) {
                    merged_seqs.push((seq.clone(), *doc));
                }
            }
        }
        let docs_dropped = docs_in - merged_seqs.len();
        let merged = if merged_seqs.is_empty() {
            None
        } else {
            Some(Arc::new(DeltaRun::build(merged_seqs, tier + 1)))
        };
        let outcome = MergeOutcome {
            tier: tier + 1,
            runs_merged: candidates.len(),
            docs_in,
            docs_dropped,
        };
        {
            let mut tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            // Validate: every candidate must still be published, unchanged.
            // The single splicer is this function, so a mismatch means a
            // clear/compact raced in — the merge output is stale, abort.
            let still_there = candidates
                .iter()
                .all(|c| tiers.runs.iter().any(|r| Arc::ptr_eq(r, c)));
            if !still_there {
                return None;
            }
            let mut next = Vec::with_capacity(tiers.runs.len() + 1 - candidates.len());
            let mut spliced = false;
            for run in &tiers.runs {
                if candidates.iter().any(|c| Arc::ptr_eq(run, c)) {
                    if !spliced {
                        spliced = true;
                        if let Some(m) = &merged {
                            next.push(Arc::clone(m));
                        }
                    }
                } else {
                    next.push(Arc::clone(run));
                }
            }
            *tiers = Arc::new(TierList { runs: next });
        }
        self.bump_epoch();
        Some(outcome)
    }

    /// Drops everything — memtable, runs and tombstones — returning the
    /// overlay to its post-compaction empty state.  In-flight snapshots are
    /// unaffected (they pin their `Arc`s); a concurrent merge will notice
    /// the swap and abort.
    pub fn clear(&self) {
        let empty_tiers = Arc::new(TierList { runs: Vec::new() });
        let empty_tombs = Arc::new(Tombstones::new());
        {
            let mut mem = self.mem.lock().unwrap_or_else(|p| p.into_inner());
            mem.seqs = Vec::new();
            mem.view = None;
        }
        {
            let mut tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            *tiers = empty_tiers;
        }
        {
            let mut tombs = self.tombs.lock().unwrap_or_else(|p| p.into_inner());
            *tombs = empty_tombs;
        }
        self.bump_epoch();
    }

    /// True when no sequence is held in any segment.
    pub fn is_empty(&self) -> bool {
        self.sequence_count() == 0
    }

    /// Number of sequences across every segment (memtable + all runs).
    /// Merges may shrink this when they resolve tombstones.
    pub fn sequence_count(&self) -> usize {
        let mem = {
            let mem = self.mem.lock().unwrap_or_else(|p| p.into_inner());
            mem.seqs.len()
        };
        let list = {
            let tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(&tiers)
        };
        let mut runs = 0usize;
        for r in &list.runs {
            runs += r.seqs.len();
        }
        mem + runs
    }

    /// Number of published frozen runs (excluding the memtable).
    pub fn run_count(&self) -> usize {
        let list = {
            let tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(&tiers)
        };
        list.runs.len()
    }

    /// True when some tier holds at least `tier_ratio` runs, i.e. the next
    /// [`TieredDelta::maybe_merge`] has work to do.  Advisory: a concurrent
    /// merger or `clear` may win the race and leave nothing due.
    pub fn merge_due(&self) -> bool {
        let ratio = self.tier_ratio();
        let list = {
            let tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(&tiers)
        };
        let mut counts: Vec<(u32, usize)> = Vec::new();
        for run in &list.runs {
            match counts.iter_mut().find(|(t, _)| *t == run.tier) {
                Some((_, n)) => *n += 1,
                None => counts.push((run.tier, 1)),
            }
        }
        counts.into_iter().any(|(_, n)| n >= ratio)
    }

    /// Total trie nodes across every segment (building the memtable view if
    /// it is stale) — the delta half of the Figure 14 size metric.
    pub fn node_count(&self) -> usize {
        let view = self.delta_view();
        let mut n = 0usize;
        for run in &view.tiers.runs {
            n += SequenceTrie::node_count(&run.trie);
        }
        if let Some(mem) = &view.mem {
            n += SequenceTrie::node_count(mem);
        }
        n
    }

    /// All document ids present in the overlay, sorted and deduplicated.
    pub fn doc_ids(&self) -> Vec<DocId> {
        let mut out: Vec<DocId> = Vec::new();
        {
            let mem = self.mem.lock().unwrap_or_else(|p| p.into_inner());
            for &(_, d) in &mem.seqs {
                out.push(d);
            }
        }
        let list = {
            let tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(&tiers)
        };
        for run in &list.runs {
            for &(_, d) in &run.seqs {
                out.push(d);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Heap attribution across every component (see the `HeapSize` impl in
    /// `stats`): memtable raw sequences + cached view, run tries + retained
    /// sequences, and the tombstone set.
    pub(crate) fn heap_bytes_now(&self) -> usize {
        use xseq_telemetry::HeapSize;
        let entry = std::mem::size_of::<(Sequence, DocId)>();
        // Snapshot every component in tight guard scopes (clone/`Arc`
        // bumps only); all heap-size arithmetic runs with no lock held.
        let (mem_seqs, mem_cap, mem_view) = {
            let mem = self.mem.lock().unwrap_or_else(|p| p.into_inner());
            let cap = mem.seqs.capacity();
            (mem.seqs.clone(), cap, mem.view.clone())
        };
        let list = {
            let tiers = self.tiers.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(&tiers)
        };
        let tombs = {
            let tombs = self.tombs.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(&tombs)
        };
        let mut total = mem_cap * entry;
        for (s, _) in &mem_seqs {
            total += s.heap_bytes();
        }
        if let Some(v) = &mem_view {
            total += std::mem::size_of::<SequenceTrie>() + v.heap_bytes();
        }
        total += std::mem::size_of::<TierList>()
            + list.runs.capacity() * std::mem::size_of::<Arc<DeltaRun>>();
        for r in &list.runs {
            total +=
                std::mem::size_of::<DeltaRun>() + r.trie.heap_bytes() + r.seqs.capacity() * entry;
            for (s, _) in &r.seqs {
                total += s.heap_bytes();
            }
        }
        total += std::mem::size_of::<Tombstones>() + tombs.heap_bytes();
        total
    }
}

/// The set of removed document ids, filtered out of every query result.
///
/// Kept as a sorted vector: tombstone sets stay small (compaction drains
/// them), membership is a binary search, and the sorted order makes the
/// result-filter merge-friendly.
#[derive(Debug, Clone, Default)]
pub struct Tombstones {
    ids: Vec<DocId>,
}

impl Tombstones {
    /// An empty tombstone set.
    pub fn new() -> Self {
        Tombstones::default()
    }

    /// Records `id` as removed.  Returns `false` when it was already
    /// tombstoned (the set is idempotent).
    pub fn insert(&mut self, id: DocId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                Vec::insert(&mut self.ids, pos, id);
                true
            }
        }
    }

    /// True when `id` has been removed.
    pub fn contains(&self, id: DocId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Number of tombstoned documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been removed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The tombstoned ids, ascending.
    pub fn ids(&self) -> &[DocId] {
        &self.ids
    }
}

/// Heap attribution for the tombstone set: its sorted id vector.
impl xseq_telemetry::HeapSize for Tombstones {
    fn heap_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<DocId>()
    }
}

/// One scripted operation against the update overlay, for
/// [`check_updates`] / [`check_updates_tiered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert a synthetic document with this id into the overlay.
    Insert(DocId),
    /// Tombstone this id.
    Remove(DocId),
    /// Snapshot the overlay and check every reader invariant against the
    /// reference model.
    Query,
    /// Attempt one background tier merge ([`TieredDelta::maybe_merge`]).
    Merge,
    /// Full compaction: fold the visible set into the harness's frozen
    /// base and [`clear`](TieredDelta::clear) the overlay.
    Compact,
}

/// Builds the synthetic single-path document used by the sched harnesses
/// for a given id — ids map onto a small family of shapes so schedules
/// exercise shared and distinct trie paths alike.
fn synthetic_doc(id: DocId, symbols: &mut SymbolTable) -> Document {
    let r = symbols.elem("r");
    let names = ["a", "b", "c"];
    let leaf = symbols.elem(names[(id as usize) % names.len()]);
    let mut doc = Document::with_root(r);
    let root = doc.root().expect("document was just given a root");
    let mid = doc.child(root, leaf);
    if id.is_multiple_of(2) {
        let deep = symbols.elem("d");
        doc.child(mid, deep);
    }
    doc
}

/// Model-checks the update overlay under deterministic interleavings with
/// aggressive tiering knobs (`memtable_limit = 2`, `tier_ratio = 2`, so
/// cuts and merges fire inside even short scripts) — the same way
/// `check_ring` model-checks `BoundedRing`.
///
/// `threads[i]` is thread *i*'s op script.  Every schedule (exhaustive when
/// the interleaving count is at most `limit`, a seeded sample otherwise)
/// executes each arriving op *whole* — the overlay's single-writer
/// discipline makes writer ops atomic units, and op-grain snapshots are
/// exactly what [`TieredDelta::delta_view`] hands a reader — against both
/// the real [`TieredDelta`] and a reference set model.  Any `Query` op (and
/// a final drain) must observe *exactly* the visible set; the first
/// divergence fails with the offending schedule attached.
///
/// Returns the number of schedules checked.
pub fn check_updates(threads: &[Vec<UpdateOp>], limit: usize, seed: u64) -> Result<usize, String> {
    check_updates_tiered(threads, limit, seed, 2, 2)
}

/// [`check_updates`] with explicit tiering knobs, checking the full reader
/// invariant set on every `Query`:
///
/// 1. **Differential**: the observed doc set equals the reference model's
///    *(frozen ∪ inserted) − removed*.
/// 2. **No dropped tombstone**: every id removed since the last compaction
///    is present in the overlay's tombstone snapshot.
/// 3. **No double visibility**: an id inserted exactly once (and not
///    removed) since the last compaction appears in exactly one segment of
///    the snapshot — a torn merge splice would surface it in two tiers.
/// 4. **Epoch monotonicity**: snapshot epochs never decrease, and every
///    mutating op strictly advances the overlay epoch.
/// 5. **Frozen segments**: every segment of every snapshot is frozen
///    (labels + path links valid).
pub fn check_updates_tiered(
    threads: &[Vec<UpdateOp>],
    limit: usize,
    seed: u64,
    memtable_limit: usize,
    tier_ratio: usize,
) -> Result<usize, String> {
    let lens: Vec<usize> = threads.iter().map(Vec::len).collect();
    let schedules = Schedules::new(&lens, limit, seed);
    let mut checked = 0usize;
    let mut failure: Option<String> = None;
    schedules.for_each(|sched| {
        if failure.is_some() {
            return;
        }
        checked += 1;
        if let Err(e) = run_update_schedule(threads, sched, memtable_limit, tier_ratio) {
            failure = Some(format!("schedule {sched:?}: {e}"));
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(checked),
    }
}

/// Executes one arrival order of the scripted ops, comparing the overlay
/// against the reference model after every query and at the end.
fn run_update_schedule(
    threads: &[Vec<UpdateOp>],
    sched: &[usize],
    memtable_limit: usize,
    tier_ratio: usize,
) -> Result<(), String> {
    let mut symbols = SymbolTable::with_value_mode(xseq_xml::ValueMode::Intern);
    let mut paths = PathTable::new();
    let delta = TieredDelta::new();
    delta.configure(memtable_limit, tier_ratio);
    // Reference model.  `frozen` is the visible set captured by the last
    // Compact (the harness's stand-in for the frozen segment); `inserted` /
    // `removed` track overlay-era ids.  Survivors are *(frozen ∪ inserted)
    // − removed* irrespective of arrival order — a tombstone is permanent
    // until compaction (the corpus never reuses ids), so a remove racing
    // ahead of its insert still wins.
    let mut frozen: Vec<DocId> = Vec::new();
    let mut inserted: Vec<DocId> = Vec::new();
    let mut insert_counts: Vec<(DocId, usize)> = Vec::new();
    let mut removed: Vec<DocId> = Vec::new();
    let mut cursors = vec![0usize; threads.len()];
    let strategy = Strategy::DepthFirst;
    let mut last_epoch = delta.epoch();
    let mut last_view_epoch = 0u64;
    let model_visible = |frozen: &[DocId], inserted: &[DocId], removed: &[DocId]| -> Vec<DocId> {
        let mut want: Vec<DocId> = frozen
            .iter()
            .chain(inserted.iter())
            .copied()
            .filter(|d| !removed.contains(d))
            .collect();
        want.sort_unstable();
        want.dedup();
        want
    };
    let observe = |delta: &TieredDelta, frozen: &[DocId]| -> Vec<DocId> {
        let tombs = delta.tombstones();
        let mut got = delta.doc_ids();
        got.extend(frozen.iter().copied());
        got.sort_unstable();
        got.dedup();
        got.retain(|d| !tombs.contains(*d));
        got
    };
    for &t in sched {
        let op = threads[t][cursors[t]];
        cursors[t] += 1;
        match op {
            UpdateOp::Insert(id) => {
                let doc = synthetic_doc(id, &mut symbols);
                let seq = sequence_document(&doc, &mut paths, &strategy);
                delta.insert(&seq, id);
                if !inserted.contains(&id) {
                    inserted.push(id);
                }
                match insert_counts.iter_mut().find(|(d, _)| *d == id) {
                    Some((_, n)) => *n += 1,
                    None => insert_counts.push((id, 1)),
                }
                let now = delta.epoch();
                if now <= last_epoch {
                    return Err(format!("insert({id}) did not advance the epoch"));
                }
                last_epoch = now;
            }
            UpdateOp::Remove(id) => {
                let fresh = delta.remove(id);
                if !removed.contains(&id) {
                    removed.push(id);
                }
                let now = delta.epoch();
                if fresh && now <= last_epoch {
                    return Err(format!("remove({id}) did not advance the epoch"));
                }
                last_epoch = now;
            }
            UpdateOp::Merge => {
                let before = delta.epoch();
                let outcome = delta.maybe_merge();
                let now = delta.epoch();
                if outcome.is_some() && now <= before {
                    return Err("merge did not advance the epoch".to_owned());
                }
                last_epoch = now;
            }
            UpdateOp::Compact => {
                frozen = observe(&delta, &frozen);
                inserted.clear();
                insert_counts.clear();
                removed.clear();
                delta.clear();
                let now = delta.epoch();
                if now <= last_epoch {
                    return Err("compact did not advance the epoch".to_owned());
                }
                last_epoch = now;
            }
            UpdateOp::Query => {
                let view = delta.delta_view();
                if view.epoch() < last_view_epoch {
                    return Err(format!(
                        "snapshot epoch went backwards: {} after {}",
                        view.epoch(),
                        last_view_epoch
                    ));
                }
                last_view_epoch = view.epoch();
                check_view_invariants(
                    &delta,
                    &view,
                    &frozen,
                    &insert_counts,
                    &removed,
                    &model_visible(&frozen, &inserted, &removed),
                )?;
            }
        }
    }
    let view = delta.delta_view();
    check_view_invariants(
        &delta,
        &view,
        &frozen,
        &insert_counts,
        &removed,
        &model_visible(&frozen, &inserted, &removed),
    )
    .map_err(|e| format!("final state: {e}"))
}

/// The reader-side invariant battery shared by every `Query` op and the
/// final drain — see [`check_updates_tiered`] for the list.
fn check_view_invariants(
    delta: &TieredDelta,
    view: &DeltaView,
    frozen: &[DocId],
    insert_counts: &[(DocId, usize)],
    removed: &[DocId],
    want: &[DocId],
) -> Result<(), String> {
    let tombs = delta.tombstones();
    let segment_docs = view.segment_docs();
    // 1. Differential: visible union matches the model.
    let mut got: Vec<DocId> = segment_docs.iter().flatten().copied().collect();
    got.extend(frozen.iter().copied());
    got.sort_unstable();
    got.dedup();
    got.retain(|d| !tombs.contains(*d));
    if got != want {
        return Err(format!("query saw {got:?}, model has {want:?}"));
    }
    // 2. No dropped tombstone: every overlay-era remove is in the set.
    for id in removed {
        if !tombs.contains(*id) {
            return Err(format!("tombstone for {id} was dropped"));
        }
    }
    // 3. No double visibility across segments.
    for &(id, count) in insert_counts {
        if count != 1 || removed.contains(&id) {
            continue;
        }
        let appearances = segment_docs
            .iter()
            .filter(|docs| docs.binary_search(&id).is_ok())
            .count();
        if appearances != 1 {
            return Err(format!(
                "doc {id} (inserted once, live) appears in {appearances} segments"
            ));
        }
    }
    // 5. Every snapshot segment is frozen, hence queryable.
    for (i, seg) in view.segments().enumerate() {
        if !seg.is_frozen() {
            return Err(format!("snapshot segment {i} is not frozen"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_for(id: DocId) -> (Sequence, PathTable) {
        let mut symbols = SymbolTable::with_value_mode(xseq_xml::ValueMode::Intern);
        let mut paths = PathTable::new();
        let doc = synthetic_doc(id, &mut symbols);
        let seq = sequence_document(&doc, &mut paths, &Strategy::DepthFirst);
        (seq, paths)
    }

    #[test]
    fn empty_delta_is_frozen_and_queryable() {
        let delta = TieredDelta::new();
        assert!(delta.is_empty());
        assert!(delta.delta_view().is_empty());
        assert_eq!(delta.delta_view().segment_count(), 0);
        assert!(delta.doc_ids().is_empty());
    }

    #[test]
    fn insert_keeps_every_segment_frozen() {
        let delta = TieredDelta::new();
        delta.configure(2, 2);
        for id in 0..5u32 {
            let (seq, _) = seq_for(id);
            delta.insert(&seq, id);
            let view = delta.delta_view();
            for (i, seg) in view.segments().enumerate() {
                assert!(seg.is_frozen(), "segment {i} after insert {id}");
            }
        }
        assert_eq!(delta.sequence_count(), 5);
        assert_eq!(delta.doc_ids(), vec![0, 1, 2, 3, 4]);
        assert!(delta.run_count() >= 2, "limit 2 must have cut runs");
    }

    #[test]
    fn memtable_cuts_at_the_limit_and_merges_cascade() {
        let delta = TieredDelta::new();
        delta.configure(2, 2);
        for id in 0..8u32 {
            let (seq, _) = seq_for(id);
            delta.insert(&seq, id);
        }
        // 8 inserts at limit 2 -> 4 tier-0 runs, memtable empty.
        assert_eq!(delta.run_count(), 4);
        assert!(delta.delta_view().mem_trie().is_none());
        // Ratio 2: the first merge folds all four tier-0 runs into tier 1.
        let m = delta.maybe_merge().expect("tier 0 is due");
        assert_eq!(
            (m.tier, m.runs_merged, m.docs_in, m.docs_dropped),
            (1, 4, 8, 0)
        );
        assert_eq!(delta.run_count(), 1);
        assert!(delta.maybe_merge().is_none(), "single run: nothing due");
        assert_eq!(delta.doc_ids(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn merges_resolve_tombstones_but_keep_the_set() {
        let delta = TieredDelta::new();
        delta.configure(2, 2);
        for id in 0..4u32 {
            let (seq, _) = seq_for(id);
            delta.insert(&seq, id);
        }
        assert!(delta.remove(1));
        assert!(!delta.remove(1), "double remove is a no-op");
        let m = delta.maybe_merge().expect("tier 0 is due");
        assert_eq!(m.docs_dropped, 1);
        assert_eq!(delta.doc_ids(), vec![0, 2, 3], "1 resolved out of the runs");
        assert!(
            delta.tombstones().contains(1),
            "merges must not drain the tombstone set"
        );
        assert_eq!(delta.sequence_count(), 3);
    }

    #[test]
    fn snapshots_pin_their_segments_across_merges_and_clear() {
        let delta = TieredDelta::new();
        delta.configure(2, 2);
        for id in 0..6u32 {
            let (seq, _) = seq_for(id);
            delta.insert(&seq, id);
        }
        let before = delta.delta_view();
        let seen_before: usize = before.segment_docs().iter().map(Vec::len).sum();
        while delta.maybe_merge().is_some() {}
        delta.clear();
        // The old snapshot still reads its full pinned segment set.
        let seen_after: usize = before.segment_docs().iter().map(Vec::len).sum();
        assert_eq!(seen_before, seen_after);
        assert!(delta.is_empty());
        let fresh = delta.delta_view();
        assert!(fresh.is_empty());
        assert!(fresh.epoch() > before.epoch());
    }

    #[test]
    fn merge_after_clear_finds_nothing() {
        let delta = TieredDelta::new();
        delta.configure(2, 2);
        for id in 0..4u32 {
            let (seq, _) = seq_for(id);
            delta.insert(&seq, id);
        }
        delta.clear();
        assert!(delta.maybe_merge().is_none());
    }

    #[test]
    fn epochs_advance_with_every_mutation() {
        let delta = TieredDelta::new();
        let mut last = delta.epoch();
        let (seq, _) = seq_for(3);
        delta.insert(&seq, 3);
        assert!(delta.epoch() > last);
        last = delta.epoch();
        assert!(delta.remove(9));
        assert!(delta.epoch() > last);
        last = delta.epoch();
        delta.clear();
        assert!(delta.epoch() > last);
    }

    #[test]
    fn tombstones_are_sorted_and_idempotent() {
        let mut t = Tombstones::new();
        assert!(t.insert(7));
        assert!(t.insert(2));
        assert!(!t.insert(7), "double-remove is a no-op");
        assert_eq!(t.ids(), &[2, 7]);
        assert!(t.contains(2) && t.contains(7) && !t.contains(3));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn exhaustive_interleavings_hold() {
        let threads = vec![
            vec![UpdateOp::Insert(0), UpdateOp::Query, UpdateOp::Insert(2)],
            vec![UpdateOp::Insert(1), UpdateOp::Remove(0), UpdateOp::Query],
        ];
        let checked = check_updates(&threads, 1 << 14, 0).expect("no divergence");
        assert_eq!(checked, 20, "C(6,3) arrival orders");
    }

    #[test]
    fn sampled_interleavings_hold() {
        let threads = vec![
            vec![
                UpdateOp::Insert(0),
                UpdateOp::Insert(4),
                UpdateOp::Remove(4),
                UpdateOp::Query,
            ],
            vec![UpdateOp::Insert(1), UpdateOp::Remove(0), UpdateOp::Query],
            vec![UpdateOp::Insert(2), UpdateOp::Query, UpdateOp::Remove(9)],
        ];
        // Beyond the limit the checker falls back to seeded sampling.
        let checked = check_updates(&threads, 64, 42).expect("no divergence");
        assert_eq!(checked, 64);
    }

    #[test]
    fn merge_and_compact_ops_hold_exhaustively() {
        let threads = vec![
            vec![UpdateOp::Insert(0), UpdateOp::Insert(2), UpdateOp::Merge],
            vec![UpdateOp::Remove(0), UpdateOp::Query, UpdateOp::Compact],
        ];
        let checked = check_updates(&threads, 1 << 14, 0).expect("no divergence");
        assert_eq!(checked, 20, "C(6,3) arrival orders");
    }
}
