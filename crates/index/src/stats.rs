//! Deep index statistics: a read-only walk over *frozen ∪ delta*.
//!
//! [`XmlIndex::stats`] turns the index from a black box into an
//! inspectable shape report: trie depth/fanout/preorder-range
//! distributions, the stored-sequence length distribution the sequencing
//! strategy produced, horizontal-link and sibling-cover density, and the
//! update overlay's occupancy.  Everything is computed by traversal of
//! already-frozen structures — no locks, no mutation, `O(nodes)` — so it
//! is safe to call on a live database between queries.
//!
//! Distributions use the same power-of-two bucketing as the telemetry
//! histograms ([`bucket_of`]/[`bucket_bounds`]), so the report composes
//! with the rest of the observability surface.

use crate::delta::TieredDelta;
use crate::trie::{SequenceTrie, NIL};
use crate::XmlIndex;
use std::fmt::Write as _;
use xseq_telemetry::{bucket_bounds, bucket_of};

/// Shape statistics of one trie segment (frozen or delta).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Real trie nodes (the virtual root excluded).
    pub nodes: usize,
    /// Inserted sequences (documents, counting duplicates).
    pub sequences: usize,
    /// Deepest real node (root children are depth 1).
    pub max_depth: usize,
    /// Node count per depth; `depth_counts[d]` is the number of real
    /// nodes at depth `d` (index 0 unused).
    pub depth_counts: Vec<u64>,
    /// Node count per child count, over real nodes (leaves land at
    /// index 0).
    pub fanout_counts: Vec<u64>,
    /// Children of the virtual root — the number of distinct leading
    /// sequence elements.
    pub root_fanout: usize,
    /// Preorder-range width distribution: `range_width_buckets[b]` counts
    /// real nodes whose subtree width `n⊣ − n⊢ + 1` falls in power-of-two
    /// bucket `b` (see [`bucket_of`]).  Empty when the segment is not
    /// frozen.
    pub range_width_buckets: Vec<u64>,
    /// Stored-sequence length distribution: `seq_len_counts[l]` counts end
    /// nodes at depth `l` — the lengths the sequencing strategy produced.
    pub seq_len_counts: Vec<u64>,
    /// Distinct paths owning a horizontal link.
    pub link_paths: usize,
    /// Total link entries (equals `nodes` by construction; reported so the
    /// invariant is visible).
    pub link_entries: usize,
    /// Nodes whose range embeds another node with the same path — the
    /// nodes where Algorithm 1's sibling-cover check can actually fire.
    pub sibling_cover_nodes: usize,
    /// Nodes owning a document id list.
    pub end_nodes: usize,
    /// Total document ids across all lists.
    pub doc_ids: usize,
}

impl SegmentStats {
    /// Collects the statistics of one trie by a read-only walk.
    // PANIC-FREE: depths and the frozen tables are sized to the arena,
    // and the walk only visits arena-minted node ids
    pub fn collect(trie: &SequenceTrie) -> SegmentStats {
        let mut s = SegmentStats {
            nodes: trie.node_count(),
            sequences: trie.sequence_count(),
            ..SegmentStats::default()
        };
        let mut depths = vec![0u32; trie.arena_len()];
        let mut stack = vec![trie.root()];
        while let Some(n) = stack.pop() {
            let depth = depths[n as usize] as usize;
            let mut fanout = 0usize;
            let mut c = trie.first_child(n);
            while c != NIL {
                depths[c as usize] = depth as u32 + 1;
                fanout += 1;
                stack.push(c);
                c = trie.next_sibling(c);
            }
            if n == trie.root() {
                s.root_fanout = fanout;
            } else {
                bump(&mut s.depth_counts, depth);
                s.max_depth = s.max_depth.max(depth);
                bump(&mut s.fanout_counts, fanout);
            }
        }
        if trie.is_frozen() {
            let f = trie.frozen();
            for n in 1..trie.arena_len() {
                let width = u64::from(f.max_desc[n] - f.serial[n]) + 1;
                bump(&mut s.range_width_buckets, bucket_of(width));
                if f.embeds_identical[n] {
                    s.sibling_cover_nodes += 1;
                }
            }
            s.link_paths = f.links.len();
            s.link_entries = f.links.values().map(Vec::len).sum();
            s.end_nodes = f.end_nodes.len();
            for &(_, node) in &f.end_nodes {
                bump(&mut s.seq_len_counts, depths[node as usize] as usize);
            }
        }
        for (_, docs) in trie.doc_lists() {
            s.doc_ids += docs.len();
        }
        s
    }

    /// Folds another segment's statistics into this one — the cross-shard
    /// aggregate view: counters sum, distribution vectors add element-wise
    /// (extending to the longer length), and `max_depth` takes the max.
    pub fn merge(&mut self, other: &SegmentStats) {
        self.nodes += other.nodes;
        self.sequences += other.sequences;
        self.max_depth = self.max_depth.max(other.max_depth);
        add_counts(&mut self.depth_counts, &other.depth_counts);
        add_counts(&mut self.fanout_counts, &other.fanout_counts);
        self.root_fanout += other.root_fanout;
        add_counts(&mut self.range_width_buckets, &other.range_width_buckets);
        add_counts(&mut self.seq_len_counts, &other.seq_len_counts);
        self.link_paths += other.link_paths;
        self.link_entries += other.link_entries;
        self.sibling_cover_nodes += other.sibling_cover_nodes;
        self.end_nodes += other.end_nodes;
        self.doc_ids += other.doc_ids;
    }

    /// Mean children per non-leaf node, `None` when the trie is empty or
    /// all-leaf.
    pub fn mean_fanout(&self) -> Option<f64> {
        let interior: u64 = self.fanout_counts.iter().skip(1).sum();
        let children: u64 = self
            .fanout_counts
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        (interior > 0).then(|| children as f64 / interior as f64)
    }

    /// Mean entries per horizontal link — the path-sharing factor a
    /// descent's binary searches run over.
    pub fn link_density(&self) -> Option<f64> {
        (self.link_paths > 0).then(|| self.link_entries as f64 / self.link_paths as f64)
    }

    /// Fraction of nodes where the sibling-cover check is live.
    pub fn sibling_cover_density(&self) -> Option<f64> {
        (self.nodes > 0).then(|| self.sibling_cover_nodes as f64 / self.nodes as f64)
    }

    /// Mean stored-sequence length (over end nodes), the strategy's
    /// output-length signal.
    pub fn mean_seq_len(&self) -> Option<f64> {
        let ends: u64 = self.seq_len_counts.iter().sum();
        let total: u64 = self
            .seq_len_counts
            .iter()
            .enumerate()
            .map(|(l, &c)| l as u64 * c)
            .sum();
        (ends > 0).then(|| total as f64 / ends as f64)
    }
}

fn add_counts(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

fn bump(v: &mut Vec<u64>, idx: usize) {
    if v.len() <= idx {
        v.resize(idx + 1, 0);
    }
    // PANIC-FREE: the resize above guarantees idx < v.len()
    v[idx] += 1;
}

/// The full index shape report: both segments plus overlay occupancy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// The sequencing strategy's short name.
    pub strategy: String,
    /// The bulk-built frozen segment.
    pub frozen: SegmentStats,
    /// The update overlay's delta segment.
    pub delta: SegmentStats,
    /// Tombstoned document ids awaiting compaction.
    pub tombstones: usize,
    /// Distinct data paths in the wildcard dictionary.
    pub data_paths: usize,
}

impl IndexStats {
    /// Folds another index's report into this one — used by sharded
    /// databases to present one aggregate shape report over every shard.
    /// `strategy` keeps `self`'s name (all shards share one configured
    /// strategy kind); `data_paths` and `tombstones` sum, which counts a
    /// path once per shard that contains it (shard tables are independent
    /// id spaces).
    pub fn merge(&mut self, other: &IndexStats) {
        self.frozen.merge(&other.frozen);
        self.delta.merge(&other.delta);
        self.tombstones += other.tombstones;
        self.data_paths += other.data_paths;
    }

    /// Renders the report as an indented text block (the shape half of the
    /// observability example's output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "index stats (strategy {}):", self.strategy);
        let _ = writeln!(
            out,
            "  dictionary: {} distinct data paths | tombstones {}",
            self.data_paths, self.tombstones
        );
        for (name, seg) in [("frozen", &self.frozen), ("delta", &self.delta)] {
            let _ = writeln!(
                out,
                "  {name}: {} nodes, {} sequences, {} end nodes, {} doc ids",
                seg.nodes, seg.sequences, seg.end_nodes, seg.doc_ids
            );
            if seg.nodes == 0 {
                continue;
            }
            let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"));
            let _ = writeln!(
                out,
                "    depth max {} | root fanout {} | mean fanout {} | mean seq len {}",
                seg.max_depth,
                seg.root_fanout,
                fmt(seg.mean_fanout()),
                fmt(seg.mean_seq_len()),
            );
            let _ = writeln!(
                out,
                "    links: {} paths, {} entries (density {}) | sibling-cover nodes {} ({})",
                seg.link_paths,
                seg.link_entries,
                fmt(seg.link_density()),
                seg.sibling_cover_nodes,
                fmt(seg.sibling_cover_density()),
            );
            let _ = write!(out, "    depth histogram:");
            for (d, &c) in seg.depth_counts.iter().enumerate() {
                if c > 0 {
                    let _ = write!(out, " {d}:{c}");
                }
            }
            out.push('\n');
            let _ = write!(out, "    range widths:");
            for (b, &c) in seg.range_width_buckets.iter().enumerate() {
                if c > 0 {
                    let (lo, hi) = bucket_bounds(b);
                    let _ = write!(out, " [{lo},{hi}]:{c}");
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Collects [`IndexStats`] over every segment of an index: the frozen trie
/// in the `frozen` slot, and the overlay's segments — tier runs plus the
/// memtable view, from one consistent snapshot — merged into the `delta`
/// slot.
pub fn index_stats(index: &XmlIndex) -> IndexStats {
    let mut delta = SegmentStats::default();
    for segment in index.delta().delta_view().segments() {
        delta.merge(&SegmentStats::collect(segment));
    }
    IndexStats {
        strategy: index.strategy().short_name().to_string(),
        frozen: SegmentStats::collect(index.trie()),
        delta,
        tombstones: index.tombstones().len(),
        data_paths: index.data_paths().len(),
    }
}

/// Heap attribution for the tiered overlay: memtable raw sequences, the
/// cached memtable view, every run's trie + retained sequences, and the
/// tombstone set.
impl xseq_telemetry::HeapSize for TieredDelta {
    fn heap_bytes(&self) -> usize {
        self.heap_bytes_now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanOptions;
    use xseq_sequence::Strategy;
    use xseq_xml::{parse_document, PathTable, SymbolTable, ValueMode};

    fn build(xmls: &[&str]) -> (XmlIndex, PathTable) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs: Vec<_> = xmls
            .iter()
            .map(|x| parse_document(x, &mut st).expect("fixture parses"))
            .collect();
        let mut pt = PathTable::new();
        let index = XmlIndex::build(&docs, &mut pt, Strategy::DepthFirst, PlanOptions::default());
        (index, pt)
    }

    #[test]
    fn segment_stats_count_the_shape() {
        let (index, _) = build(&[
            "<p><a><x/></a></p>", // P, P.A, P.A.X
            "<p><a><y/></a></p>", // shares P, P.A
            "<p><b/></p>",        // shares P
        ]);
        let stats = index_stats(&index);
        let f = &stats.frozen;
        // nodes: P, P.A, P.A.X, P.A.Y, P.B
        assert_eq!(f.nodes, 5);
        assert_eq!(f.sequences, 3);
        assert_eq!(f.root_fanout, 1, "all sequences start with P");
        assert_eq!(f.max_depth, 3);
        assert_eq!(f.depth_counts, vec![0, 1, 2, 2]);
        // links: one entry per node, one path per distinct encoding
        assert_eq!(f.link_entries, 5);
        assert_eq!(f.link_paths, 5);
        assert_eq!(f.end_nodes, 3);
        assert_eq!(f.doc_ids, 3);
        // all three sequences have length 3 (P, P.x, P.x.y) except <p><b/>
        assert_eq!(f.seq_len_counts, vec![0, 0, 1, 2]);
        assert_eq!(f.mean_seq_len(), Some(8.0 / 3.0));
        // no repeated same-path nesting in this corpus
        assert_eq!(f.sibling_cover_nodes, 0);
        // delta is empty
        assert_eq!(stats.delta.nodes, 0);
        assert_eq!(stats.tombstones, 0);
        let text = stats.render();
        assert!(text.contains("frozen: 5 nodes"), "{text}");
        assert!(text.contains("depth histogram: 1:1 2:2 3:2"), "{text}");
    }

    #[test]
    fn range_widths_cover_every_node_once() {
        let (index, _) = build(&["<p><a><x/></a></p>", "<p><a><y/></a></p>", "<q><z/></q>"]);
        let stats = index_stats(&index);
        let total: u64 = stats.frozen.range_width_buckets.iter().sum();
        assert_eq!(total as usize, stats.frozen.nodes);
    }

    #[test]
    fn delta_and_tombstones_show_up() {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs: Vec<_> = ["<p><a/></p>", "<p><b/></p>"]
            .iter()
            .map(|x| parse_document(x, &mut st).expect("fixture parses"))
            .collect();
        let mut pt = PathTable::new();
        let mut index =
            XmlIndex::build(&docs, &mut pt, Strategy::DepthFirst, PlanOptions::default());
        let extra = parse_document("<p><c/></p>", &mut st).expect("fixture parses");
        index.insert_delta(&extra, 2, &mut pt);
        index.remove_doc(0);
        let stats = index_stats(&index);
        assert_eq!(stats.delta.sequences, 1);
        assert_eq!(stats.delta.nodes, 2, "P shared prefix plus P.C");
        assert_eq!(stats.tombstones, 1);
        let text = stats.render();
        assert!(text.contains("tombstones 1"), "{text}");
    }

    #[test]
    fn merged_stats_sum_the_shards() {
        let (a, _) = build(&["<p><a><x/></a></p>", "<p><b/></p>"]);
        let (b, _) = build(&["<q><z/></q>"]);
        let mut merged = index_stats(&a);
        let sb = index_stats(&b);
        merged.merge(&sb);
        let sa = index_stats(&a);
        assert_eq!(merged.frozen.nodes, sa.frozen.nodes + sb.frozen.nodes);
        assert_eq!(
            merged.frozen.sequences,
            sa.frozen.sequences + sb.frozen.sequences
        );
        assert_eq!(merged.frozen.doc_ids, sa.frozen.doc_ids + sb.frozen.doc_ids);
        assert_eq!(
            merged.frozen.max_depth,
            sa.frozen.max_depth.max(sb.frozen.max_depth)
        );
        assert_eq!(merged.data_paths, sa.data_paths + sb.data_paths);
        // distribution vectors add element-wise
        let total: u64 = merged.frozen.depth_counts.iter().sum();
        let ta: u64 = sa.frozen.depth_counts.iter().sum();
        let tb: u64 = sb.frozen.depth_counts.iter().sum();
        assert_eq!(total, ta + tb);
        assert_eq!(merged.strategy, sa.strategy);
    }

    #[test]
    fn sibling_cover_nodes_match_embeds() {
        // Identical siblings sequence as ⟨P, PL, PL⟩: a trie chain where the
        // outer PL node's range embeds the identical inner PL node.
        let (index, _) = build(&["<p><l/><l/></p>"]);
        let stats = index_stats(&index);
        assert!(stats.frozen.sibling_cover_nodes >= 1);
    }
}
