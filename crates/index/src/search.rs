//! Constraint subsequence matching (Section 4.2, Algorithm 1).
//!
//! Matching walks the query sequence element by element; for element `i` the
//! candidates are the entries of its horizontal path link whose serial lies
//! in `(v⊢, v⊣]` for the previously matched node `v` (binary search — the
//! links are in ascending serial order).  Matched nodes therefore lie on a
//! single root-to-leaf trie path, with nested label ranges.
//!
//! **Naïve** matching stops there and suffers the Figure 4 false alarms.
//! **Constraint** matching additionally enforces criterion 2 of
//! Definition 3: for each query element, the matched node's *closest
//! same-path trie ancestor* for its query-tree parent path must be exactly
//! the node matched for that parent — the "not sibling-covered" condition of
//! Definition 4/Theorem 3 (in a trie merged across documents, same-path
//! nodes inside a range may sit on disjoint branches, so the ancestor walk
//! is the faithful generalization of the consecutive-link-entry check).
//! Following Algorithm 1's `ins` set, the check is only evaluated when the
//! anchor node *embeds identical siblings*; otherwise it holds vacuously.

use crate::delta::Tombstones;
use crate::trie::{TrieNodeId, TrieView, NIL};
use std::collections::HashMap;
use xseq_sequence::{sequence_nodes, sequence_nodes_readonly, Sequence, Strategy};
use xseq_xml::{DocId, Document, PathId, PathTable};

/// Drops tombstoned document ids from a result list — the *− tombstones*
/// step of the update model's *frozen ∪ delta − tombstones* query semantics
/// (see [`delta`](crate::delta)).
///
/// Runs once per query, after the per-segment results have been unioned,
/// sorted and deduplicated, so the matcher inner loops never look at the
/// tombstone set.  Filtering only ever removes ids the caller deleted, so
/// Theorem 2's no-false-alarm guarantee is preserved and no false
/// dismissals are introduced.
pub fn filter_tombstones(docs: &mut Vec<DocId>, tombstones: &Tombstones) {
    if tombstones.is_empty() || docs.is_empty() {
        return;
    }
    docs.retain(|d| !tombstones.contains(*d));
}

/// A query sequence with its tree-parent structure: `parent_pos[i]` is the
/// sequence position of element `i`'s parent in the query tree (`None` for
/// the query root).
#[derive(Debug, Clone)]
pub struct QuerySequence {
    /// Path encodings in match order.
    pub paths: Vec<PathId>,
    /// Position of each element's query-tree parent.
    pub parent_pos: Vec<Option<u32>>,
}

impl QuerySequence {
    /// Sequences a concrete query tree with the index's strategy and records
    /// the parent positions.
    pub fn from_document(doc: &Document, paths: &mut PathTable, strategy: &Strategy) -> Self {
        let (seq, nodes) = sequence_nodes(doc, paths, strategy);
        let pos_of: HashMap<u32, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();
        let parent_pos = nodes
            .iter()
            // PANIC-FREE: sequencing emits every node, so a parent of an
            // emitted node is itself a key of pos_of
            .map(|&n| doc.parent(n).map(|p| pos_of[&p]))
            .collect();
        QuerySequence {
            paths: seq.0,
            parent_pos,
        }
    }

    /// [`QuerySequence::from_document`] against a **frozen** path table:
    /// nothing is interned, so it takes `&PathTable` and can run from many
    /// query threads at once.  Returns `None` when some query node's path
    /// is absent from the table — no indexed document contains that path,
    /// so this concrete query tree provably matches nothing.
    pub fn from_document_readonly(
        doc: &Document,
        paths: &PathTable,
        strategy: &Strategy,
    ) -> Option<Self> {
        let (seq, nodes) = sequence_nodes_readonly(doc, paths, strategy)?;
        let pos_of: HashMap<u32, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();
        let parent_pos = nodes
            .iter()
            // PANIC-FREE: sequencing emits every node, so a parent of an
            // emitted node is itself a key of pos_of
            .map(|&n| doc.parent(n).map(|p| pos_of[&p]))
            .collect();
        Some(QuerySequence {
            paths: seq.0,
            parent_pos,
        })
    }

    /// A raw sequence where each element's parent is its path-parent's most
    /// recent earlier occurrence — correct for sequences of full documents
    /// where ancestors precede descendants (used by tests and the ViST
    /// baseline, whose query sequences are depth-first).
    pub fn from_sequence(seq: &Sequence, paths: &PathTable) -> Self {
        let mut last: HashMap<PathId, u32> = HashMap::new();
        let mut parent_pos = Vec::with_capacity(seq.len());
        for (i, &p) in seq.elems().iter().enumerate() {
            let t = paths.parent(p);
            parent_pos.push(if t == PathId::ROOT {
                None
            } else {
                last.get(&t).copied()
            });
            last.insert(p, i as u32);
        }
        QuerySequence {
            paths: seq.elems().to_vec(),
            parent_pos,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True for the empty query.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Counters describing one search's work, for the performance experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidate link entries examined.
    pub candidates: u64,
    /// Candidates rejected by the sibling-cover (constraint) check.
    pub cover_rejections: u64,
    /// Match completions (alignments reaching the end of the query).
    pub completions: u64,
    /// Path-link binary searches performed (`link_lower_bound` calls).
    pub link_probes: u64,
    /// Buffer allocations avoided because a warm [`SearchScratch`] supplied
    /// already-sized result/alignment vectors.
    pub scratch_reuses: u64,
}

/// Reusable per-query buffers for the matchers: the result accumulator and
/// the alignment stacks.  One search leaves its sorted, deduplicated
/// result in [`SearchScratch::docs`]; passing the same scratch to the next
/// search reuses the capacity instead of allocating (counted in
/// [`SearchStats::scratch_reuses`]).
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Result accumulator; after a search: sorted, deduplicated doc ids.
    pub docs: Vec<DocId>,
    matched: Vec<TrieNodeId>,
    used: Vec<TrieNodeId>,
}

impl SearchScratch {
    /// A fresh (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the buffers (keeping capacity) and counts how many arrive
    /// warm — allocations the reuse saves.
    fn begin(&mut self) -> u64 {
        let warm = [
            self.docs.capacity() > 0,
            self.matched.capacity() > 0,
            self.used.capacity() > 0,
        ]
        .iter()
        .filter(|&&w| w)
        .count() as u64;
        self.docs.clear();
        self.matched.clear();
        self.used.clear();
        warm
    }
}

/// Runs constraint subsequence matching (Algorithm 1): returns the ids of
/// the documents containing the query structure, deduplicated and sorted.
pub fn constraint_search<V: TrieView + ?Sized>(
    trie: &V,
    q: &QuerySequence,
) -> (Vec<DocId>, SearchStats) {
    let mut scratch = SearchScratch::new();
    let stats = search_with(trie, q, true, &mut scratch);
    (std::mem::take(&mut scratch.docs), stats)
}

/// [`constraint_search`] into a caller-provided scratch; the sorted,
/// deduplicated result is left in `scratch.docs`.
pub fn constraint_search_with<V: TrieView + ?Sized>(
    trie: &V,
    q: &QuerySequence,
    scratch: &mut SearchScratch,
) -> SearchStats {
    search_with(trie, q, true, scratch)
}

/// Naïve subsequence matching (ViST-style): no constraint check, so the
/// result may contain false alarms when identical sibling nodes exist.
pub fn naive_search<V: TrieView + ?Sized>(
    trie: &V,
    q: &QuerySequence,
) -> (Vec<DocId>, SearchStats) {
    let mut scratch = SearchScratch::new();
    let stats = search_with(trie, q, false, &mut scratch);
    (std::mem::take(&mut scratch.docs), stats)
}

/// [`naive_search`] into a caller-provided scratch; the result is left in
/// `scratch.docs`.
pub fn naive_search_with<V: TrieView + ?Sized>(
    trie: &V,
    q: &QuerySequence,
    scratch: &mut SearchScratch,
) -> SearchStats {
    search_with(trie, q, false, scratch)
}

/// Order-free constraint matching.
///
/// Algorithm 1 aligns the query sequence left to right, which is complete
/// only when the sequencing strategy orders any two distinct paths the same
/// way in every document and query.  The probability strategy does *not*
/// guarantee that: Algorithm 2 emits an identical-sibling subtree
/// contiguously, so where a low-priority node lands relative to unrelated
/// paths depends on subtree content, and a structurally-present query can
/// fail to align (a false dismissal the paper's isomorphism expansion does
/// not cover).
///
/// The fix follows from the proof of Theorem 3 itself: a document matches
/// iff the query elements can be assigned — *in any order* — to distinct
/// trie nodes that (a) lie on one root-to-leaf chain reaching the document,
/// (b) carry the right paths, and (c) have, for each query-tree edge
/// `a → b`, the closest same-path trie ancestor of `m(b)` for `a`'s path
/// equal to `m(a)` (the not-sibling-covered condition).  Any valid
/// constraint sequence of a containing document admits such an assignment
/// regardless of emission order, so this search is complete for every valid
/// strategy and needs no isomorphic query expansion at all.
pub fn tree_search<V: TrieView + ?Sized>(trie: &V, q: &QuerySequence) -> (Vec<DocId>, SearchStats) {
    let mut scratch = SearchScratch::new();
    let stats = tree_search_with(trie, q, &mut scratch);
    (std::mem::take(&mut scratch.docs), stats)
}

/// [`tree_search`] into a caller-provided scratch: the sorted, deduplicated
/// result is left in `scratch.docs`, and warm buffers are reused instead of
/// allocated (counted in [`SearchStats::scratch_reuses`]).
pub fn tree_search_with<V: TrieView + ?Sized>(
    trie: &V,
    q: &QuerySequence,
    scratch: &mut SearchScratch,
) -> SearchStats {
    let mut stats = SearchStats {
        scratch_reuses: scratch.begin(),
        ..Default::default()
    };
    if q.is_empty() {
        return stats;
    }
    // Because the search is order-free, we are free to process the most
    // *selective* elements first (shortest path links), subject only to
    // parents-before-children — exactly the paper's "Impact 2": highly
    // selective elements early shrink the search space.
    let n = q.len();
    let lens: Vec<usize> = q.paths.iter().map(|&p| trie.link_len(p)).collect();
    if lens.contains(&0) {
        return stats; // some required path never occurs in the data
    }
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for e in 0..n {
            if placed[e] {
                continue;
            }
            let ready = match q.parent_pos[e] {
                None => true,
                Some(pp) => placed[pp as usize],
            };
            if ready && best.is_none_or(|b| lens[e] < lens[b]) {
                best = Some(e);
            }
        }
        let Some(e) = best else {
            // Unreachable: parent_pos forms a forest, so an unplaced
            // element whose parent is placed (or absent) always exists.
            // Degrade to an empty result rather than panic on the query
            // path.
            debug_assert!(false, "query element order is not a forest");
            return stats;
        };
        placed[e] = true;
        order.push(e);
    }

    let SearchScratch {
        docs,
        matched,
        used,
    } = scratch;
    matched.resize(n, NIL);
    used.reserve(n);
    tree_go(
        trie,
        q,
        &order,
        0,
        trie.root(),
        matched,
        used,
        docs,
        &mut stats,
    );
    docs.sort_unstable();
    docs.dedup();
    stats
}

/// One step of the order-free search: processing slot `k` selects element
/// `order[k]` (the order puts parents first and selective elements early);
/// `tip` is the deepest matched trie node.
#[allow(clippy::too_many_arguments)]
fn tree_go<V: TrieView + ?Sized>(
    trie: &V,
    q: &QuerySequence,
    order: &[usize],
    k: usize,
    tip: TrieNodeId,
    matched: &mut Vec<TrieNodeId>,
    used: &mut Vec<TrieNodeId>,
    out: &mut Vec<DocId>,
    stats: &mut SearchStats,
) {
    if k == order.len() {
        stats.completions += 1;
        let (ts, tm) = trie.label(tip);
        trie.collect_docs_in_range(ts, tm, out);
        return;
    }
    let i = order[k];
    let path = q.paths[i];
    let (anchor, anchor_path) = match q.parent_pos[i] {
        None => (trie.root(), None),
        Some(pp) => (matched[pp as usize], Some(q.paths[pp as usize])),
    };
    let (anchor_serial, _) = trie.label(anchor);
    let (tip_serial, tip_max) = trie.label(tip);

    // A valid candidate must: carry `path`; be a strict descendant of
    // `anchor`; satisfy the closest-ancestor constraint; be unused; and be
    // chain-comparable with `tip` (an ancestor of it, or a descendant).
    let try_candidate = |r: TrieNodeId,
                         matched: &mut Vec<TrieNodeId>,
                         used: &mut Vec<TrieNodeId>,
                         out: &mut Vec<DocId>,
                         stats: &mut SearchStats| {
        stats.candidates += 1;
        if used.contains(&r) {
            return;
        }
        if let Some(ap) = anchor_path {
            if trie.embeds_identical(anchor)
                && trie.nearest_ancestor_with_path(r, ap) != Some(anchor)
            {
                stats.cover_rejections += 1;
                return;
            }
        }
        let (rs, _) = trie.label(r);
        let new_tip = if rs > tip_serial { r } else { tip };
        matched[i] = r;
        used.push(r);
        tree_go(trie, q, order, k + 1, new_tip, matched, used, out, stats);
        used.pop();
        matched[i] = NIL;
    };

    // (1) candidates below the tip: link range (tip⊢, tip⊣].
    let len = trie.link_len(path);
    stats.link_probes += 1;
    let mut idx = trie.link_lower_bound(path, tip_serial);
    while idx < len {
        let e = trie.link_entry(path, idx);
        if e.serial > tip_max {
            break;
        }
        try_candidate(e.node, matched, used, out, stats);
        idx += 1;
    }
    // (2) candidates on the chain above the tip, strictly below the anchor.
    let mut cur = trie.parent(tip);
    while cur != NIL {
        let (cs, _) = trie.label(cur);
        if cs <= anchor_serial {
            break;
        }
        if trie.path(cur) == path {
            try_candidate(cur, matched, used, out, stats);
        }
        cur = trie.parent(cur);
    }
}

fn search_with<V: TrieView + ?Sized>(
    trie: &V,
    q: &QuerySequence,
    check: bool,
    scratch: &mut SearchScratch,
) -> SearchStats {
    let mut stats = SearchStats {
        scratch_reuses: scratch.begin(),
        ..Default::default()
    };
    if q.is_empty() {
        return stats;
    }
    let (rs, rm) = trie.label(trie.root());
    let SearchScratch { docs, matched, .. } = scratch;
    matched.reserve(q.len());
    go(trie, q, 0, rs, rm, check, matched, docs, &mut stats);
    docs.sort_unstable();
    docs.dedup();
    stats
}

#[allow(clippy::too_many_arguments)]
fn go<V: TrieView + ?Sized>(
    trie: &V,
    q: &QuerySequence,
    i: usize,
    v_serial: u32,
    v_max: u32,
    check: bool,
    matched: &mut Vec<TrieNodeId>,
    out: &mut Vec<DocId>,
    stats: &mut SearchStats,
) {
    if i == q.len() {
        stats.completions += 1;
        trie.collect_docs_in_range(v_serial, v_max, out);
        return;
    }
    // PANIC-FREE: i < q.len() (checked above), so paths[i] is in bounds
    let path = q.paths[i];
    // candidates: serial ∈ (v⊢, v⊣]
    let len = trie.link_len(path);
    stats.link_probes += 1;
    let mut idx = trie.link_lower_bound(path, v_serial);
    while idx < len {
        let e = trie.link_entry(path, idx);
        if e.serial > v_max {
            break;
        }
        idx += 1;
        stats.candidates += 1;
        if check {
            // PANIC-FREE: i < q.len(); pp < i because parents are emitted
            // before children, and matched holds one entry per element
            // already placed, so both lookups are in bounds
            if let Some(pp) = q.parent_pos[i] {
                // PANIC-FREE: same bound — pp < i <= matched.len()
                let anchor = matched[pp as usize];
                // PANIC-FREE: same bound — pp < i <= len of each table
                if trie.embeds_identical(anchor)
                    && trie.nearest_ancestor_with_path(e.node, q.paths[pp as usize]) != Some(anchor)
                {
                    stats.cover_rejections += 1;
                    continue;
                }
            }
        }
        matched.push(e.node);
        go(
            trie,
            q,
            i + 1,
            e.serial,
            e.max_desc,
            check,
            matched,
            out,
            stats,
        );
        matched.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::SequenceTrie;
    use xseq_xml::{Symbol, SymbolTable, ValueMode};

    struct Fx {
        st: SymbolTable,
        pt: PathTable,
        trie: SequenceTrie,
    }

    impl Fx {
        fn new() -> Self {
            Fx {
                st: SymbolTable::with_value_mode(ValueMode::Intern),
                pt: PathTable::new(),
                trie: SequenceTrie::new(),
            }
        }
        fn p(&mut self, spec: &str) -> PathId {
            let syms: Vec<Symbol> = spec.split('.').map(|s| self.st.elem(s)).collect();
            self.pt.intern(&syms)
        }
        fn seq(&mut self, specs: &[&str]) -> Sequence {
            Sequence(specs.iter().map(|s| self.p(s)).collect())
        }
        fn insert(&mut self, specs: &[&str], doc: DocId) {
            let s = self.seq(specs);
            self.trie.insert(&s, doc);
        }
        fn query(&mut self, specs: &[&str]) -> QuerySequence {
            let s = self.seq(specs);
            QuerySequence::from_sequence(&s, &self.pt)
        }
    }

    #[test]
    fn simple_subsequence_match() {
        let mut fx = Fx::new();
        fx.insert(&["P", "P.R", "P.R.L", "P.D", "P.D.L"], 1);
        fx.insert(&["P", "P.D", "P.D.M"], 2);
        fx.trie.freeze();

        let q = fx.query(&["P", "P.D", "P.D.L"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert_eq!(docs, vec![1]);

        let q = fx.query(&["P", "P.D"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert_eq!(docs, vec![1, 2]);

        let q = fx.query(&["P", "P.X"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert!(docs.is_empty());
    }

    #[test]
    fn figure4_false_alarm_rejected_by_constraint_match() {
        // D = ⟨P, PL, PLS, PL, PLB⟩ (P with L(S) and L(B));
        // Q = ⟨P, PL, PLS, PLB⟩ (P with one L(S, B)).
        // Naïve matching accepts (false alarm); constraint matching must not.
        let mut fx = Fx::new();
        fx.insert(&["P", "P.L", "P.L.S", "P.L", "P.L.B"], 7);
        fx.trie.freeze();

        let q = fx.query(&["P", "P.L", "P.L.S", "P.L.B"]);
        let (naive, _) = naive_search(&fx.trie, &q);
        assert_eq!(naive, vec![7], "naïve matching triggers the false alarm");
        let (constrained, stats) = constraint_search(&fx.trie, &q);
        assert!(constrained.is_empty(), "constraint match rejects it");
        assert!(stats.cover_rejections > 0);
    }

    #[test]
    fn true_match_with_identical_siblings_accepted() {
        // D = P(L(S,B)) — the query structure actually present.
        let mut fx = Fx::new();
        fx.insert(&["P", "P.L", "P.L.S", "P.L.B"], 3);
        // plus a decoy doc with split L's
        fx.insert(&["P", "P.L", "P.L.S", "P.L", "P.L.B"], 4);
        fx.trie.freeze();

        let q = fx.query(&["P", "P.L", "P.L.S", "P.L.B"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert_eq!(docs, vec![3]);
    }

    #[test]
    fn query_with_two_identical_siblings() {
        // Q = P(L(S), L(B)) = ⟨P, PL, PLS, PL, PLB⟩ matches the split doc
        // but not the joint one (which has only one L).
        let mut fx = Fx::new();
        fx.insert(&["P", "P.L", "P.L.S", "P.L.B"], 3);
        fx.insert(&["P", "P.L", "P.L.S", "P.L", "P.L.B"], 4);
        fx.trie.freeze();

        let q = fx.query(&["P", "P.L", "P.L.S", "P.L", "P.L.B"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert_eq!(docs, vec![4]);
    }

    #[test]
    fn result_is_subtree_union() {
        // A query matching an interior node returns every doc whose sequence
        // passes through it.
        let mut fx = Fx::new();
        fx.insert(&["P", "P.A"], 1);
        fx.insert(&["P", "P.A", "P.A.X"], 2);
        fx.insert(&["P", "P.A", "P.A.Y"], 3);
        fx.insert(&["P", "P.B"], 4);
        fx.trie.freeze();
        let q = fx.query(&["P", "P.A"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert_eq!(docs, vec![1, 2, 3]);
    }

    #[test]
    fn gap_alignment_is_explored() {
        // The query's second element may match deeper than the immediately
        // next trie level.
        let mut fx = Fx::new();
        fx.insert(&["P", "P.A", "P.B", "P.C"], 1);
        fx.trie.freeze();
        let q = fx.query(&["P", "P.C"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert_eq!(docs, vec![1]);
    }

    #[test]
    fn naive_equals_constraint_without_identical_siblings() {
        let mut fx = Fx::new();
        fx.insert(&["P", "P.A", "P.A.X", "P.B"], 1);
        fx.insert(&["P", "P.B", "P.B.Y"], 2);
        fx.insert(&["P", "P.A", "P.B"], 3);
        fx.trie.freeze();
        for qspec in [
            vec!["P"],
            vec!["P", "P.A"],
            vec!["P", "P.B"],
            vec!["P", "P.A", "P.B"],
            vec!["P", "P.A", "P.A.X"],
        ] {
            let q = fx.query(&qspec);
            let (a, _) = constraint_search(&fx.trie, &q);
            let (b, _) = naive_search(&fx.trie, &q);
            assert_eq!(a, b, "{qspec:?}");
        }
    }

    #[test]
    fn empty_query_returns_nothing() {
        let mut fx = Fx::new();
        fx.insert(&["P"], 1);
        fx.trie.freeze();
        let q = QuerySequence {
            paths: vec![],
            parent_pos: vec![],
        };
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert!(docs.is_empty());
    }

    #[test]
    fn duplicate_results_are_deduplicated() {
        // Two alignments can reach overlapping ranges; each doc must appear
        // once.
        let mut fx = Fx::new();
        fx.insert(&["P", "P.A", "P.A.X", "P.A", "P.A.X"], 1);
        fx.trie.freeze();
        let q = fx.query(&["P", "P.A"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert_eq!(docs, vec![1]);
    }

    #[test]
    fn deep_nesting_three_identical_levels() {
        // Document with three nested identical-path chains (via three L
        // siblings each repeated): stress the ancestor walk.
        let mut fx = Fx::new();
        fx.insert(&["P", "P.L", "P.L.S", "P.L", "P.L.S", "P.L", "P.L.B"], 1);
        fx.trie.freeze();
        // P(L(S), L(S), L(B)): present.
        let q = fx.query(&["P", "P.L", "P.L.S", "P.L", "P.L.S", "P.L", "P.L.B"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert_eq!(docs, vec![1]);
        // P(L(S, B)): absent.
        let q = fx.query(&["P", "P.L", "P.L.S", "P.L.B"]);
        let (docs, _) = constraint_search(&fx.trie, &q);
        assert!(docs.is_empty());
    }
}

#[cfg(test)]
mod query_sequence_tests {
    use super::*;
    use xseq_sequence::Strategy;
    use xseq_xml::{Document, SymbolTable, ValueMode};

    #[test]
    fn from_document_records_tree_parents() {
        // P(A(X), A(Y)): the two A elements are identical siblings; each
        // child's parent_pos must point at ITS OWN A, not the other one.
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let p = st.elem("P");
        let a = st.elem("A");
        let x = st.elem("X");
        let y = st.elem("Y");
        let mut doc = Document::with_root(p);
        let root = doc.root().unwrap();
        let a1 = doc.child(root, a);
        doc.child(a1, x);
        let a2 = doc.child(root, a);
        doc.child(a2, y);

        let mut paths = PathTable::new();
        let qs = QuerySequence::from_document(&doc, &mut paths, &Strategy::DepthFirst);
        assert_eq!(qs.len(), 5);
        assert_eq!(qs.parent_pos[0], None, "root has no parent");
        // find the X and Y elements and check their parents carry path PA
        for i in 0..qs.len() {
            if let Some(pp) = qs.parent_pos[i] {
                assert!(
                    paths.is_proper_prefix(qs.paths[pp as usize], qs.paths[i]),
                    "parent path must prefix child path"
                );
            }
        }
        // X's parent and Y's parent are DIFFERENT positions
        let pa = {
            let sym_a = st.elem("A");
            let sym_p = st.elem("P");
            paths.lookup(&[sym_p, sym_a]).unwrap()
        };
        let a_positions: Vec<usize> = (0..qs.len()).filter(|&i| qs.paths[i] == pa).collect();
        assert_eq!(a_positions.len(), 2);
        let leaf_parents: Vec<u32> = (0..qs.len())
            .filter(|&i| paths.depth(qs.paths[i]) == 3)
            .map(|i| qs.parent_pos[i].unwrap())
            .collect();
        assert_eq!(leaf_parents.len(), 2);
        assert_ne!(leaf_parents[0], leaf_parents[1], "distinct A instances");
    }

    #[test]
    fn empty_document_gives_empty_query_sequence() {
        let mut paths = PathTable::new();
        let qs = QuerySequence::from_document(&Document::new(), &mut paths, &Strategy::DepthFirst);
        assert!(qs.is_empty());
    }
}
