//! Query planning: from a [`TreePattern`] to concrete query trees.
//!
//! The trie matches *concrete* constraint sequences, so wildcards must be
//! instantiated first — the paper: queries with `*` or `//` become
//! subsequences "once `*` is instantialized to symbol D".  Instantiation
//! enumerates, against the index's *path dictionary* (the set of distinct
//! path encodings of the data, a DataGuide in disguise):
//!
//! 1. **Assignments** — a concrete [`PathId`] per pattern node, consistent
//!    with the axes: `Child` extends the parent path by one matching symbol,
//!    `Descendant` by any matching dictionary descendant.
//! 2. **Merge variants** — a `//` edge materializes a chain of intermediate
//!    nodes; when two sibling chains share a prefix, the data may satisfy
//!    them through one shared instance or through distinct instances.
//!    All instance-sharing choices (set partitions per step, with the rule
//!    that two *pattern* nodes never share an instance) are enumerated, so
//!    the union over variants equals the embedding semantics of the
//!    brute-force matcher.
//!
//! Every enumeration is capped ([`PlanOptions`]); realistic queries produce
//! a handful of variants.

use std::collections::{HashMap, HashSet};
use xseq_xml::{
    Axis, Document, NodeId, PathId, PathTable, PatternLabel, PatternNodeId, Symbol, TreePattern,
};

/// Caps for the query-planning enumerations.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Maximum wildcard assignments per query.
    pub max_assignments: usize,
    /// Maximum merge variants per assignment.
    pub max_merges: usize,
    /// Maximum isomorphic sibling orderings per concrete tree (used by the
    /// caller; carried here so one options struct configures the pipeline).
    pub max_isomorphs: usize,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            max_assignments: 4096,
            max_merges: 256,
            max_isomorphs: 64,
        }
    }
}

impl PlanOptions {
    /// Compact one-line form of the caps, used as the `plan` attribute of a
    /// query trace.
    pub fn describe(&self) -> String {
        format!(
            "assignments<={} merges<={} isomorphs<={}",
            self.max_assignments, self.max_merges, self.max_isomorphs
        )
    }
}

/// Enumerates the concrete query trees of `pattern` against the dictionary
/// (`data_paths` filters the path table down to paths that actually occur in
/// indexed data).  Deduplicated; order deterministic.
pub fn instantiate(
    pattern: &TreePattern,
    paths: &PathTable,
    data_paths: &HashSet<PathId>,
    options: &PlanOptions,
) -> Vec<Document> {
    let mut assignments = Vec::new();
    let mut current = vec![PathId::ROOT; pattern.len()];
    assign(
        pattern,
        paths,
        data_paths,
        pattern.root_id(),
        &mut current,
        &mut assignments,
        options.max_assignments,
    );

    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for asg in &assignments {
        for doc in merge_variants(pattern, paths, asg, options.max_merges) {
            if seen.insert(shape_key(&doc)) {
                out.push(doc);
            }
        }
    }
    out
}

/// Depth-first assignment enumeration over pattern nodes (ids are already in
/// parents-before-children order).
// PANIC-FREE: `current` carries one slot per pattern node, and pattern
// node ids are minted by the pattern builder
fn assign(
    pattern: &TreePattern,
    paths: &PathTable,
    data_paths: &HashSet<PathId>,
    node: PatternNodeId,
    current: &mut Vec<PathId>,
    out: &mut Vec<Vec<PathId>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    let parent_path = match pattern.parent(node) {
        None => PathId::ROOT,
        Some(p) => current[p as usize],
    };
    let label = pattern.label(node);
    let candidates: Vec<PathId> = match pattern.axis(node) {
        Axis::Child => paths
            .children(parent_path)
            .iter()
            .copied()
            .filter(|&c| data_paths.contains(&c) && label_fits(label, paths.last(c)))
            .collect(),
        Axis::Descendant => {
            let mut v: Vec<PathId> = paths
                .descendants(parent_path)
                .into_iter()
                .filter(|&c| data_paths.contains(&c) && label_fits(label, paths.last(c)))
                .collect();
            v.sort();
            v
        }
    };
    for c in candidates {
        current[node as usize] = c;
        // advance to the next pattern node in preorder
        match next_node(pattern, node) {
            None => {
                out.push(current.clone());
                if out.len() >= cap {
                    return;
                }
            }
            Some(next) => assign(pattern, paths, data_paths, next, current, out, cap),
        }
    }
}

/// The next pattern node in id order (ids are preorder-compatible).
fn next_node(pattern: &TreePattern, node: PatternNodeId) -> Option<PatternNodeId> {
    let next = node + 1;
    if (next as usize) < pattern.len() {
        Some(next)
    } else {
        None
    }
}

fn label_fits(label: PatternLabel, last: Option<Symbol>) -> bool {
    let Some(sym) = last else {
        return false;
    };
    match label {
        PatternLabel::Elem(d) => sym.as_elem() == Some(d),
        PatternLabel::AnyElem => sym.is_elem(),
        PatternLabel::Value(v) => sym.as_value() == Some(v),
    }
}

/// One chain of symbols still to materialize, ending at a pattern node.
#[derive(Debug, Clone)]
struct Item {
    /// Remaining symbols from the current anchor down to the pattern node.
    chain: Vec<Symbol>,
    pattern_node: PatternNodeId,
}

/// Work unit: sibling items hanging under one materialized node, all sharing
/// the same first symbol (groups with distinct first symbols never interact,
/// so they become separate units).
#[derive(Debug, Clone)]
struct Unit {
    parent: NodeId,
    items: Vec<Item>,
}

/// Enumerates the instance-sharing variants of one assignment.
// PANIC-FREE: `assignment` carries one path per pattern node; the root
// assignment is non-ε (assign starts below ε), so its chain is non-empty
fn merge_variants(
    pattern: &TreePattern,
    paths: &PathTable,
    assignment: &[PathId],
    cap: usize,
) -> Vec<Document> {
    // The root pattern node's chain from ε.
    let root_path = assignment[pattern.root_id() as usize];
    let root_chain = paths.symbols(root_path);
    debug_assert!(!root_chain.is_empty());

    let mut out = Vec::new();
    // Seed: a document with just the first symbol of the root chain, and one
    // item for the rest (or, if the chain is length 1, the root pattern node
    // is materialized immediately and its children become units).
    let doc = Document::with_root(root_chain[0]);
    let root_node = doc.root().expect("Document::with_root always has a root");
    let mut units = Vec::new();
    if root_chain.len() == 1 {
        let mut acc = HashMap::new();
        collect_child_items(pattern, paths, assignment, pattern.root_id(), &mut acc);
        flush_units(root_node, acc, &mut units);
    } else {
        units.push(Unit {
            parent: root_node,
            items: vec![Item {
                chain: root_chain[1..].to_vec(),
                pattern_node: pattern.root_id(),
            }],
        });
    }
    expand(pattern, paths, assignment, doc, units, &mut out, cap);
    out
}

/// When pattern node `pn` has just been materialized, collect items for its
/// pattern children into `acc`, grouped by the first symbol of their chains.
// PANIC-FREE: assign only pairs a child with a path strictly deeper
// than its parent's, so the chain slice below never starts past the end
fn collect_child_items(
    pattern: &TreePattern,
    paths: &PathTable,
    assignment: &[PathId],
    pn: PatternNodeId,
    acc: &mut HashMap<Symbol, Vec<Item>>,
) {
    let base = assignment[pn as usize];
    let base_depth = paths.depth(base);
    for &c in pattern.children(pn) {
        let target = assignment[c as usize];
        let full = paths.symbols(target);
        let chain: Vec<Symbol> = full[base_depth as usize..].to_vec();
        debug_assert!(!chain.is_empty(), "child path must be deeper than parent");
        acc.entry(chain[0]).or_default().push(Item {
            chain,
            pattern_node: c,
        });
    }
}

/// Converts a symbol-grouped item accumulator into work units under `node`,
/// in deterministic symbol order.  Items sharing a first symbol MUST land in
/// one unit: the partition enumeration below is what decides which of them
/// share an instance of that symbol.
// PANIC-FREE: every key removed below was just collected from the map
fn flush_units(node: NodeId, mut acc: HashMap<Symbol, Vec<Item>>, units: &mut Vec<Unit>) {
    let mut keys: Vec<Symbol> = acc.keys().copied().collect();
    keys.sort();
    for k in keys {
        units.push(Unit {
            parent: node,
            items: acc.remove(&k).expect("key exists"),
        });
    }
}

/// Recursive variant expansion: pop one unit, enumerate the valid set
/// partitions of its items (each block shares one instance of the step
/// symbol; at most one item per block may *end* at this step, because
/// distinct pattern nodes are distinct instances), and recurse.
// PANIC-FREE: units hold non-empty item lists with non-empty chains
// (flush_units groups by first symbol); partition blocks index items;
// ender_count is sized to the item count
fn expand(
    pattern: &TreePattern,
    paths: &PathTable,
    assignment: &[PathId],
    doc: Document,
    mut units: Vec<Unit>,
    out: &mut Vec<Document>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    let Some(unit) = units.pop() else {
        out.push(doc);
        return;
    };
    let sym = unit.items[0].chain[0];
    debug_assert!(unit.items.iter().all(|it| it.chain[0] == sym));

    for partition in partitions(unit.items.len()) {
        // validity: at most one ender per block
        let mut ender_count = vec![0usize; unit.items.len()];
        let mut valid = true;
        for (item_idx, &block) in partition.iter().enumerate() {
            if unit.items[item_idx].chain.len() == 1 {
                ender_count[block] += 1;
                if ender_count[block] > 1 {
                    valid = false;
                    break;
                }
            }
        }
        if !valid {
            continue;
        }

        let mut d2 = doc.clone();
        let mut u2 = units.clone();
        let block_count = partition.iter().max().map(|&b| b + 1).unwrap_or(0);
        for block in 0..block_count {
            let node = d2.child(unit.parent, sym);
            // All items hanging under this instance — the materialized
            // pattern node's children and the continuing chains — share one
            // accumulator so that same-symbol items end up in ONE unit and
            // their instance-sharing gets enumerated too.
            let mut acc: HashMap<Symbol, Vec<Item>> = HashMap::new();
            for (item_idx, &b) in partition.iter().enumerate() {
                if b != block {
                    continue;
                }
                let item = &unit.items[item_idx];
                if item.chain.len() == 1 {
                    // pattern node materialized here
                    collect_child_items(pattern, paths, assignment, item.pattern_node, &mut acc);
                } else {
                    let rest = item.chain[1..].to_vec();
                    acc.entry(rest[0]).or_default().push(Item {
                        chain: rest,
                        pattern_node: item.pattern_node,
                    });
                }
            }
            flush_units(node, acc, &mut u2);
        }
        expand(pattern, paths, assignment, d2, u2, out, cap);
        if out.len() >= cap {
            return;
        }
    }
}

/// All set partitions of `n` items, as block indices per item (block ids are
/// in order of first appearance, so the enumeration has no duplicates).
fn partitions(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = vec![0usize; n];
    // PANIC-FREE: rec is only called with i <= n == current.len()
    fn rec(
        i: usize,
        n: usize,
        max_block: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if i == n {
            out.push(current.clone());
            return;
        }
        for b in 0..=max_block {
            current[i] = b;
            rec(i + 1, n, max_block.max(b + 1), current, out);
        }
    }
    rec(0, n, 0, &mut current, &mut out);
    out
}

/// Order-sensitive shape key for deduplication.
fn shape_key(doc: &Document) -> Vec<u32> {
    let mut out = Vec::with_capacity(doc.len() * 2);
    let Some(root) = doc.root() else {
        return out;
    };
    fn rec(doc: &Document, n: NodeId, out: &mut Vec<u32>) {
        out.push(doc.sym(n).raw());
        out.push(u32::MAX); // open
        for &c in doc.children(n) {
            rec(doc, c, out);
        }
        out.push(u32::MAX - 1); // close
    }
    rec(doc, root, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::SymbolTable;

    struct Fx {
        st: SymbolTable,
        pt: PathTable,
        data: HashSet<PathId>,
    }

    impl Fx {
        fn new() -> Self {
            Fx {
                st: SymbolTable::default(),
                pt: PathTable::new(),
                data: HashSet::new(),
            }
        }
        /// Registers a data path like "a.b.c" (values prefixed with ').
        fn add(&mut self, spec: &str) {
            let syms: Vec<Symbol> = spec
                .split('.')
                .map(|p| {
                    if let Some(v) = p.strip_prefix('\'') {
                        self.st.val(v)
                    } else {
                        self.st.elem(p)
                    }
                })
                .collect();
            // register all prefixes, as real data would
            for i in 1..=syms.len() {
                let id = self.pt.intern(&syms[..i]);
                self.data.insert(id);
            }
        }
        fn d(&mut self, name: &str) -> xseq_xml::Designator {
            self.st.designator(name)
        }
    }

    fn render_all(docs: &[Document], st: &SymbolTable) -> Vec<String> {
        let mut v: Vec<String> = docs
            .iter()
            .map(|d| xseq_xml::write_document(d, st))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn exact_pattern_single_instantiation() {
        let mut fx = Fx::new();
        fx.add("a.b.c");
        let a = fx.d("a");
        let b = fx.d("b");
        let mut q = TreePattern::root(PatternLabel::Elem(a));
        q.add(q.root_id(), Axis::Child, PatternLabel::Elem(b));
        let docs = instantiate(&q, &fx.pt, &fx.data, &PlanOptions::default());
        assert_eq!(render_all(&docs, &fx.st), vec!["<a><b/></a>"]);
    }

    #[test]
    fn missing_path_yields_no_instantiation() {
        let mut fx = Fx::new();
        fx.add("a.b");
        let a = fx.d("a");
        let z = fx.d("z");
        let mut q = TreePattern::root(PatternLabel::Elem(a));
        q.add(q.root_id(), Axis::Child, PatternLabel::Elem(z));
        let docs = instantiate(&q, &fx.pt, &fx.data, &PlanOptions::default());
        assert!(docs.is_empty());
    }

    #[test]
    fn star_wildcard_instantiates_each_element() {
        // /a/*/c over data paths a.b.c and a.d.c and a.'v.c(!) — the value
        // step must not instantiate '*'.
        let mut fx = Fx::new();
        fx.add("a.b.c");
        fx.add("a.d.c");
        fx.add("a.'v");
        let a = fx.d("a");
        let c = fx.d("c");
        let mut q = TreePattern::root(PatternLabel::Elem(a));
        let star = q.add(q.root_id(), Axis::Child, PatternLabel::AnyElem);
        q.add(star, Axis::Child, PatternLabel::Elem(c));
        let docs = instantiate(&q, &fx.pt, &fx.data, &PlanOptions::default());
        assert_eq!(
            render_all(&docs, &fx.st),
            vec!["<a><b><c/></b></a>", "<a><d><c/></d></a>"]
        );
    }

    #[test]
    fn descendant_axis_materializes_intermediates() {
        // //c over data a.b.c: instantiation builds the full chain a(b(c)).
        let mut fx = Fx::new();
        fx.add("a.b.c");
        let c = fx.d("c");
        let q = TreePattern::with_root_axis(PatternLabel::Elem(c), Axis::Descendant);
        let docs = instantiate(&q, &fx.pt, &fx.data, &PlanOptions::default());
        assert_eq!(render_all(&docs, &fx.st), vec!["<a><b><c/></b></a>"]);
    }

    #[test]
    fn descendant_branches_enumerate_shared_and_split() {
        // a[.//x][.//y] with both x and y reachable through b:
        // merged a(b(x,y)) and split a(b(x), b(y)) variants must both exist.
        let mut fx = Fx::new();
        fx.add("a.b.x");
        fx.add("a.b.y");
        let a = fx.d("a");
        let x = fx.d("x");
        let y = fx.d("y");
        let mut q = TreePattern::root(PatternLabel::Elem(a));
        q.add(q.root_id(), Axis::Descendant, PatternLabel::Elem(x));
        q.add(q.root_id(), Axis::Descendant, PatternLabel::Elem(y));
        let docs = instantiate(&q, &fx.pt, &fx.data, &PlanOptions::default());
        assert_eq!(docs.len(), 2, "merged and split variants");
        let merged = xseq_xml::parse_document("<a><b><x/><y/></b></a>", &mut fx.st).unwrap();
        let split = xseq_xml::parse_document("<a><b><x/></b><b><y/></b></a>", &mut fx.st).unwrap();
        assert!(docs.iter().any(|d| d.structurally_eq(&merged)));
        assert!(docs.iter().any(|d| d.structurally_eq(&split)));
    }

    #[test]
    fn identical_pattern_nodes_never_merge() {
        // a with two identical child tests b: both instances required.
        let mut fx = Fx::new();
        fx.add("a.b");
        let a = fx.d("a");
        let b = fx.d("b");
        let mut q = TreePattern::root(PatternLabel::Elem(a));
        q.add(q.root_id(), Axis::Child, PatternLabel::Elem(b));
        q.add(q.root_id(), Axis::Child, PatternLabel::Elem(b));
        let docs = instantiate(&q, &fx.pt, &fx.data, &PlanOptions::default());
        assert_eq!(render_all(&docs, &fx.st), vec!["<a><b/><b/></a>"]);
    }

    #[test]
    fn value_tests_instantiate() {
        let mut fx = Fx::new();
        fx.add("a.l.'boston");
        let a = fx.d("a");
        let l = fx.d("l");
        let v = fx.st.values.lookup("boston").unwrap();
        let mut q = TreePattern::root(PatternLabel::Elem(a));
        let ln = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(l));
        q.add(ln, Axis::Child, PatternLabel::Value(v));
        let docs = instantiate(&q, &fx.pt, &fx.data, &PlanOptions::default());
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].len(), 3);
    }

    #[test]
    fn caps_are_respected() {
        let mut fx = Fx::new();
        for i in 0..20 {
            fx.add(&format!("a.m{i}.x"));
        }
        let x = fx.d("x");
        let q = TreePattern::with_root_axis(PatternLabel::Elem(x), Axis::Descendant);
        let opts = PlanOptions {
            max_assignments: 5,
            ..Default::default()
        };
        let docs = instantiate(&q, &fx.pt, &fx.data, &opts);
        assert_eq!(docs.len(), 5);
    }

    #[test]
    fn partitions_count_is_bell_number() {
        assert_eq!(partitions(1).len(), 1);
        assert_eq!(partitions(2).len(), 2);
        assert_eq!(partitions(3).len(), 5);
        assert_eq!(partitions(4).len(), 15);
    }
}
