//! Registry wiring for the index's phases and work counters.
//!
//! [`XmlIndex`](crate::XmlIndex) accumulates per-query work in plain local
//! variables on the stack and flushes it here **once per query**, so the
//! paper's inner loops (candidate inspection, the ancestor walk) stay free
//! of atomic traffic and the instrumentation overhead is a handful of
//! atomic adds per query.

use crate::QueryStats;
use std::sync::Arc;
use xseq_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// Arc'd handles to the index-side metrics of a [`MetricsRegistry`].
#[derive(Debug, Clone)]
pub struct IndexTelemetry {
    /// `index.plan` — wildcard instantiation latency per query (ns).
    pub plan: Arc<Histogram>,
    /// `sequence.encode` — tree-to-sequence encoding latency (ns): one
    /// sample per document at build time, one aggregate sample per query.
    pub encode: Arc<Histogram>,
    /// `index.search` — matching latency per query (ns), all variants.
    pub search: Arc<Histogram>,
    /// `index.plan.instantiations` — concrete query trees produced.
    pub instantiations: Arc<Counter>,
    /// `index.search.variants` — sequence variants searched.
    pub variants: Arc<Counter>,
    /// `index.search.candidates` — candidate link entries examined.
    pub candidates: Arc<Counter>,
    /// `index.search.cover_rejections` — candidates rejected by the
    /// sibling-cover (constraint) check.
    pub cover_rejections: Arc<Counter>,
    /// `index.search.completions` — alignments reaching the query's end.
    pub completions: Arc<Counter>,
    /// `index.search.link_probes` — path-link binary searches performed.
    pub link_probes: Arc<Counter>,
    /// `index.delta.sequences` — sequences currently in the tiered update
    /// overlay, all segments (0 when compacted).
    pub delta_sequences: Arc<Gauge>,
    /// `index.delta.runs` — frozen runs currently published by the overlay
    /// (the memtable excluded; background merges keep this logarithmic).
    pub delta_runs: Arc<Gauge>,
    /// `index.tombstones` — document ids currently tombstoned
    /// (0 when compacted).
    pub tombstones: Arc<Gauge>,
}

impl IndexTelemetry {
    /// Gets-or-registers every index metric in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        IndexTelemetry {
            plan: registry.histogram("index.plan"),
            encode: registry.histogram("sequence.encode"),
            search: registry.histogram("index.search"),
            instantiations: registry.counter("index.plan.instantiations"),
            variants: registry.counter("index.search.variants"),
            candidates: registry.counter("index.search.candidates"),
            cover_rejections: registry.counter("index.search.cover_rejections"),
            completions: registry.counter("index.search.completions"),
            link_probes: registry.counter("index.search.link_probes"),
            delta_sequences: registry.gauge("index.delta.sequences"),
            delta_runs: registry.gauge("index.delta.runs"),
            tombstones: registry.gauge("index.tombstones"),
        }
    }

    /// [`IndexTelemetry::register`] for shard `s` of an `n`-shard database.
    ///
    /// Phase histograms and work counters keep their shared names — they
    /// are additive, so concurrent shards summing into one family is the
    /// correct aggregate — but the occupancy **gauges** move to per-shard
    /// names (`index.shard3.delta.sequences`, `index.shard3.tombstones`):
    /// gauges are `set`, and shards setting one shared gauge would clobber
    /// each other.  The database maintains the aggregate gauges itself.
    /// With `n <= 1` this is exactly [`IndexTelemetry::register`].
    pub fn register_shard(registry: &MetricsRegistry, s: usize, n: usize) -> Self {
        let mut tel = Self::register(registry);
        if n > 1 {
            tel.delta_sequences = registry.gauge(&format!("index.shard{s}.delta.sequences"));
            tel.delta_runs = registry.gauge(&format!("index.shard{s}.delta.runs"));
            tel.tombstones = registry.gauge(&format!("index.shard{s}.tombstones"));
        }
        tel
    }

    /// Flushes one query's accumulated stats into the registry handles.
    pub fn observe(&self, st: &QueryStats) {
        self.plan.record(st.plan_ns);
        self.encode.record(st.encode_ns);
        self.search.record(st.search_ns);
        self.instantiations.add(st.instantiations);
        self.variants.add(st.variants);
        self.candidates.add(st.search.candidates);
        self.cover_rejections.add(st.search.cover_rejections);
        self.completions.add(st.search.completions);
        self.link_probes.add(st.search.link_probes);
    }
}
