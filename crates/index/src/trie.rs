//! The trie-like index structure (Section 4.1).
//!
//! Index construction takes the paper's three steps:
//!
//! 1. **Sequence insertion** — every document's constraint sequence is
//!    inserted into a trie; the document id is appended to the id list of
//!    the node where the insertion ends (Figure 7).
//! 2. **Tree labeling** — each node `n` gets `(n⊢, n⊣)`: its preorder serial
//!    number and the largest serial among its descendants, so `x` is a
//!    descendant of `y` iff `x⊢ ∈ (y⊢, y⊣]` (Figure 8).
//! 3. **Path linking** — a horizontal link per distinct path collects the
//!    labels of all trie nodes carrying that path encoding, in ascending
//!    serial order, ready for binary search (Figure 9).
//!
//! Steps 2–3 are performed by [`SequenceTrie::freeze`]; insertions after a
//! freeze simply invalidate the labels, and the next freeze relabels
//! (incremental maintenance of preorder labels is orthogonal to the paper).

use std::collections::HashMap;
use xseq_sequence::Sequence;
use xseq_telemetry::{hash_table_alloc_bytes, HeapSize};
use xseq_xml::{DocId, PathId};

/// Index of a node within the trie arena.
pub type TrieNodeId = u32;

/// Sentinel for "no node".
pub const NIL: TrieNodeId = u32::MAX;

#[derive(Debug, Clone, PartialEq, Eq)]
struct TrieNode {
    path: PathId,
    parent: TrieNodeId,
    first_child: TrieNodeId,
    next_sibling: TrieNodeId,
}

/// Labeling result for one root-child subtree, produced by a
/// [`SequenceTrie::freeze_parallel`] worker.  All serials are relative to
/// the subtree's own preorder position 0; the merge adds the subtree's
/// global offset.
struct SubFreeze {
    /// Subtree nodes in preorder — node `i` has relative serial `i`.
    nodes: Vec<TrieNodeId>,
    /// Relative `n⊣` per preorder position.
    max_desc_rel: Vec<u32>,
    /// `embeds_identical` per preorder position.
    embeds: Vec<bool>,
    /// Partial link map: path → `(rel_serial, rel_max_desc, node)`,
    /// ascending by relative serial.
    links: HashMap<PathId, Vec<(u32, u32, TrieNodeId)>>,
    /// End nodes as `(rel_serial, node)`, ascending.
    ends: Vec<(u32, TrieNodeId)>,
}

/// One entry of a horizontal path link: the label of a trie node carrying
/// this path, plus the node itself (for constraint checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEntry {
    /// `n⊢` — preorder serial.
    pub serial: u32,
    /// `n⊣` — largest descendant serial.
    pub max_desc: u32,
    /// The trie node.
    pub node: TrieNodeId,
}

/// Labels, links and end-node registry built by [`SequenceTrie::freeze`].
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Frozen {
    /// Per node: preorder serial `n⊢` (root = 0).
    pub serial: Vec<u32>,
    /// Per node: `n⊣`.
    pub max_desc: Vec<u32>,
    /// Per node: does its range contain another node with the same path?
    /// (Nodes that "embed identical siblings" in Algorithm 1's sense.)
    pub embeds_identical: Vec<bool>,
    /// Horizontal path links, ascending by serial.
    pub links: HashMap<PathId, Vec<LinkEntry>>,
    /// Nodes owning document id lists, ascending by serial.
    pub end_nodes: Vec<(u32, TrieNodeId)>,
}

/// Read access to a frozen trie — everything the matching algorithms need.
///
/// Implemented by the in-memory [`SequenceTrie`] and by the paged
/// (disk-layout) trie in `xseq-storage`, so one search implementation serves
/// both and the storage layer's page-touch counters measure the real access
/// pattern of Algorithm 1.
pub trait TrieView {
    /// The virtual root node.
    fn root(&self) -> TrieNodeId;
    /// The label `(n⊢, n⊣)` of a node.
    fn label(&self, n: TrieNodeId) -> (u32, u32);
    /// The path encoding of a node.
    fn path(&self, n: TrieNodeId) -> PathId;
    /// The parent of a node (`NIL` for the virtual root).
    fn parent(&self, n: TrieNodeId) -> TrieNodeId;
    /// Whether the node's range contains another node with the same path.
    fn embeds_identical(&self, n: TrieNodeId) -> bool;
    /// Number of entries in the horizontal link of `path` (0 if absent).
    fn link_len(&self, path: PathId) -> usize;
    /// Entry `idx` of the link of `path` (ascending serial order).
    fn link_entry(&self, path: PathId, idx: usize) -> LinkEntry;
    /// Appends the doc ids of end nodes with serial in `[lo, hi]`.
    fn collect_docs_in_range(&self, lo: u32, hi: u32, out: &mut Vec<DocId>);

    /// Walks up from `n` to the nearest proper ancestor whose path is `t`.
    fn nearest_ancestor_with_path(&self, n: TrieNodeId, t: PathId) -> Option<TrieNodeId> {
        let mut cur = self.parent(n);
        while cur != NIL {
            if self.path(cur) == t {
                return Some(cur);
            }
            cur = self.parent(cur);
        }
        None
    }

    /// First link index of `path` with serial strictly greater than `s`.
    fn link_lower_bound(&self, path: PathId, s: u32) -> usize {
        let mut lo = 0usize;
        let mut hi = self.link_len(path);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.link_entry(path, mid).serial <= s {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// The trie over constraint sequences.
#[derive(Debug)]
pub struct SequenceTrie {
    nodes: Vec<TrieNode>,
    /// Child lookup: (parent, path) → child.
    edges: HashMap<(TrieNodeId, PathId), TrieNodeId>,
    /// Document id lists, keyed by end node (sparse — most nodes have none).
    docs: HashMap<TrieNodeId, Vec<DocId>>,
    frozen: Option<Frozen>,
    seq_count: usize,
}

impl Default for SequenceTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl SequenceTrie {
    /// Creates an empty trie (just the virtual root, which carries the empty
    /// path and range `[0, ∞)` until frozen).
    pub fn new() -> Self {
        SequenceTrie {
            nodes: vec![TrieNode {
                path: PathId::ROOT,
                parent: NIL,
                first_child: NIL,
                next_sibling: NIL,
            }],
            edges: HashMap::new(),
            docs: HashMap::new(),
            frozen: None,
            seq_count: 0,
        }
    }

    /// The virtual root node.
    pub fn root(&self) -> TrieNodeId {
        0
    }

    /// Number of real trie nodes (excluding the virtual root) — the metric
    /// of Figure 14 and Tables 5/6.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of inserted sequences (documents).
    pub fn sequence_count(&self) -> usize {
        self.seq_count
    }

    /// The path encoding of a node.
    // PANIC-FREE: TrieNodeIds are only minted by this arena's insert
    #[inline]
    pub fn path(&self, n: TrieNodeId) -> PathId {
        self.nodes[n as usize].path
    }

    /// The parent of a node (`NIL` for the virtual root).
    // PANIC-FREE: arena-minted TrieNodeId contract (see `path`)
    #[inline]
    pub fn parent(&self, n: TrieNodeId) -> TrieNodeId {
        self.nodes[n as usize].parent
    }

    /// Document ids whose sequences end at `n`.
    pub fn docs_at(&self, n: TrieNodeId) -> &[DocId] {
        self.docs.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The first child of a node in the arena's sibling chain (`NIL` when
    /// the node is a leaf) — traversal primitive for the verifier.
    // PANIC-FREE: arena-minted TrieNodeId contract (see `path`)
    #[inline]
    pub(crate) fn first_child(&self, n: TrieNodeId) -> TrieNodeId {
        self.nodes[n as usize].first_child
    }

    /// The next sibling of a node in the arena's sibling chain.
    // PANIC-FREE: arena-minted TrieNodeId contract (see `path`)
    #[inline]
    pub(crate) fn next_sibling(&self, n: TrieNodeId) -> TrieNodeId {
        self.nodes[n as usize].next_sibling
    }

    /// Arena size including the virtual root.
    #[inline]
    pub(crate) fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Every end node with its document id list (arbitrary order).
    pub(crate) fn doc_lists(&self) -> impl Iterator<Item = (TrieNodeId, &[DocId])> {
        self.docs.iter().map(|(&n, v)| (n, v.as_slice()))
    }

    /// Test-support corruption hook: mutable access to the frozen labels,
    /// links and end-node registry, *without* invalidating the freeze.
    ///
    /// Exists so the mutation tests of `verify` can seed deliberate
    /// corruptions (swapped link serials, widened ranges) and assert the
    /// verifier reports them.  Never call this from production code.
    #[doc(hidden)]
    pub fn corrupt_frozen(&mut self) -> Option<&mut Frozen> {
        self.frozen.as_mut()
    }

    /// Test-support corruption hook: rewrites the path encoding of one trie
    /// node — the stored-sequence equivalent of flipping a designator —
    /// *without* invalidating the freeze or the edge map.
    #[doc(hidden)]
    pub fn corrupt_set_path(&mut self, n: TrieNodeId, p: PathId) {
        self.nodes[n as usize].path = p;
    }

    /// Inserts a document's constraint sequence (Figure 7).
    ///
    /// Invalidates any previous freeze.
    pub fn insert(&mut self, seq: &Sequence, doc: DocId) {
        self.frozen = None;
        let mut cur = self.root();
        for &p in seq.elems() {
            cur = match self.edges.get(&(cur, p)) {
                Some(&c) => c,
                None => {
                    let id = self.nodes.len() as TrieNodeId;
                    // PANIC-FREE: cur is always an existing arena id
                    let first = self.nodes[cur as usize].first_child;
                    self.nodes.push(TrieNode {
                        path: p,
                        parent: cur,
                        first_child: NIL,
                        next_sibling: first,
                    });
                    // PANIC-FREE: cur is always an existing arena id
                    self.nodes[cur as usize].first_child = id;
                    std::collections::HashMap::insert(&mut self.edges, (cur, p), id);
                    id
                }
            };
        }
        self.docs.entry(cur).or_default().push(doc);
        self.seq_count += 1;
    }

    /// Bulk load: sorts the sequences first ("if we are indexing static
    /// data ... we can 'bulk load' the index by sorting the sequences first
    /// to improve performance") and inserts them in order, which maximizes
    /// locality of the shared-prefix walk.
    pub fn bulk_load(&mut self, mut seqs: Vec<(Sequence, DocId)>) {
        seqs.sort_by(|a, b| a.0.elems().cmp(b.0.elems()));
        self.bulk_load_presorted(seqs);
    }

    /// [`SequenceTrie::bulk_load`] for sequences already in ascending
    /// element order (equal sequences in ascending document order) — the
    /// parallel build sorts partitions on the worker pool and merges them
    /// before this single-threaded insertion walk, which must stay serial
    /// so the arena layout is deterministic.
    pub fn bulk_load_presorted(&mut self, seqs: Vec<(Sequence, DocId)>) {
        debug_assert!(
            seqs.windows(2).all(|w| w[0].0.elems() <= w[1].0.elems()),
            "bulk_load_presorted requires sequences in ascending order"
        );
        for (seq, doc) in seqs {
            self.insert(&seq, doc);
        }
    }

    /// Labels the trie and builds the path links (Sections 4.1 steps 2–3).
    /// Idempotent; call again after further insertions.
    // PANIC-FREE: serial/max_desc/embeds are sized to the arena and the
    // DFS only visits arena ids; every Exit's path_stack entry was pushed
    // by its own Enter; next_serial counts at most arena_len nodes
    pub fn freeze(&mut self) {
        if self.frozen.is_some() {
            return;
        }
        let n = self.nodes.len();
        let mut serial = vec![0u32; n];
        let mut max_desc = vec![0u32; n];
        let mut embeds = vec![false; n];
        let mut links: HashMap<PathId, Vec<LinkEntry>> = HashMap::new();
        let mut end_nodes: Vec<(u32, TrieNodeId)> = Vec::with_capacity(self.docs.len());

        // Iterative preorder DFS.  `path_stack` tracks, per path, the chain
        // of open (not yet exited) nodes carrying it, to mark
        // `embeds_identical`.
        let mut next_serial = 0u32;
        let mut path_stack: HashMap<PathId, Vec<TrieNodeId>> = HashMap::new();
        // stack of (node, entered?)
        enum Ev {
            Enter(TrieNodeId),
            Exit(TrieNodeId),
        }
        let mut stack = vec![Ev::Enter(self.root())];
        while let Some(ev) = stack.pop() {
            match ev {
                Ev::Enter(node) => {
                    serial[node as usize] = next_serial;
                    next_serial += 1;
                    if node != self.root() {
                        let p = self.nodes[node as usize].path;
                        let open = path_stack.entry(p).or_default();
                        for &anc in open.iter() {
                            embeds[anc as usize] = true;
                        }
                        open.push(node);
                        if self.docs.contains_key(&node) {
                            end_nodes.push((serial[node as usize], node));
                        }
                    }
                    stack.push(Ev::Exit(node));
                    let mut c = self.nodes[node as usize].first_child;
                    while c != NIL {
                        stack.push(Ev::Enter(c));
                        c = self.nodes[c as usize].next_sibling;
                    }
                }
                Ev::Exit(node) => {
                    max_desc[node as usize] = next_serial - 1;
                    if node != self.root() {
                        let p = self.nodes[node as usize].path;
                        path_stack.get_mut(&p).expect("opened on enter").pop();
                    }
                }
            }
        }

        // Path links in ascending serial order: collect then sort (the DFS
        // above visits children in arbitrary sibling order, which is already
        // preorder-consistent, but sorting keeps the invariant explicit and
        // cheap — the vectors are built once).
        for (idx, node) in self.nodes.iter().enumerate().skip(1) {
            links.entry(node.path).or_default().push(LinkEntry {
                serial: serial[idx],
                max_desc: max_desc[idx],
                node: idx as TrieNodeId,
            });
        }
        for link in links.values_mut() {
            link.sort_by_key(|e| e.serial);
        }
        end_nodes.sort_by_key(|&(s, _)| s);

        self.frozen = Some(Frozen {
            serial,
            max_desc,
            embeds_identical: embeds,
            links,
            end_nodes,
        });
    }

    /// [`SequenceTrie::freeze`] with the labeling pass fanned out over a
    /// worker pool, one task per root-child subtree.
    ///
    /// Preorder serials compose: subtree `i` (in sequential DFS visit
    /// order) occupies the serial range `[1 + Σ sizes(0..i), …]`, so each
    /// worker labels its subtree with serials relative to 0 and the merge
    /// adds the offset.  `embeds_identical` chains never cross subtree
    /// boundaries (an open same-path ancestor is always on the root-to-node
    /// path), and per-worker partial link maps merged in subtree order are
    /// already in ascending serial order.  The result is **bit-identical**
    /// to [`SequenceTrie::freeze`] — asserted by tests and relied on by the
    /// parallel database build.
    pub fn freeze_parallel(&mut self, pool: &xseq_exec::Pool) {
        if self.frozen.is_some() {
            return;
        }
        if pool.is_sequential() {
            self.freeze();
            return;
        }
        let n = self.nodes.len();

        // Root children in the order the sequential DFS visits them: the
        // sibling chain is reverse-insertion order and the DFS stack
        // reverses it again.
        let mut tops = Vec::new();
        let mut c = self.nodes[self.root() as usize].first_child;
        while c != NIL {
            tops.push(c);
            c = self.nodes[c as usize].next_sibling;
        }
        tops.reverse();

        let subs: Vec<SubFreeze> = pool.map(&tops, |_, &top| self.freeze_subtree(top));

        let mut serial = vec![0u32; n];
        let mut max_desc = vec![0u32; n];
        let mut embeds = vec![false; n];
        let mut links: HashMap<PathId, Vec<LinkEntry>> = HashMap::new();
        let mut end_nodes: Vec<(u32, TrieNodeId)> = Vec::with_capacity(self.docs.len());

        let mut offset = 1u32; // root takes serial 0
        for sub in subs {
            for (i, &node) in sub.nodes.iter().enumerate() {
                serial[node as usize] = offset + i as u32;
                max_desc[node as usize] = offset + sub.max_desc_rel[i];
                embeds[node as usize] = sub.embeds[i];
            }
            for (path, entries) in sub.links {
                links
                    .entry(path)
                    .or_default()
                    .extend(entries.into_iter().map(|(rel, rel_max, node)| LinkEntry {
                        serial: offset + rel,
                        max_desc: offset + rel_max,
                        node,
                    }));
            }
            end_nodes.extend(sub.ends.into_iter().map(|(rel, node)| (offset + rel, node)));
            offset += sub.nodes.len() as u32;
        }
        let root = self.root() as usize;
        serial[root] = 0;
        max_desc[root] = offset - 1;

        // Partial maps arrive in ascending serial order already; the sort
        // mirrors the sequential freeze and keeps the invariant explicit.
        for link in links.values_mut() {
            link.sort_by_key(|e| e.serial);
        }
        end_nodes.sort_by_key(|&(s, _)| s);

        self.frozen = Some(Frozen {
            serial,
            max_desc,
            embeds_identical: embeds,
            links,
            end_nodes,
        });
    }

    /// Labels one root-child subtree with serials relative to its own
    /// preorder position 0 — the parallel worker body of
    /// [`SequenceTrie::freeze_parallel`].  Mirrors the DFS in
    /// [`SequenceTrie::freeze`] exactly, minus the virtual root.
    fn freeze_subtree(&self, top: TrieNodeId) -> SubFreeze {
        let mut nodes: Vec<TrieNodeId> = Vec::new();
        let mut max_desc_rel: Vec<u32> = Vec::new();
        let mut embeds: Vec<bool> = Vec::new();
        let mut ends: Vec<(u32, TrieNodeId)> = Vec::new();
        // Position of a node within `nodes` (= its relative serial), so the
        // Exit event can write `max_desc_rel` by index.
        let mut pos: HashMap<TrieNodeId, u32> = HashMap::new();
        let mut path_stack: HashMap<PathId, Vec<TrieNodeId>> = HashMap::new();
        enum Ev {
            Enter(TrieNodeId),
            Exit(TrieNodeId),
        }
        let mut stack = vec![Ev::Enter(top)];
        while let Some(ev) = stack.pop() {
            match ev {
                Ev::Enter(node) => {
                    let rel = nodes.len() as u32;
                    pos.insert(node, rel);
                    nodes.push(node);
                    max_desc_rel.push(0);
                    embeds.push(false);
                    let p = self.nodes[node as usize].path;
                    let open = path_stack.entry(p).or_default();
                    for &anc in open.iter() {
                        embeds[pos[&anc] as usize] = true;
                    }
                    open.push(node);
                    if self.docs.contains_key(&node) {
                        ends.push((rel, node));
                    }
                    stack.push(Ev::Exit(node));
                    let mut c = self.nodes[node as usize].first_child;
                    while c != NIL {
                        stack.push(Ev::Enter(c));
                        c = self.nodes[c as usize].next_sibling;
                    }
                }
                Ev::Exit(node) => {
                    max_desc_rel[pos[&node] as usize] = nodes.len() as u32 - 1;
                    let p = self.nodes[node as usize].path;
                    path_stack.get_mut(&p).expect("opened on enter").pop();
                }
            }
        }
        // Partial link map: node `i` of the preorder contributes entry
        // `(i, max_desc_rel[i], node)` to the link of its path, so entries
        // are in ascending relative-serial order per path.
        let mut links: HashMap<PathId, Vec<(u32, u32, TrieNodeId)>> = HashMap::new();
        for (i, &node) in nodes.iter().enumerate() {
            links
                .entry(self.nodes[node as usize].path)
                .or_default()
                .push((i as u32, max_desc_rel[i], node));
        }
        SubFreeze {
            nodes,
            max_desc_rel,
            embeds,
            links,
            ends,
        }
    }

    /// Structural equality with another trie: same arena (node paths,
    /// parents *and* sibling-chain order), same document lists, same frozen
    /// labels/links/end-nodes.  This is the "bit-identical to the
    /// sequential build" assertion of the parallel-build tests.
    pub fn identical_to(&self, other: &SequenceTrie) -> bool {
        self.nodes == other.nodes
            && self.docs == other.docs
            && self.seq_count == other.seq_count
            && self.frozen == other.frozen
    }

    /// The frozen labels/links; panics if [`SequenceTrie::freeze`] has not
    /// been called since the last insertion.
    // PANIC-FREE: every index constructor and mutation path re-freezes
    // before returning, so query-time callers always see Some
    pub fn frozen(&self) -> &Frozen {
        self.frozen
            .as_ref()
            .expect("trie must be frozen before querying")
    }

    /// True when labels are current.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// The label `(n⊢, n⊣)` of a node.
    // PANIC-FREE: frozen tables are sized to the arena; ids are arena-minted
    pub fn label(&self, n: TrieNodeId) -> (u32, u32) {
        let f = self.frozen();
        (f.serial[n as usize], f.max_desc[n as usize])
    }

    /// The root label range `(n⊢, n⊣)` — the serial interval every descent
    /// starts from; traces attach it so a span can be located in the trie.
    pub fn root_range(&self) -> (u32, u32) {
        self.label(self.root())
    }

    /// Walks up from `n` to the nearest proper ancestor whose path is `t`
    /// (the "closest same-path ancestor" used by the sibling-cover check).
    // PANIC-FREE: arena-minted TrieNodeId contract (see `path`)
    pub fn nearest_ancestor_with_path(&self, n: TrieNodeId, t: PathId) -> Option<TrieNodeId> {
        let mut cur = self.nodes[n as usize].parent;
        while cur != NIL {
            if self.nodes[cur as usize].path == t {
                return Some(cur);
            }
            cur = self.nodes[cur as usize].parent;
        }
        None
    }

    /// All document ids in end nodes with serial in `[lo, hi]`.
    pub fn collect_docs_in_range(&self, lo: u32, hi: u32, out: &mut Vec<DocId>) {
        let f = self.frozen();
        let start = f.end_nodes.partition_point(|&(s, _)| s < lo);
        // PANIC-FREE: partition_point returns an index <= len
        for &(s, node) in &f.end_nodes[start..] {
            if s > hi {
                break;
            }
            out.extend_from_slice(self.docs_at(node));
        }
    }

    /// Approximate in-memory footprint in bytes (nodes + edges + links),
    /// used by the index-size experiments alongside the node count.
    pub fn approx_bytes(&self) -> usize {
        let node_bytes = self.nodes.len() * std::mem::size_of::<TrieNode>();
        let edge_bytes = self.edges.len() * (8 + 4 + 8); // key + value + overhead
        let link_bytes = self
            .frozen
            .as_ref()
            .map(|f| {
                f.links
                    .values()
                    .map(|v| v.len() * std::mem::size_of::<LinkEntry>())
                    .sum::<usize>()
            })
            .unwrap_or(0);
        node_bytes + edge_bytes + link_bytes
    }
}

/// Exact-model heap attribution: arena, edge map, doc lists and (when
/// frozen) labels plus links.  Unlike [`SequenceTrie::approx_bytes`] this
/// charges *capacity* (what the allocator handed out), models the hash
/// maps with [`hash_table_alloc_bytes`], and is validated against a
/// counting allocator in the core crate's `heap_accounting` test.
impl HeapSize for SequenceTrie {
    fn heap_bytes(&self) -> usize {
        let arena = self.nodes.capacity() * std::mem::size_of::<TrieNode>();
        let edges = hash_table_alloc_bytes(
            self.edges.capacity(),
            std::mem::size_of::<((TrieNodeId, PathId), TrieNodeId)>(),
        );
        let docs = hash_table_alloc_bytes(
            self.docs.capacity(),
            std::mem::size_of::<(TrieNodeId, Vec<DocId>)>(),
        ) + self
            .docs
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<DocId>())
            .sum::<usize>();
        let frozen = self.frozen.as_ref().map_or(0, |f| {
            f.serial.capacity() * std::mem::size_of::<u32>()
                + f.max_desc.capacity() * std::mem::size_of::<u32>()
                + f.embeds_identical.capacity() * std::mem::size_of::<bool>()
                + f.end_nodes.capacity() * std::mem::size_of::<(u32, TrieNodeId)>()
                + hash_table_alloc_bytes(
                    f.links.capacity(),
                    std::mem::size_of::<(PathId, Vec<LinkEntry>)>(),
                )
                + f.links
                    .values()
                    .map(|v| v.capacity() * std::mem::size_of::<LinkEntry>())
                    .sum::<usize>()
        });
        arena + edges + docs + frozen
    }
}

impl TrieView for SequenceTrie {
    fn root(&self) -> TrieNodeId {
        SequenceTrie::root(self)
    }
    fn label(&self, n: TrieNodeId) -> (u32, u32) {
        SequenceTrie::label(self, n)
    }
    fn path(&self, n: TrieNodeId) -> PathId {
        SequenceTrie::path(self, n)
    }
    fn parent(&self, n: TrieNodeId) -> TrieNodeId {
        SequenceTrie::parent(self, n)
    }
    fn embeds_identical(&self, n: TrieNodeId) -> bool {
        // PANIC-FREE: frozen tables are sized to the arena
        self.frozen().embeds_identical[n as usize]
    }
    fn link_len(&self, path: PathId) -> usize {
        self.frozen().links.get(&path).map(Vec::len).unwrap_or(0)
    }
    fn link_entry(&self, path: PathId, idx: usize) -> LinkEntry {
        // PANIC-FREE: callers iterate idx < link_len(path), which also
        // guarantees the links map contains the path
        self.frozen().links[&path][idx]
    }
    fn collect_docs_in_range(&self, lo: u32, hi: u32, out: &mut Vec<DocId>) {
        SequenceTrie::collect_docs_in_range(self, lo, hi, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::PathTable;
    use xseq_xml::{Symbol, SymbolTable, ValueMode};

    struct Fx {
        st: SymbolTable,
        pt: PathTable,
    }

    impl Fx {
        fn new() -> Self {
            Fx {
                st: SymbolTable::with_value_mode(ValueMode::Intern),
                pt: PathTable::new(),
            }
        }
        fn p(&mut self, spec: &str) -> PathId {
            let syms: Vec<Symbol> = spec.split('.').map(|s| self.st.elem(s)).collect();
            self.pt.intern(&syms)
        }
        fn seq(&mut self, specs: &[&str]) -> Sequence {
            Sequence(specs.iter().map(|s| self.p(s)).collect())
        }
    }

    #[test]
    fn insert_shares_prefixes() {
        let mut fx = Fx::new();
        let s1 = fx.seq(&["P", "P.A", "P.A.X"]);
        let s2 = fx.seq(&["P", "P.A", "P.A.Y"]);
        let mut trie = SequenceTrie::new();
        trie.insert(&s1, 0);
        trie.insert(&s2, 1);
        // shared: P, P.A; distinct: X, Y → 4 nodes
        assert_eq!(trie.node_count(), 4);
        assert_eq!(trie.sequence_count(), 2);
    }

    #[test]
    fn identical_sequences_share_everything() {
        let mut fx = Fx::new();
        let s = fx.seq(&["P", "P.A"]);
        let mut trie = SequenceTrie::new();
        trie.insert(&s, 0);
        trie.insert(&s, 1);
        assert_eq!(trie.node_count(), 2);
        trie.freeze();
        // both docs on the same end node
        let f = trie.frozen();
        assert_eq!(f.end_nodes.len(), 1);
        let (_, node) = f.end_nodes[0];
        assert_eq!(trie.docs_at(node), &[0, 1]);
    }

    #[test]
    fn labels_are_preorder_ranges() {
        let mut fx = Fx::new();
        let s1 = fx.seq(&["P", "P.A", "P.A.X"]);
        let s2 = fx.seq(&["P", "P.B"]);
        let mut trie = SequenceTrie::new();
        trie.insert(&s1, 0);
        trie.insert(&s2, 1);
        trie.freeze();
        let f = trie.frozen();
        // Every node's range contains its descendants' serials, and the
        // root's range spans everything.
        let (rs, rm) = trie.label(trie.root());
        assert_eq!(rs, 0);
        assert_eq!(rm as usize, trie.node_count());
        for n in 1..=trie.node_count() as TrieNodeId {
            let (s, m) = trie.label(n);
            assert!(s <= m);
            let parent = trie.parent(n);
            let (ps, pm) = trie.label(parent);
            assert!(ps < s && m <= pm, "child range nested in parent");
        }
        let _ = f;
    }

    #[test]
    fn path_links_ascending_and_complete() {
        let mut fx = Fx::new();
        let s1 = fx.seq(&["P", "P.A", "P.A.X"]);
        let s2 = fx.seq(&["P", "P.A", "P.A.Y"]);
        let s3 = fx.seq(&["P", "P.B", "P.A"]);
        let mut trie = SequenceTrie::new();
        trie.insert(&s1, 0);
        trie.insert(&s2, 1);
        trie.insert(&s3, 2);
        trie.freeze();
        let pa = fx.p("P.A");
        let link = &trie.frozen().links[&pa];
        // two P.A trie nodes: the shared second-position one and s3's third
        assert_eq!(link.len(), 2);
        assert!(link.windows(2).all(|w| w[0].serial < w[1].serial));
        // total link entries == node count
        let total: usize = trie.frozen().links.values().map(Vec::len).sum();
        assert_eq!(total, trie.node_count());
    }

    #[test]
    fn embeds_identical_detection() {
        let mut fx = Fx::new();
        // ⟨P, PL, PLS, PL, PLB⟩ — inserting this one sequence nests the
        // second PL under the first (Figure 10).
        let s = fx.seq(&["P", "P.L", "P.L.S", "P.L", "P.L.B"]);
        let mut trie = SequenceTrie::new();
        trie.insert(&s, 0);
        trie.freeze();
        let pl = fx.p("P.L");
        let link = &trie.frozen().links[&pl];
        assert_eq!(link.len(), 2);
        // ranges nest: first PL covers the second
        let (a, b) = (link[0], link[1]);
        assert!(a.serial < b.serial && b.max_desc <= a.max_desc);
        // the outer PL embeds an identical sibling; the inner does not
        assert!(trie.frozen().embeds_identical[a.node as usize]);
        assert!(!trie.frozen().embeds_identical[b.node as usize]);
    }

    #[test]
    fn nearest_ancestor_with_path() {
        let mut fx = Fx::new();
        let s = fx.seq(&["P", "P.L", "P.L.S", "P.L", "P.L.B"]);
        let mut trie = SequenceTrie::new();
        trie.insert(&s, 0);
        trie.freeze();
        let pl = fx.p("P.L");
        let plb = fx.p("P.L.B");
        let link_plb = &trie.frozen().links[&plb];
        let b_node = link_plb[0].node;
        let link_pl = &trie.frozen().links[&pl];
        // PLB's nearest PL ancestor is the *second* PL
        assert_eq!(
            trie.nearest_ancestor_with_path(b_node, pl),
            Some(link_pl[1].node)
        );
    }

    #[test]
    fn collect_docs_in_range() {
        let mut fx = Fx::new();
        let s1 = fx.seq(&["P", "P.A"]);
        let s2 = fx.seq(&["P", "P.A", "P.A.X"]);
        let s3 = fx.seq(&["P", "P.B"]);
        let mut trie = SequenceTrie::new();
        trie.insert(&s1, 10);
        trie.insert(&s2, 20);
        trie.insert(&s3, 30);
        trie.freeze();
        let mut out = Vec::new();
        let (rs, rm) = trie.label(trie.root());
        trie.collect_docs_in_range(rs, rm, &mut out);
        out.sort();
        assert_eq!(out, vec![10, 20, 30]);

        // only the P.A subtree
        let pa = fx.p("P.A");
        let e = trie.frozen().links[&pa]
            .iter()
            .find(|e| {
                // the depth-2 P.A (child of P)
                trie.parent(e.node) != trie.root()
            })
            .copied();
        let _ = e;
        let first_pa = trie.frozen().links[&pa][0];
        out.clear();
        trie.collect_docs_in_range(first_pa.serial, first_pa.max_desc, &mut out);
        out.sort();
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let mut fx = Fx::new();
        let seqs = vec![
            (fx.seq(&["P", "P.B"]), 0),
            (fx.seq(&["P", "P.A", "P.A.X"]), 1),
            (fx.seq(&["P", "P.A"]), 2),
        ];
        let mut a = SequenceTrie::new();
        for (s, d) in &seqs {
            a.insert(s, *d);
        }
        let mut b = SequenceTrie::new();
        b.bulk_load(seqs);
        assert_eq!(a.node_count(), b.node_count());
        a.freeze();
        b.freeze();
        let mut da = Vec::new();
        let mut db = Vec::new();
        a.collect_docs_in_range(0, u32::MAX, &mut da);
        b.collect_docs_in_range(0, u32::MAX, &mut db);
        da.sort();
        db.sort();
        assert_eq!(da, db);
    }

    #[test]
    fn insert_after_freeze_invalidates() {
        let mut fx = Fx::new();
        let s = fx.seq(&["P"]);
        let mut trie = SequenceTrie::new();
        trie.insert(&s, 0);
        trie.freeze();
        assert!(trie.is_frozen());
        let s2 = fx.seq(&["P", "P.A"]);
        trie.insert(&s2, 1);
        assert!(!trie.is_frozen());
        trie.freeze();
        assert_eq!(trie.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "must be frozen")]
    fn query_before_freeze_panics() {
        let trie = SequenceTrie::new();
        let _ = trie.frozen();
    }

    #[test]
    fn freeze_parallel_matches_freeze() {
        let mut fx = Fx::new();
        let seqs = vec![
            (fx.seq(&["P", "P.L", "P.L.S", "P.L", "P.L.B"]), 0),
            (fx.seq(&["P", "P.A", "P.A.X"]), 1),
            (fx.seq(&["P", "P.A", "P.A.Y"]), 2),
            (fx.seq(&["P", "P.B", "P.A"]), 3),
            (fx.seq(&["Q", "Q.Z"]), 4),
            (fx.seq(&["P", "P.A"]), 5),
            (fx.seq(&["P"]), 6),
        ];
        let mut seq_trie = SequenceTrie::new();
        seq_trie.bulk_load(seqs.clone());
        seq_trie.freeze();
        for threads in [1, 2, 4, 8] {
            let mut par = SequenceTrie::new();
            par.bulk_load(seqs.clone());
            par.freeze_parallel(&xseq_exec::Pool::new(threads));
            assert!(
                par.identical_to(&seq_trie),
                "freeze_parallel({threads}) diverged from freeze()"
            );
        }
    }

    #[test]
    fn bulk_load_presorted_matches_bulk_load() {
        let mut fx = Fx::new();
        let seqs = vec![
            (fx.seq(&["P", "P.B"]), 0),
            (fx.seq(&["P", "P.A", "P.A.X"]), 1),
            (fx.seq(&["P", "P.A"]), 2),
        ];
        let mut a = SequenceTrie::new();
        a.bulk_load(seqs.clone());
        a.freeze();
        let mut sorted = seqs;
        sorted.sort_by(|(s1, _), (s2, _)| s1.elems().cmp(s2.elems()));
        let mut b = SequenceTrie::new();
        b.bulk_load_presorted(sorted);
        b.freeze();
        assert!(a.identical_to(&b));
    }
}
