//! Exhaustive integrity verification of a built index (the `xseq-check`
//! subsystem).
//!
//! The paper's query correctness (no false alarms, no false dismissals)
//! rests on structural invariants that nothing in the hot path re-checks:
//!
//! * **Preorder labels** (Section 4.1, Figure 8): every trie node's range
//!   `(n⊢, n⊣)` is properly nested inside its parent's, sibling ranges are
//!   disjoint, and `n⊣` equals the largest serial in `n`'s subtree — the
//!   descent test `x⊢ ∈ (y⊢, y⊣]` is only sound under all three.
//! * **Path links** (Section 4.1, Figure 9): every horizontal link is
//!   strictly sorted by serial and contains each trie node exactly once —
//!   [`TrieView::link_lower_bound`]'s binary search silently returns wrong
//!   candidates otherwise.
//! * **Sibling-cover bookkeeping** (Algorithm 1 / Definition 4): the
//!   `embeds_identical` flag must equal a from-scratch recomputation, or
//!   the constraint check is skipped exactly where it is needed.
//! * **Stored sequences** (Eq. 3 / Theorem 1): every root-to-end-node path
//!   spells a constraint sequence that must satisfy `f2` and round-trip
//!   sequence → tree → sequence to an identical encoding.
//!
//! A violated invariant turns subsequence matches into *wrong answers*
//! rather than crashes — the worst failure mode for an index — so
//! [`verify_trie`] checks all of them and reports violations with
//! trie-node/serial coordinates.  [`XmlIndex::verify_integrity`] and
//! `Database::verify_integrity` are the public entry points; `repro
//! --verify` runs them over the XMark/DBLP/synthetic corpora.
//!
//! [`TrieView::link_lower_bound`]: crate::trie::TrieView::link_lower_bound
//! [`XmlIndex::verify_integrity`]: crate::XmlIndex::verify_integrity

use crate::trie::{SequenceTrie, TrieNodeId, NIL};
use std::fmt::Write as _;
use xseq_sequence::{verify_sequence, Sequence, Strategy};
use xseq_xml::PathTable;

/// Which invariant a violation breaks, keyed to its paper source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantClass {
    /// The trie has unfrozen insertions; labels and links are stale.
    NotFrozen,
    /// Preorder serials are not a permutation, or a label range is not
    /// properly nested in its parent / overlaps a sibling (Figure 8).
    PreorderNesting,
    /// `n⊣` disagrees with a from-scratch subtree-extent recomputation.
    SubtreeExtent,
    /// A horizontal path link is not strictly sorted by serial, or an
    /// entry's cached label disagrees with the node's label (Figure 9).
    LinkOrder,
    /// A node is missing from (or duplicated in) the link of its own path.
    LinkCoverage,
    /// `embeds_identical` disagrees with recomputation (Definition 4).
    SiblingCover,
    /// The end-node registry disagrees with the document-id lists.
    EndNodes,
    /// A stored sequence violates `f2` (Eq. 3).
    SequenceF2,
    /// A stored sequence fails the Theorem 1 round-trip.
    RoundTrip,
}

impl InvariantClass {
    /// Short machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            InvariantClass::NotFrozen => "not_frozen",
            InvariantClass::PreorderNesting => "preorder_nesting",
            InvariantClass::SubtreeExtent => "subtree_extent",
            InvariantClass::LinkOrder => "link_order",
            InvariantClass::LinkCoverage => "link_coverage",
            InvariantClass::SiblingCover => "sibling_cover",
            InvariantClass::EndNodes => "end_nodes",
            InvariantClass::SequenceF2 => "sequence_f2",
            InvariantClass::RoundTrip => "round_trip",
        }
    }

    /// Where in the paper the invariant comes from.
    pub fn paper_source(self) -> &'static str {
        match self {
            InvariantClass::NotFrozen => "Section 4.1 (index construction)",
            InvariantClass::PreorderNesting => "Section 4.1 step 2, Figure 8",
            InvariantClass::SubtreeExtent => "Section 4.1 step 2, Figure 8",
            InvariantClass::LinkOrder => "Section 4.1 step 3, Figure 9",
            InvariantClass::LinkCoverage => "Section 4.1 step 3, Figure 9",
            InvariantClass::SiblingCover => "Algorithm 1 / Definition 4",
            InvariantClass::EndNodes => "Section 4.1 step 1, Figure 7",
            InvariantClass::SequenceF2 => "Eq. 3 / Definition 2",
            InvariantClass::RoundTrip => "Theorem 1",
        }
    }
}

/// One invariant violation, located by trie-node/serial coordinates.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The broken invariant.
    pub class: InvariantClass,
    /// The trie node the violation anchors to, when one exists.
    pub node: Option<TrieNodeId>,
    /// The node's preorder serial `n⊢`, when labels are available.
    pub serial: Option<u32>,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    fn render(&self) -> String {
        let mut out = format!("[{}]", self.class.as_str());
        if let Some(n) = self.node {
            let _ = write!(out, " node {n}");
        }
        if let Some(s) = self.serial {
            let _ = write!(out, " (serial {s})");
        }
        let _ = write!(out, ": {} — {}", self.detail, self.class.paper_source());
        out
    }
}

/// Result of an integrity pass: work counters plus the structured
/// violation list.
#[derive(Debug, Clone, Default)]
pub struct IntegrityReport {
    /// Trie nodes whose labels were checked (including the virtual root).
    pub nodes_checked: usize,
    /// Horizontal path links checked.
    pub links_checked: usize,
    /// Distinct stored sequences decoded and round-tripped.
    pub sequences_checked: usize,
    /// Violations found, capped at [`IntegrityReport::MAX_VIOLATIONS`].
    pub violations: Vec<Violation>,
    /// Violations beyond the cap (counted, not stored).
    pub suppressed: usize,
}

impl IntegrityReport {
    /// Upper bound on stored violations; the rest are only counted, so a
    /// corrupted index cannot balloon its own report.
    pub const MAX_VIOLATIONS: usize = 64;

    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Total violations found, including suppressed ones.
    pub fn violation_count(&self) -> usize {
        self.violations.len() + self.suppressed
    }

    /// True when some violation of `class` was recorded.
    pub fn has(&self, class: InvariantClass) -> bool {
        self.violations.iter().any(|v| v.class == class)
    }

    fn push(&mut self, v: Violation) {
        if self.violations.len() < Self::MAX_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.suppressed += 1;
        }
    }

    /// Folds another segment's report into this one — used by the
    /// two-segment (frozen + delta) verification paths so one report covers
    /// the whole index.  Work counters add; violations append up to
    /// [`IntegrityReport::MAX_VIOLATIONS`], the rest count as suppressed.
    pub fn merge(&mut self, other: IntegrityReport) {
        self.nodes_checked += other.nodes_checked;
        self.links_checked += other.links_checked;
        self.sequences_checked += other.sequences_checked;
        self.suppressed += other.suppressed;
        for v in other.violations {
            self.push(v);
        }
    }

    /// One-line outcome, e.g. for `explain()` output.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!(
                "clean ({} nodes, {} links, {} sequences)",
                self.nodes_checked, self.links_checked, self.sequences_checked
            )
        } else {
            format!(
                "{} violation(s) over {} nodes / {} links / {} sequences",
                self.violation_count(),
                self.nodes_checked,
                self.links_checked,
                self.sequences_checked
            )
        }
    }

    /// Multi-line report: summary plus one line per stored violation.
    pub fn render(&self) -> String {
        let mut out = format!("integrity: {}\n", self.summary());
        for v in &self.violations {
            let _ = writeln!(out, "  {}", v.render());
        }
        if self.suppressed > 0 {
            let _ = writeln!(
                out,
                "  … {} further violation(s) suppressed",
                self.suppressed
            );
        }
        out
    }
}

/// Verifies the frozen trie's labels, links, sibling-cover bookkeeping and
/// end-node registry — everything that can be checked without decoding
/// sequences.  Cheap enough for sampled post-query spot checks.
pub fn verify_trie_structure(trie: &SequenceTrie) -> IntegrityReport {
    let mut report = IntegrityReport::default();
    if !trie.is_frozen() {
        report.push(Violation {
            class: InvariantClass::NotFrozen,
            node: None,
            serial: None,
            detail: "insertions since the last freeze; labels and links are stale".into(),
        });
        return report;
    }
    let f = trie.frozen();
    let n = trie.arena_len();
    report.nodes_checked = n;

    // Array shapes: the labels must cover the arena exactly.
    if f.serial.len() != n || f.max_desc.len() != n || f.embeds_identical.len() != n {
        report.push(Violation {
            class: InvariantClass::PreorderNesting,
            node: None,
            serial: None,
            detail: format!(
                "label arrays cover {}/{}/{} nodes of an arena of {n}",
                f.serial.len(),
                f.max_desc.len(),
                f.embeds_identical.len()
            ),
        });
        return report; // indexing below would be unsound
    }

    // Serials are a permutation of 0..n.
    let mut seen = vec![false; n];
    for (i, &s) in f.serial.iter().enumerate() {
        // PANIC-FREE: the || short-circuits, so seen (len n) is only
        // indexed once s < n holds
        if (s as usize) >= n || seen[s as usize] {
            report.push(Violation {
                class: InvariantClass::PreorderNesting,
                node: Some(i as TrieNodeId),
                serial: Some(s),
                detail: format!("serial {s} out of range or duplicated (arena of {n})"),
            });
        } else {
            // PANIC-FREE: else branch of the s >= n test, so s < n
            seen[s as usize] = true;
        }
    }

    // Virtual root: serial 0, range spanning the whole arena.
    let root = trie.root();
    let (rs, rm) = trie.label(root);
    if rs != 0 || rm as usize != n - 1 {
        report.push(Violation {
            class: InvariantClass::PreorderNesting,
            node: Some(root),
            serial: Some(rs),
            detail: format!("root range ({rs}, {rm}) should be (0, {})", n - 1),
        });
    }

    // Per node: self-consistency, nesting in the parent, disjoint sibling
    // ranges, and the subtree extent recomputed from the children.
    for i in 0..n as TrieNodeId {
        let (s, m) = trie.label(i);
        if s > m || (m as usize) >= n {
            report.push(Violation {
                class: InvariantClass::PreorderNesting,
                node: Some(i),
                serial: Some(s),
                detail: format!("degenerate range ({s}, {m})"),
            });
            continue;
        }
        let parent = trie.parent(i);
        if parent != NIL {
            let (ps, pm) = trie.label(parent);
            if !(ps < s && m <= pm) {
                report.push(Violation {
                    class: InvariantClass::PreorderNesting,
                    node: Some(i),
                    serial: Some(s),
                    detail: format!(
                        "range ({s}, {m}) not nested in parent {parent}'s ({ps}, {pm})"
                    ),
                });
            }
        }
        // Children: extent recomputation + pairwise disjointness.
        let mut extent = s;
        let mut ranges: Vec<(u32, u32, TrieNodeId)> = Vec::new();
        let mut c = trie.first_child(i);
        while c != NIL {
            let (cs, cm) = trie.label(c);
            extent = extent.max(cm);
            ranges.push((cs, cm, c));
            c = trie.next_sibling(c);
        }
        if extent != m {
            report.push(Violation {
                class: InvariantClass::SubtreeExtent,
                node: Some(i),
                serial: Some(s),
                detail: format!("n⊣ is {m} but the subtree extends to {extent}"),
            });
        }
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            // PANIC-FREE: windows(2) yields exactly two entries
            let (_, am, an) = w[0];
            let (bs, _, bn) = w[1];
            if bs <= am {
                report.push(Violation {
                    class: InvariantClass::PreorderNesting,
                    node: Some(bn),
                    serial: Some(bs),
                    detail: format!("sibling ranges of nodes {an} and {bn} overlap"),
                });
            }
        }
    }

    // Path links: strict serial order, cached labels in agreement, and
    // exactly-once coverage of every real node under its own path.
    report.links_checked = f.links.len();
    let mut covered = vec![0u32; n];
    for (&path, entries) in &f.links {
        for w in entries.windows(2) {
            // PANIC-FREE: windows(2) yields exactly two entries
            let (a, b) = (&w[0], &w[1]);
            if a.serial >= b.serial {
                report.push(Violation {
                    class: InvariantClass::LinkOrder,
                    node: Some(b.node),
                    serial: Some(b.serial),
                    detail: format!(
                        "link of path {path:?} not strictly ascending: {} then {}",
                        a.serial, b.serial
                    ),
                });
            }
        }
        for (idx, e) in entries.iter().enumerate() {
            if (e.node as usize) >= n {
                report.push(Violation {
                    class: InvariantClass::LinkCoverage,
                    node: Some(e.node),
                    serial: Some(e.serial),
                    detail: format!("link of path {path:?} points outside the arena"),
                });
                continue;
            }
            // PANIC-FREE: e.node < n — the out-of-arena case continued
            covered[e.node as usize] += 1;
            let (s, m) = trie.label(e.node);
            if e.serial != s || e.max_desc != m {
                report.push(Violation {
                    class: InvariantClass::LinkOrder,
                    node: Some(e.node),
                    serial: Some(s),
                    detail: format!(
                        "link entry caches ({}, {}) but the node is labeled ({s}, {m})",
                        e.serial, e.max_desc
                    ),
                });
            }
            if trie.path(e.node) != path {
                report.push(Violation {
                    class: InvariantClass::LinkCoverage,
                    node: Some(e.node),
                    serial: Some(s),
                    detail: format!(
                        "node carries path {:?} but sits in the link of {path:?}",
                        trie.path(e.node)
                    ),
                });
            }
            // Sibling-cover recomputation: with the link in ascending serial
            // order, the node embeds an identical-path node iff the next
            // entry starts inside its range.
            let expected = entries
                .get(idx + 1)
                .is_some_and(|next| next.serial <= e.max_desc && next.serial > e.serial);
            // PANIC-FREE: e.node < n — the out-of-arena case continued
            let actual = f.embeds_identical[e.node as usize];
            if actual != expected {
                report.push(Violation {
                    class: InvariantClass::SiblingCover,
                    node: Some(e.node),
                    serial: Some(s),
                    detail: format!(
                        "embeds_identical is {actual} but recomputation says {expected}"
                    ),
                });
            }
        }
    }
    for i in 1..n as TrieNodeId {
        // PANIC-FREE: i < n and covered was sized to n
        let times = covered[i as usize];
        if times != 1 {
            report.push(Violation {
                class: InvariantClass::LinkCoverage,
                node: Some(i),
                serial: Some(trie.label(i).0),
                detail: format!(
                    "node appears {times} times across the path links (expected exactly once)"
                ),
            });
        }
    }

    // End-node registry: strictly ascending serials, in exact agreement
    // with the document-id lists, totalling the inserted sequence count.
    for w in f.end_nodes.windows(2) {
        // PANIC-FREE: windows(2) yields exactly two entries
        let (a, b) = (w[0], w[1]);
        if a.0 >= b.0 {
            report.push(Violation {
                class: InvariantClass::EndNodes,
                node: Some(b.1),
                serial: Some(b.0),
                detail: "end-node registry not strictly ascending by serial".into(),
            });
        }
    }
    let mut total_docs = 0usize;
    let mut end_count = 0usize;
    for (node, docs) in trie.doc_lists() {
        total_docs += docs.len();
        end_count += 1;
        if docs.is_empty() {
            report.push(Violation {
                class: InvariantClass::EndNodes,
                node: Some(node),
                serial: Some(trie.label(node).0),
                detail: "empty document-id list".into(),
            });
        }
        let s = trie.label(node).0;
        if !f.end_nodes.iter().any(|&(es, en)| en == node && es == s) {
            report.push(Violation {
                class: InvariantClass::EndNodes,
                node: Some(node),
                serial: Some(s),
                detail: "end node missing from the registry (or registered under a stale serial)"
                    .into(),
            });
        }
    }
    if f.end_nodes.len() != end_count {
        report.push(Violation {
            class: InvariantClass::EndNodes,
            node: None,
            serial: None,
            detail: format!(
                "registry lists {} end nodes but {} carry documents",
                f.end_nodes.len(),
                end_count
            ),
        });
    }
    if total_docs != trie.sequence_count() {
        report.push(Violation {
            class: InvariantClass::EndNodes,
            node: None,
            serial: None,
            detail: format!(
                "{} document ids stored but {} sequences were inserted",
                total_docs,
                trie.sequence_count()
            ),
        });
    }
    report
}

/// Full verification: [`verify_trie_structure`] plus the sequence-level
/// checks — every distinct stored constraint sequence (one per end node,
/// reconstructed from its root path) must satisfy `f2` and round-trip
/// through the Theorem 1 decoder under `strategy`.
pub fn verify_trie(
    trie: &SequenceTrie,
    paths: &mut PathTable,
    strategy: &Strategy,
) -> IntegrityReport {
    let mut report = verify_trie_structure(trie);
    if report.has(InvariantClass::NotFrozen) {
        return report;
    }
    // Deterministic order for reproducible reports.
    let mut ends: Vec<TrieNodeId> = trie.doc_lists().map(|(n, _)| n).collect();
    ends.sort_unstable();
    for end in ends {
        // The stored sequence is the root-to-end-node path of the trie.
        let mut elems = Vec::new();
        let mut cur = end;
        while cur != NIL && cur != trie.root() {
            elems.push(trie.path(cur));
            cur = trie.parent(cur);
        }
        elems.reverse();
        let seq = Sequence(elems);
        report.sequences_checked += 1;
        if let Err(issue) = verify_sequence(&seq, paths, strategy) {
            let class = match issue {
                xseq_sequence::SequenceIssue::NotF2(_)
                | xseq_sequence::SequenceIssue::MultisetMismatch { .. } => {
                    InvariantClass::SequenceF2
                }
                xseq_sequence::SequenceIssue::ReencodeMismatch { .. }
                | xseq_sequence::SequenceIssue::StructuralMismatch => InvariantClass::RoundTrip,
            };
            let serial = trie.is_frozen().then(|| trie.label(end).0);
            report.push(Violation {
                class,
                node: Some(end),
                serial,
                detail: format!(
                    "stored sequence of {} element(s), docs {:?}: {issue}",
                    seq.len(),
                    trie.docs_at(end)
                ),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::{PathId, Symbol, SymbolTable, ValueMode};

    fn seq_of(st: &mut SymbolTable, pt: &mut PathTable, specs: &[&str]) -> Sequence {
        Sequence(
            specs
                .iter()
                .map(|spec| {
                    let syms: Vec<Symbol> = spec.split('.').map(|s| st.elem(s)).collect();
                    pt.intern(&syms)
                })
                .collect(),
        )
    }

    fn df_trie(sequences: &[&[&str]]) -> (SequenceTrie, PathTable, SymbolTable) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let mut pt = PathTable::new();
        let mut trie = SequenceTrie::new();
        for (d, specs) in sequences.iter().enumerate() {
            let s = seq_of(&mut st, &mut pt, specs);
            trie.insert(&s, d as u32);
        }
        trie.freeze();
        (trie, pt, st)
    }

    #[test]
    fn clean_trie_verifies_clean() {
        let (trie, mut pt, _st) = df_trie(&[
            &["P", "P.A", "P.A.X"],
            &["P", "P.A", "P.A.Y"],
            &["P", "P.B"],
        ]);
        let report = verify_trie(&trie, &mut pt, &Strategy::DepthFirst);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.sequences_checked, 3);
        assert!(report.links_checked > 0);
    }

    #[test]
    fn empty_trie_verifies_clean() {
        let mut trie = SequenceTrie::new();
        trie.freeze();
        let mut pt = PathTable::new();
        let report = verify_trie(&trie, &mut pt, &Strategy::DepthFirst);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.nodes_checked, 1, "just the virtual root");
        assert_eq!(report.sequences_checked, 0);
    }

    #[test]
    fn unfrozen_trie_reports_not_frozen() {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let mut pt = PathTable::new();
        let mut trie = SequenceTrie::new();
        let s = seq_of(&mut st, &mut pt, &["P"]);
        trie.insert(&s, 0);
        let report = verify_trie(&trie, &mut pt, &Strategy::DepthFirst);
        assert!(report.has(InvariantClass::NotFrozen));
        assert_eq!(report.violation_count(), 1);
    }

    #[test]
    fn swapped_link_serials_detected_as_link_order() {
        let (mut trie, mut pt, _st) = df_trie(&[&["P", "P.A", "P.A.X", "P.A"], &["P", "P.B"]]);
        // Find a link with ≥2 entries and swap the serials of its first two.
        let f = trie.corrupt_frozen().unwrap();
        let link = f
            .links
            .values_mut()
            .find(|v| v.len() >= 2)
            .expect("P.A has two trie nodes");
        let (a, b) = (link[0].serial, link[1].serial);
        link[0].serial = b;
        link[1].serial = a;
        let report = verify_trie(&trie, &mut pt, &Strategy::DepthFirst);
        assert!(report.has(InvariantClass::LinkOrder), "{}", report.render());
    }

    #[test]
    fn widened_child_range_detected() {
        let (mut trie, _pt, _st) = df_trie(&[&["P", "P.A"], &["P", "P.B"]]);
        let f = trie.corrupt_frozen().unwrap();
        // Widen a leaf's range past its parent's.
        let leaf = f
            .max_desc
            .iter()
            .enumerate()
            .skip(1)
            .find(|&(i, &m)| f.serial[i] == m)
            .map(|(i, _)| i)
            .expect("some leaf exists");
        f.max_desc[leaf] = f.max_desc.len() as u32 + 10;
        let report = verify_trie_structure(&trie);
        assert!(
            report.has(InvariantClass::PreorderNesting)
                || report.has(InvariantClass::SubtreeExtent),
            "{}",
            report.render()
        );
    }

    #[test]
    fn flipped_embeds_flag_detected() {
        let (mut trie, mut pt, _st) = df_trie(&[&["P", "P.A", "P.A.X"]]);
        let f = trie.corrupt_frozen().unwrap();
        f.embeds_identical[1] = !f.embeds_identical[1];
        let report = verify_trie(&trie, &mut pt, &Strategy::DepthFirst);
        assert!(
            report.has(InvariantClass::SiblingCover),
            "{}",
            report.render()
        );
    }

    #[test]
    fn flipped_designator_detected_in_stored_sequence() {
        let (mut trie, mut pt, mut st) = df_trie(&[&["P", "P.A", "P.A.X"]]);
        // Flip the end node's path to an unrelated deep path: the stored
        // sequence loses the P.A.X element and gains one whose parent
        // never occurs.
        let bogus = {
            let q = st.elem("Q");
            let r = st.elem("R");
            pt.intern(&[q, r])
        };
        // End node is the deepest node on the only branch.
        let end = trie.doc_lists().next().unwrap().0;
        trie.corrupt_set_path(end, bogus);
        let report = verify_trie(&trie, &mut pt, &Strategy::DepthFirst);
        assert!(
            report.has(InvariantClass::SequenceF2) || report.has(InvariantClass::LinkCoverage),
            "{}",
            report.render()
        );
    }

    #[test]
    fn report_caps_and_renders() {
        let mut report = IntegrityReport::default();
        for i in 0..(IntegrityReport::MAX_VIOLATIONS + 5) {
            report.push(Violation {
                class: InvariantClass::LinkOrder,
                node: Some(i as TrieNodeId),
                serial: Some(i as u32),
                detail: "x".into(),
            });
        }
        assert_eq!(report.violations.len(), IntegrityReport::MAX_VIOLATIONS);
        assert_eq!(report.suppressed, 5);
        assert!(!report.is_clean());
        assert!(report.render().contains("suppressed"));
        assert!(report.summary().contains("violation"));
        let _ = PathId::ROOT; // keep the import earning its place
    }
}
