//! Interleaving model checks for the **tiered** segment-list swap, using
//! the `xseq-telemetry::sched` harness that validated `BoundedRing`, the
//! exec pool's chunk queue, and the flat delta overlay (`sched_delta.rs`).
//!
//! `xseq_index::check_updates_tiered` replays scripted op lists — now
//! including [`UpdateOp::Merge`] (one background tier merge) and
//! [`UpdateOp::Compact`] — over every interleaving (or a seeded sample of
//! a too-large space) with aggressive tiering knobs, so memtable cuts and
//! run merges fire *inside* the schedules.  Every `Query` op snapshots the
//! overlay through `delta_view()` and checks the full reader invariant
//! battery: the visible set matches the reference model (no torn segment
//! set), every overlay-era tombstone is present (none dropped), a
//! once-inserted id appears in exactly one segment (no document visible in
//! two tiers), snapshot epochs are monotonic, and all segments are frozen.
//!
//! Schedule counts are pinned: a drop means the interleaving space
//! silently shrank and coverage regressed.

use xseq_index::{check_updates_tiered, UpdateOp};

use UpdateOp::{Compact, Insert, Merge, Query, Remove};

#[test]
fn exhaustive_reader_races_background_merger() {
    // memtable_limit = 1: every insert cuts a tier-0 run; tier_ratio = 2:
    // two runs of a tier fold into one a tier up.  One inserting writer,
    // one merging "background worker" thread, one reader:
    // C(8; 3, 2, 3) = 560 schedules, enumerated exhaustively.
    let threads = vec![
        vec![Insert(0), Insert(1), Insert(2)],
        vec![Merge, Merge],
        vec![Query, Query, Query],
    ];
    let checked = check_updates_tiered(&threads, usize::MAX, 0, 1, 2)
        .expect("reader snapshots consistent in every interleaving");
    assert_eq!(checked, 560, "full space enumerated");
}

#[test]
fn merges_never_drop_tombstones_or_double_publish() {
    // A remove racing its own insert while merges fold the runs it may or
    // may not be in yet: tombstones are permanent until compaction, so
    // every interleaving must keep doc 0 invisible once removed, and the
    // splice must never leave it visible in two tiers.
    // C(9; 4, 2, 3) = 1260 schedules, enumerated exhaustively.
    let threads = vec![
        vec![Insert(0), Insert(1), Remove(0), Insert(2)],
        vec![Merge, Merge],
        vec![Query, Query, Query],
    ];
    let checked = check_updates_tiered(&threads, usize::MAX, 1, 1, 2)
        .expect("tombstone resolution consistent in every interleaving");
    assert_eq!(checked, 1260, "full space enumerated");
}

#[test]
fn sampled_compaction_races_merges_and_readers() {
    // Compaction (clear + model fold) interleaved against merges and
    // reader snapshots: the merge validation-by-pointer-identity must
    // abort stale splices instead of resurrecting pre-compaction runs.
    // C(12; 5, 3, 4) = 27720 schedules — a seeded 768-schedule sample.
    let threads = vec![
        vec![Insert(0), Insert(1), Insert(2), Insert(3), Query],
        vec![Merge, Compact, Merge],
        vec![Query, Remove(2), Query],
    ];
    let checked = check_updates_tiered(&threads, 768, 0x7ee5, 2, 2)
        .expect("sampled interleavings consistent");
    assert_eq!(checked, 768, "sample budget exhausted");
}

#[test]
fn deep_tier_cascade_under_interleaved_reads() {
    // Enough inserts at limit 1 / ratio 2 to cascade merges through three
    // tiers, with reads cutting in anywhere: C(10; 6, 2, 2) = 1260
    // schedules (merges beyond the script run in the final drain's view).
    let threads = vec![
        vec![
            Insert(0),
            Insert(1),
            Insert(2),
            Insert(3),
            Insert(4),
            Insert(5),
        ],
        vec![Merge, Merge],
        vec![Query, Query],
    ];
    let checked = check_updates_tiered(&threads, usize::MAX, 2, 1, 2)
        .expect("cascading merges consistent in every interleaving");
    assert_eq!(checked, 1260, "full space enumerated");
}
