//! The paper's worked examples, end to end against the index.

use xseq_index::{constraint_search, naive_search, PlanOptions, QuerySequence, XmlIndex};
use xseq_sequence::{sequence_document, Sequence, Strategy};
use xseq_xml::{
    parse_document, Axis, PathTable, PatternLabel, Symbol, SymbolTable, TreePattern, ValueMode,
};

/// Figure 1's project document.
const FIGURE1: &str = r#"
<P>
  <v>xml</v>
  <R><M>johnson0</M><L>newyork</L></R>
  <D>
    <M>johnson</M>
    <U><M>mary</M><N>GUI</N></U>
    <U><N>engine</N></U>
    <L>boston</L>
  </D>
</P>"#;

#[test]
fn section31_query_on_figure1() {
    // /Project[Research[Loc=newyork]]/Develop[Loc=boston] — the paper's
    // Section 3.1 example, which must match the Figure 1 document.
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let doc = parse_document(FIGURE1, &mut st).unwrap();
    let decoy =
        parse_document("<P><R><L>boston</L></R><D><L>newyork</L></D></P>", &mut st).unwrap();
    let mut paths = PathTable::new();
    let index = XmlIndex::build(
        &[doc, decoy],
        &mut paths,
        Strategy::DepthFirst,
        PlanOptions::default(),
    );

    let p = st.designator("P");
    let r = st.designator("R");
    let d = st.designator("D");
    let l = st.designator("L");
    let ny = st.values.lookup("newyork").unwrap();
    let bos = st.values.lookup("boston").unwrap();

    let mut q = TreePattern::root(PatternLabel::Elem(p));
    let rn = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(r));
    let rl = q.add(rn, Axis::Child, PatternLabel::Elem(l));
    q.add(rl, Axis::Child, PatternLabel::Value(ny));
    let dn = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(d));
    let dl = q.add(dn, Axis::Child, PatternLabel::Elem(l));
    q.add(dl, Axis::Child, PatternLabel::Value(bos));

    // doc 0: R has newyork, D has boston → match.
    // doc 1: locations swapped → no match.
    assert_eq!(index.query(&q, &paths).docs, vec![0]);
}

/// Builds the paths of a spec like "P.L.S" against shared tables.
fn p(st: &mut SymbolTable, pt: &mut PathTable, spec: &str) -> xseq_xml::PathId {
    let syms: Vec<Symbol> = spec.split('.').map(|s| st.elem(s)).collect();
    pt.intern(&syms)
}

#[test]
fn figure10_sibling_cover_scenario() {
    // The exact scenario of Figure 10 and the surrounding discussion:
    // data ⟨P, PL, PLS, PL, PLB⟩, query ⟨P, PL, PLS, PLB⟩.  The match
    // reaching node e (PLB) violates criterion 2 because node d (the inner
    // PL) sibling-covers it.
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let mut pt = PathTable::new();
    let seq = Sequence(vec![
        p(&mut st, &mut pt, "P"),
        p(&mut st, &mut pt, "P.L"),
        p(&mut st, &mut pt, "P.L.S"),
        p(&mut st, &mut pt, "P.L"),
        p(&mut st, &mut pt, "P.L.B"),
    ]);
    let mut trie = xseq_index::SequenceTrie::new();
    trie.insert(&seq, 0);
    trie.freeze();

    let q = Sequence(vec![
        p(&mut st, &mut pt, "P"),
        p(&mut st, &mut pt, "P.L"),
        p(&mut st, &mut pt, "P.L.S"),
        p(&mut st, &mut pt, "P.L.B"),
    ]);
    let qs = QuerySequence::from_sequence(&q, &pt);
    let (naive, _) = naive_search(&trie, &qs);
    assert_eq!(naive, vec![0], "naïve match is the false alarm");
    let (strict, stats) = constraint_search(&trie, &qs);
    assert!(strict.is_empty(), "constraint match rejects it");
    assert!(stats.cover_rejections >= 1);
}

#[test]
fn eq4_sequence_of_figure1_under_depth_first() {
    // The document sequence Eq (4) is a depth-first constraint sequence of
    // Figure 1; ours is the canonicalized variant — check the structural
    // invariants rather than the exact order: one element per node, every
    // prefix present, decodes back to the document.
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let doc = parse_document(FIGURE1, &mut st).unwrap();
    let mut paths = PathTable::new();
    let seq = sequence_document(&doc, &mut paths, &Strategy::DepthFirst);
    assert_eq!(seq.len(), doc.len());
    let back = xseq_sequence::decode_f2(&seq, &paths).unwrap();
    assert!(back.structurally_eq(&doc));
}

#[test]
fn naive_query_interface_of_section42() {
    // Section 4.2's worked query ⟨p0, p2, p9, p8⟩ walk: a simple-path query
    // descends through binary-searched ranges; verify range narrowing via
    // search stats on a small trie.
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let mut pt = PathTable::new();
    let mut trie = xseq_index::SequenceTrie::new();
    for (i, specs) in [
        vec!["P", "P.A", "P.A.X", "P.B"],
        vec!["P", "P.A", "P.B"],
        vec!["P", "P.B", "P.B.Y"],
    ]
    .iter()
    .enumerate()
    {
        let seq = Sequence(specs.iter().map(|s| p(&mut st, &mut pt, s)).collect());
        trie.insert(&seq, i as u32);
    }
    trie.freeze();
    let q = Sequence(vec![p(&mut st, &mut pt, "P"), p(&mut st, &mut pt, "P.B")]);
    let qs = QuerySequence::from_sequence(&q, &pt);
    let (docs, stats) = constraint_search(&trie, &qs);
    assert_eq!(docs, vec![0, 1, 2]);
    // P has one trie node; P.B has three (one per distinct prefix)
    assert_eq!(stats.candidates, 1 + 3);
}

#[test]
fn impact2_selective_elements_prune_search() {
    // Section 5.1 Impact 2: a rare element early cuts the search space.
    // The order-free search reorders by link selectivity automatically, so
    // the candidate count stays near the selective path's frequency even
    // when the query lists common elements first.
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let mut pt = PathTable::new();
    let mut trie = xseq_index::SequenceTrie::new();
    // 50 docs with a common chain, one of which has the rare element
    for i in 0..50u32 {
        let mut specs = vec!["P", "P.U", "P.U.M"];
        if i == 17 {
            specs.push("P.J"); // rare 'Johnson'
        }
        // vary a value so tries don't fully collapse
        let leaf = format!("P.U.M.x{i}");
        specs.push(Box::leak(leaf.into_boxed_str()));
        let seq = Sequence(specs.iter().map(|s| p(&mut st, &mut pt, s)).collect());
        trie.insert(&seq, i);
    }
    trie.freeze();
    let q = Sequence(vec![
        p(&mut st, &mut pt, "P"),
        p(&mut st, &mut pt, "P.U"),
        p(&mut st, &mut pt, "P.U.M"),
        p(&mut st, &mut pt, "P.J"),
    ]);
    let qs = QuerySequence::from_sequence(&q, &pt);
    let (docs, stats) = xseq_index::tree_search(&trie, &qs);
    assert_eq!(docs, vec![17]);
    assert!(
        stats.candidates <= 8,
        "selectivity ordering keeps candidates near the rare link: {stats:?}"
    );
}
