//! Mutation tests for the integrity verifier: seed deliberate corruptions
//! into otherwise-clean frozen tries and assert the verifier pinpoints
//! them — the right invariant class, anchored at the corrupted
//! coordinates — while clean indexes of any shape verify clean (no false
//! positives, no false negatives).

use proptest::prelude::*;
use xseq_index::{InvariantClass, PlanOptions, XmlIndex};
use xseq_sequence::Strategy as SeqStrategy;
use xseq_xml::{Document, PathTable, SymbolTable, ValueMode};

/// Each doc: node `i` (1-based) attaches under `parents[i-1] % i` with
/// label `labels[i] % alphabet` — the same compact recipe the sequencing
/// proptests use.
#[derive(Debug, Clone)]
struct CorpusRecipe {
    docs: Vec<(Vec<u32>, Vec<u8>)>,
    alphabet: u8,
}

fn corpus_recipe(max_docs: usize, max_nodes: usize) -> impl Strategy<Value = CorpusRecipe> {
    (
        proptest::collection::vec(
            (1..max_nodes).prop_flat_map(|n| {
                (
                    proptest::collection::vec(any::<u32>(), n),
                    proptest::collection::vec(any::<u8>(), n + 1),
                )
            }),
            1..max_docs,
        ),
        2u8..5,
    )
        .prop_map(|(docs, alphabet)| CorpusRecipe { docs, alphabet })
}

fn build_index(recipe: &CorpusRecipe) -> (XmlIndex, PathTable) {
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let syms: Vec<_> = (0..recipe.alphabet)
        .map(|i| st.elem(&format!("e{i}")))
        .collect();
    let docs: Vec<Document> = recipe
        .docs
        .iter()
        .map(|(parents, labels)| {
            let mut doc = Document::with_root(syms[(labels[0] % recipe.alphabet) as usize]);
            for i in 1..=parents.len() {
                let parent = parents[i - 1] % i as u32;
                doc.child(parent, syms[(labels[i] % recipe.alphabet) as usize]);
            }
            doc
        })
        .collect();
    let mut paths = PathTable::new();
    let index = XmlIndex::build(
        &docs,
        &mut paths,
        SeqStrategy::DepthFirst,
        PlanOptions::default(),
    );
    (index, paths)
}

#[test]
fn empty_index_verifies_clean_without_panicking() {
    let mut paths = PathTable::new();
    let index = XmlIndex::build(
        &[],
        &mut paths,
        SeqStrategy::DepthFirst,
        PlanOptions::default(),
    );
    let report = index.verify_integrity(&mut paths);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.sequences_checked, 0);
}

#[test]
fn single_doc_index_verifies_clean() {
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let a = st.elem("a");
    let b = st.elem("b");
    let mut doc = Document::with_root(a);
    let root = doc.root().expect("rooted");
    doc.child(root, b);
    let mut paths = PathTable::new();
    let index = XmlIndex::build(
        &[doc],
        &mut paths,
        SeqStrategy::DepthFirst,
        PlanOptions::default(),
    );
    let report = index.verify_integrity(&mut paths);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.sequences_checked, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No false positives: every clean index verifies clean.
    #[test]
    fn clean_indexes_have_zero_violations(recipe in corpus_recipe(8, 20)) {
        let (index, mut paths) = build_index(&recipe);
        let report = index.verify_integrity(&mut paths);
        prop_assert!(report.is_clean(), "{}", report.render());
        prop_assert_eq!(report.sequences_checked, index.trie().sequence_count());
    }

    /// Swapping two adjacent path-link serials must surface as `LinkOrder`
    /// anchored at the out-of-order entry.
    #[test]
    fn swapped_link_serials_are_pinpointed(
        recipe in corpus_recipe(8, 20),
        pick in any::<u32>(),
    ) {
        let (mut index, _paths) = build_index(&recipe);
        let swapped = {
            let f = index
                .trie_mut()
                .corrupt_frozen()
                .expect("build() freezes");
            let mut eligible: Vec<_> = f
                .links
                .values_mut()
                .filter(|v| v.len() >= 2)
                .collect();
            if eligible.is_empty() {
                None
            } else {
                let idx = pick as usize % eligible.len();
                let link = &mut eligible[idx];
                let i = pick as usize % (link.len() - 1);
                let (a, b) = (link[i].serial, link[i + 1].serial);
                link[i].serial = b;
                link[i + 1].serial = a;
                Some(a.min(b))
            }
        };
        let Some(low) = swapped else {
            return Ok(()); // no multi-entry link in this corpus shape
        };
        let report = index.verify_structure();
        prop_assert!(report.has(InvariantClass::LinkOrder), "{}", report.render());
        prop_assert!(
            report
                .violations
                .iter()
                .any(|v| v.class == InvariantClass::LinkOrder && v.serial == Some(low)),
            "LinkOrder must anchor at the out-of-order serial {low}:\n{}",
            report.render()
        );
    }

    /// Widening a child's preorder range past its parent must surface as
    /// `PreorderNesting` at the child or `SubtreeExtent` at an ancestor.
    #[test]
    fn widened_child_range_is_pinpointed(
        recipe in corpus_recipe(8, 20),
        pick in any::<u32>(),
    ) {
        let (mut index, _paths) = build_index(&recipe);
        let (node, parent) = {
            let trie = index.trie_mut();
            // Any real (non-virtual-root) node: arena ids 1..=node_count().
            let n = (1 + pick as usize % trie.node_count()) as u32;
            let parent = trie.parent(n);
            let f = trie.corrupt_frozen().expect("build() freezes");
            f.max_desc[n as usize] = f.max_desc.len() as u32 + 7;
            (n, parent)
        };
        let report = index.verify_structure();
        prop_assert!(
            report.violations.iter().any(|v| {
                (v.class == InvariantClass::PreorderNesting && v.node == Some(node))
                    || (v.class == InvariantClass::SubtreeExtent && v.node == Some(parent))
            }),
            "corrupting node {node} (parent {parent}) must anchor there:\n{}",
            report.render()
        );
    }

    /// Flipping one designator of a stored sequence (rewriting a trie
    /// node's path) must surface as a sequence-level violation
    /// (`SequenceF2`/`RoundTrip`) or as broken link coverage for the two
    /// paths involved.
    #[test]
    fn flipped_designator_is_pinpointed(
        recipe in corpus_recipe(8, 20),
        pick in any::<u32>(),
    ) {
        let (mut index, mut paths) = build_index(&recipe);
        {
            let trie = index.trie_mut();
            let n = (1 + pick as usize % trie.node_count()) as u32;
            let old = trie.path(n);
            // Flip to any other path stored in the trie.
            let other = (1..=trie.node_count() as u32)
                .map(|m| trie.path(m))
                .find(|&p| p != old);
            let Some(other) = other else {
                return Ok(()); // single-path corpus: nothing to flip to
            };
            trie.corrupt_set_path(n, other);
        }
        let report = index.verify_integrity(&mut paths);
        prop_assert!(!report.is_clean(), "flip must be caught");
        prop_assert!(
            report.has(InvariantClass::SequenceF2)
                || report.has(InvariantClass::RoundTrip)
                || report.has(InvariantClass::LinkCoverage),
            "wrong class for a designator flip:\n{}",
            report.render()
        );
    }
}
