//! Interleaving model checks for the update overlay, using the
//! `xseq-telemetry::sched` harness that validated `BoundedRing` and the
//! exec pool's chunk queue.
//!
//! `xseq_index::check_updates` replays scripted insert/remove/query ops
//! over every interleaving (or a seeded sample of a too-large space),
//! checking the real `DeltaSegment` + `Tombstones` pair against a
//! reference set model.  The unit tests in `delta.rs` cover the small
//! exhaustive spaces; these scripts are the larger, mixed-op spaces the
//! sampled mode exists for.

use xseq_index::{check_updates, UpdateOp};

use UpdateOp::{Insert, Query, Remove};

#[test]
fn exhaustive_two_writers_with_reader() {
    // One inserting thread, one removing thread, one querying thread:
    // C(7; 3,2,2) = 210 schedules, small enough to enumerate fully.
    let threads = vec![
        vec![Insert(0), Insert(1), Insert(2)],
        vec![Remove(1), Remove(3)],
        vec![Query, Query],
    ];
    let checked = check_updates(&threads, usize::MAX, 0).expect("all interleavings consistent");
    assert_eq!(checked, 210, "full space enumerated");
}

#[test]
fn sampled_mixed_scripts_hold() {
    // Three threads mixing all three op kinds, including a remove that can
    // race ahead of its insert (tombstones are permanent until compaction,
    // so the remove must win in every interleaving).
    let threads = vec![
        vec![Insert(0), Remove(2), Insert(1), Query],
        vec![Insert(2), Query, Remove(0), Insert(3)],
        vec![Query, Insert(4), Remove(4), Query],
    ];
    let checked = check_updates(&threads, 512, 0x5eed).expect("sampled interleavings consistent");
    assert_eq!(checked, 512, "sample budget exhausted");
}

#[test]
fn remove_only_and_insert_only_threads() {
    // Degenerate scripts: every op of one kind on its own thread.  Queries
    // interleave against a window where any subset of inserts/removes has
    // landed; the checker's model must match at every cut.
    let threads = vec![
        vec![Insert(0), Insert(1), Insert(2), Insert(3)],
        vec![Remove(0), Remove(1), Remove(2), Remove(3)],
        vec![Query, Query, Query],
    ];
    let checked = check_updates(&threads, 2_000, 7).expect("all windows consistent");
    assert!(checked > 0);
}
