//! Query equivalence (Theorems 2 and 3): for every corpus and every tree
//! pattern, constraint subsequence matching over the index returns exactly
//! the documents the brute-force structure matcher accepts — no false
//! alarms, no false dismissals, under every query-consistent strategy.

use proptest::prelude::*;
use xseq_index::{PlanOptions, XmlIndex};
use xseq_schema::{ProbabilityModel, WeightMap};
use xseq_sequence::Strategy as SeqStrategy;
use xseq_xml::{
    matcher::structure_match, Axis, Document, PathTable, PatternLabel, SymbolTable, TreePattern,
    ValueMode,
};

#[derive(Debug, Clone)]
struct CorpusRecipe {
    /// Each doc: (parent choices, label choices).
    docs: Vec<(Vec<u32>, Vec<u8>)>,
    alphabet: u8,
}

fn corpus_recipe(
    max_docs: usize,
    max_nodes: usize,
    alphabet: u8,
) -> impl Strategy<Value = CorpusRecipe> {
    proptest::collection::vec(
        (1..max_nodes).prop_flat_map(|n| {
            (
                proptest::collection::vec(any::<u32>(), n),
                proptest::collection::vec(any::<u8>(), n + 1),
            )
        }),
        1..max_docs,
    )
    .prop_map(move |docs| CorpusRecipe { docs, alphabet })
}

#[derive(Debug, Clone)]
struct PatternRecipe {
    parents: Vec<u32>,
    labels: Vec<u8>,
    axes: Vec<bool>,
    wildcard_mask: Vec<bool>,
}

fn pattern_recipe(max_nodes: usize) -> impl Strategy<Value = PatternRecipe> {
    (1..max_nodes).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), n - 1),
            proptest::collection::vec(any::<u8>(), n),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(proptest::bool::weighted(0.2), n),
        )
            .prop_map(|(parents, labels, axes, wildcard_mask)| PatternRecipe {
                parents,
                labels,
                axes,
                wildcard_mask,
            })
    })
}

fn build_corpus(recipe: &CorpusRecipe, st: &mut SymbolTable) -> Vec<Document> {
    // Alphabet: elements e0..e{k-1} where the root is always e0, so queries
    // rooted at e0 have a chance to match.
    let syms: Vec<_> = (0..recipe.alphabet.max(1))
        .map(|i| st.elem(&format!("e{i}")))
        .collect();
    recipe
        .docs
        .iter()
        .map(|(parents, labels)| {
            let mut doc = Document::with_root(syms[0]);
            for i in 1..=parents.len() {
                let parent = parents[i - 1] % i as u32;
                let lab = syms[(labels[i] as usize) % syms.len()];
                doc.child(parent, lab);
            }
            doc
        })
        .collect()
}

fn build_pattern(recipe: &PatternRecipe, st: &mut SymbolTable, alphabet: u8) -> TreePattern {
    let n = recipe.labels.len();
    let lab = |i: usize, st: &mut SymbolTable| -> PatternLabel {
        if recipe.wildcard_mask[i] {
            PatternLabel::AnyElem
        } else if i == 0 {
            PatternLabel::Elem(st.designator("e0"))
        } else {
            let k = (recipe.labels[i] as usize) % alphabet.max(1) as usize;
            PatternLabel::Elem(st.designator(&format!("e{k}")))
        }
    };
    let axis = |i: usize| {
        if recipe.axes[i] {
            Axis::Descendant
        } else {
            Axis::Child
        }
    };
    let root_label = lab(0, st);
    let mut q = TreePattern::with_root_axis(root_label, axis(0));
    for i in 1..n {
        let parent = recipe.parents[i - 1] % i as u32;
        q.add(parent, axis(i), lab(i, st));
    }
    q
}

fn oracle(pattern: &TreePattern, docs: &[Document]) -> Vec<u32> {
    docs.iter()
        .enumerate()
        .filter(|(_, d)| structure_match(pattern, d))
        .map(|(i, _)| i as u32)
        .collect()
}

fn check_equivalence(
    corpus: &CorpusRecipe,
    pattern: &PatternRecipe,
    strategy_of: impl Fn(&[Document], &mut PathTable) -> SeqStrategy,
) -> Result<(), TestCaseError> {
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let docs = build_corpus(corpus, &mut st);
    let q = build_pattern(pattern, &mut st, corpus.alphabet);
    let mut paths = PathTable::new();
    let strategy = strategy_of(&docs, &mut paths);
    let index = XmlIndex::build(&docs, &mut paths, strategy, PlanOptions::default());
    let got = index.query(&q, &paths).docs;
    let expect = oracle(&q, &docs);
    prop_assert_eq!(
        got,
        expect,
        "pattern {} over {} docs",
        q.render(&st),
        docs.len()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn equivalence_depth_first_exact(corpus in corpus_recipe(8, 14, 3), pat in pattern_recipe(6)) {
        // force exact patterns: no wildcards, no descendant axes (root child)
        let mut pat = pat;
        for w in &mut pat.wildcard_mask { *w = false; }
        for a in &mut pat.axes { *a = false; }
        check_equivalence(&corpus, &pat, |_, _| SeqStrategy::DepthFirst)?;
    }

    #[test]
    fn equivalence_depth_first_wildcards(corpus in corpus_recipe(6, 10, 3), pat in pattern_recipe(5)) {
        check_equivalence(&corpus, &pat, |_, _| SeqStrategy::DepthFirst)?;
    }

    #[test]
    fn equivalence_probability_strategy(corpus in corpus_recipe(6, 12, 3), pat in pattern_recipe(5)) {
        check_equivalence(&corpus, &pat, |docs, paths| {
            let model = ProbabilityModel::estimate(docs, paths, 0);
            SeqStrategy::Probability(model.priorities(paths, &WeightMap::default()))
        })?;
    }

    #[test]
    fn equivalence_weighted_probability(corpus in corpus_recipe(6, 12, 3), pat in pattern_recipe(5), boost in 1u8..4) {
        // weights change the sequence order but must never change answers
        check_equivalence(&corpus, &pat, |docs, paths| {
            let model = ProbabilityModel::estimate(docs, paths, 0);
            let mut w = WeightMap::default();
            // boost an arbitrary existing path
            if let Some(p) = paths.iter().nth(boost as usize) {
                w.set(p, 50.0);
            }
            SeqStrategy::Probability(model.priorities(paths, &w))
        })?;
    }

    #[test]
    fn equivalence_ordered_algorithm1_depth_first(corpus in corpus_recipe(6, 12, 3), pat in pattern_recipe(5)) {
        // The paper-faithful ordered search (Algorithm 1 + isomorphic
        // expansion) is complete for the order-consistent canonical DF
        // strategy.
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = build_corpus(&corpus, &mut st);
        let q = build_pattern(&pat, &mut st, corpus.alphabet);
        let mut paths = PathTable::new();
        let index = XmlIndex::build(&docs, &mut paths, SeqStrategy::DepthFirst, PlanOptions::default());
        let got = index.query_ordered(&q, &paths).docs;
        let expect = oracle(&q, &docs);
        prop_assert_eq!(got, expect, "pattern {}", q.render(&st));
    }

    #[test]
    fn constraint_results_subset_of_naive(corpus in corpus_recipe(6, 12, 3), pat in pattern_recipe(5)) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = build_corpus(&corpus, &mut st);
        let q = build_pattern(&pat, &mut st, corpus.alphabet);
        let mut paths = PathTable::new();
        let index = XmlIndex::build(&docs, &mut paths, SeqStrategy::DepthFirst, PlanOptions::default());
        let strict = index.query(&q, &paths).docs;
        let naive = index.query_naive(&q, &paths).docs;
        for d in &strict {
            prop_assert!(naive.contains(d), "constraint result missing from naive");
        }
    }
}
