//! DBLP-shaped bibliography records.
//!
//! The paper indexes the DBLP bibliography: 407,417 records, 8,537,681
//! nodes, max depth 6, average constraint-sequence length ≈ 21.  This
//! generator reproduces that shape deterministically: publication records
//! (`article`, `inproceedings`, `book`, `phdthesis`) with the DBLP field
//! vocabulary, skewed value pools (a small set of very common first names —
//! including `David` — over a long tail), and the `Maier` key Table 8's Q2
//! looks up.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xseq_xml::{Document, SymbolTable};

/// Generator for DBLP-like records.
#[derive(Debug)]
pub struct DblpGenerator {
    rng: StdRng,
}

const FIRST_NAMES: &[&str] = &[
    "David", "Michael", "Wei", "Elena", "John", "Maria", "Haixun", "Xiaofeng", "Philip", "Susan",
    "Rakesh", "Jennifer", "Hector", "Jeffrey", "Divesh", "Raghu", "Surajit", "Moshe", "Dan",
    "Christos",
];

const LAST_NAMES: &[&str] = &[
    "Maier",
    "Wang",
    "Meng",
    "Smith",
    "Garcia",
    "Ullman",
    "Widom",
    "DeWitt",
    "Abiteboul",
    "Stonebraker",
    "Gray",
    "Agrawal",
    "Ramakrishnan",
    "Chaudhuri",
    "Vardi",
    "Suciu",
    "Faloutsos",
    "Naughton",
    "Yu",
    "Fan",
];

const TITLE_WORDS: &[&str] = &[
    "indexing",
    "query",
    "xml",
    "sequence",
    "tree",
    "pattern",
    "database",
    "optimization",
    "structure",
    "semistructured",
    "join",
    "stream",
    "mining",
    "distributed",
    "holistic",
    "adaptive",
    "path",
    "storage",
    "cache",
    "benchmark",
];

const JOURNALS: &[&str] = &[
    "TODS",
    "VLDBJ",
    "TKDE",
    "SIGMOD-Record",
    "Information-Systems",
    "JACM",
];

const VENUES: &[&str] = &[
    "SIGMOD", "VLDB", "ICDE", "EDBT", "PODS", "CIKM", "WWW", "KDD",
];

impl DblpGenerator {
    /// A generator seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        DblpGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates `n` records.
    pub fn generate(&mut self, n: usize, symbols: &mut SymbolTable) -> Vec<Document> {
        (0..n).map(|i| self.record(i, symbols)).collect()
    }

    /// Zipf-ish pick: low indices are much more likely.
    fn skewed(&mut self, n: usize) -> usize {
        // p(i) ∝ 1/(i+1): inverse-CDF by rejection-free trick
        let h: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
        let mut u = self.rng.gen_range(0.0..h);
        for i in 0..n {
            u -= 1.0 / (i + 1) as f64;
            if u <= 0.0 {
                return i;
            }
        }
        n - 1
    }

    fn author(&mut self) -> String {
        let f = FIRST_NAMES[self.skewed(FIRST_NAMES.len())];
        let l = LAST_NAMES[self.rng.gen_range(0..LAST_NAMES.len())];
        format!("{f} {l}")
    }

    fn record(&mut self, i: usize, st: &mut SymbolTable) -> Document {
        let kind = match self.rng.gen_range(0..100) {
            0..=54 => "inproceedings",
            55..=89 => "article",
            90..=96 => "book",
            _ => "phdthesis",
        };
        let root_sym = st.elem(kind);
        let mut doc = Document::with_root(root_sym);
        let root = doc.root().expect("Document::with_root always has a root");

        // key attribute, e.g. "conf/sigmod/Maier95"; surname-only keys make
        // Table 8's /book[key='Maier'] meaningful
        let key = if kind == "book" && self.rng.gen_range(0..10) == 0 {
            LAST_NAMES[self.rng.gen_range(0..LAST_NAMES.len())].to_string()
        } else {
            format!(
                "{}/{}/{}{}",
                if kind == "article" {
                    "journals"
                } else {
                    "conf"
                },
                VENUES[self.rng.gen_range(0..VENUES.len())].to_lowercase(),
                LAST_NAMES[self.rng.gen_range(0..LAST_NAMES.len())],
                80 + (i % 25)
            )
        };
        let keyn = doc.child(root, st.elem("key"));
        let v = st.val(&key);
        doc.child(keyn, v);

        // authors: 1–3, "David"-heavy first-name distribution; the text node
        // under author is the first name followed by the surname, plus a
        // first-name-only author occasionally so //author[text='David'] has
        // hits like the paper's Q3/Q4.
        let n_auth = 1 + self.skewed(3);
        for _ in 0..n_auth {
            let an = doc.child(root, st.elem("author"));
            let name = if self.rng.gen_range(0..12) == 0 {
                FIRST_NAMES[self.skewed(FIRST_NAMES.len())].to_string()
            } else {
                self.author()
            };
            let v = st.val(&name);
            doc.child(an, v);
        }

        // title: 3–6 skewed words
        let tn = doc.child(root, st.elem("title"));
        let words: Vec<&str> = (0..self.rng.gen_range(3..=6))
            .map(|_| TITLE_WORDS[self.skewed(TITLE_WORDS.len())])
            .collect();
        let v = st.val(&words.join(" "));
        doc.child(tn, v);

        // year
        let yn = doc.child(root, st.elem("year"));
        let v = st.val(&format!("{}", 1980 + self.skewed(25)));
        doc.child(yn, v);

        // venue-specific fields
        match kind {
            "article" => {
                let jn = doc.child(root, st.elem("journal"));
                let v = st.val(JOURNALS[self.skewed(JOURNALS.len())]);
                doc.child(jn, v);
                let vn = doc.child(root, st.elem("volume"));
                let v = st.val(&format!("{}", 1 + self.rng.gen_range(0..40)));
                doc.child(vn, v);
            }
            "inproceedings" => {
                let bn = doc.child(root, st.elem("booktitle"));
                let v = st.val(VENUES[self.skewed(VENUES.len())]);
                doc.child(bn, v);
            }
            "book" => {
                let pn = doc.child(root, st.elem("publisher"));
                let v = st.val(["Morgan-Kaufmann", "Springer", "ACM-Press"][self.skewed(3)]);
                doc.child(pn, v);
            }
            _ => {
                let sn = doc.child(root, st.elem("school"));
                let v = st.val(["Stanford", "Wisconsin", "MIT", "Berkeley"][self.skewed(4)]);
                doc.child(sn, v);
            }
        }

        // pages, optional ee/url
        if self.rng.gen_range(0..10) < 8 {
            let pn = doc.child(root, st.elem("pages"));
            let a = self.rng.gen_range(1..400);
            let v = st.val(&format!("{}-{}", a, a + self.rng.gen_range(5..20)));
            doc.child(pn, v);
        }
        if self.rng.gen_range(0..10) < 4 {
            let en = doc.child(root, st.elem("ee"));
            let v = st.val(&format!("db/{kind}/{i}.html"));
            doc.child(en, v);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::ValueMode;

    #[test]
    fn shape_matches_dblp() {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = DblpGenerator::new(1).generate(500, &mut st);
        assert_eq!(docs.len(), 500);
        let avg: f64 = docs.iter().map(|d| d.len()).sum::<usize>() as f64 / 500.0;
        assert!(
            (10.0..30.0).contains(&avg),
            "avg record size ≈ 21 like DBLP, got {avg}"
        );
        for d in &docs {
            assert!(d.height() <= 6, "DBLP max depth is 6");
        }
    }

    #[test]
    fn queries_have_answers() {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = DblpGenerator::new(2).generate(2000, &mut st);
        // some author value starting with David
        let david_exists = st.values.lookup("David").is_some();
        assert!(david_exists, "first-name-only 'David' authors must exist");
        let maier = st.values.lookup("Maier");
        assert!(maier.is_some(), "a book with key 'Maier' must exist");
        let inpro = st.lookup_designator("inproceedings");
        assert!(inpro.is_some());
        let _ = docs;
    }

    #[test]
    fn deterministic() {
        let mut s1 = SymbolTable::with_value_mode(ValueMode::Intern);
        let mut s2 = SymbolTable::with_value_mode(ValueMode::Intern);
        let a = DblpGenerator::new(77).generate(50, &mut s1);
        let b = DblpGenerator::new(77).generate(50, &mut s2);
        assert_eq!(a, b);
    }
}
