//! XMark-shaped substructures.
//!
//! "An XMARK document consists of sub structures such as item (objects for
//! sale), person (buyers and sellers), open auction, closed auction, etc.
//! We convert each instance of these sub structures into a constraint
//! sequence." (Section 6.1.)  Tables 5/6 index these substructures with and
//! without identical sibling nodes; Table 7 runs Q1–Q3 against them, so the
//! value pools contain the constants those queries use (`United States`,
//! `07/05/2000`-style dates, `personNNNNN` ids, ages including `32`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xseq_xml::{Document, NodeId, SymbolTable};

/// Generator options.
#[derive(Debug, Clone, Copy)]
pub struct XmarkOptions {
    /// Allow repeated elements (incategory*, bidder*, mail*) — the
    /// "identical sibling nodes" variant of Table 5.  When false every
    /// repeatable element is capped at one occurrence (Table 6).
    pub identical_siblings: bool,
}

impl Default for XmarkOptions {
    fn default() -> Self {
        XmarkOptions {
            identical_siblings: true,
        }
    }
}

/// Generator for XMark substructure records.
#[derive(Debug)]
pub struct XmarkGenerator {
    rng: StdRng,
    opts: XmarkOptions,
    person_counter: u32,
}

const COUNTRIES: &[&str] = &[
    "United States",
    "Germany",
    "China",
    "France",
    "Japan",
    "Brazil",
    "India",
    "Canada",
];

const CATEGORIES: &[&str] = &[
    "category1",
    "category2",
    "category3",
    "category4",
    "category5",
    "category6",
];

const CITIES: &[&str] = &["Seattle", "Berlin", "Shanghai", "Paris", "Tokyo", "Toronto"];

impl XmarkGenerator {
    /// A seeded generator.
    pub fn new(seed: u64, opts: XmarkOptions) -> Self {
        XmarkGenerator {
            rng: StdRng::seed_from_u64(seed),
            opts,
            person_counter: 0,
        }
    }

    /// Generates `n` substructure records under a shared `site` root,
    /// cycling through the four substructure kinds.  Each record is one
    /// indexed document, exactly as the paper decomposes XMark.
    pub fn generate(&mut self, n: usize, symbols: &mut SymbolTable) -> Vec<Document> {
        (0..n)
            .map(|i| match i % 4 {
                0 => self.item(symbols),
                1 => self.person(symbols),
                2 => self.open_auction(symbols),
                _ => self.closed_auction(symbols),
            })
            .collect()
    }

    fn repeat(&mut self, max: u32) -> u32 {
        if self.opts.identical_siblings {
            1 + self.rng.gen_range(0..max)
        } else {
            1
        }
    }

    fn date(&mut self) -> String {
        // the pool includes Q1's 07/05/2000 and Q3's 12/15/1999
        let m = self.rng.gen_range(1..=12);
        let d = self.rng.gen_range(1..=28);
        let y = self.rng.gen_range(1998..=2001);
        format!("{m:02}/{d:02}/{y}")
    }

    fn person_ref(&mut self) -> String {
        // existing-person skew, bounded so that Q3's person11304 exists once
        // a few thousand records are generated
        let id = self.rng.gen_range(0..(self.person_counter + 50) * 3 / 2);
        format!("person{id}")
    }

    fn text_leaf(
        &mut self,
        doc: &mut Document,
        parent: NodeId,
        name: &str,
        value: &str,
        st: &mut SymbolTable,
    ) {
        let n = doc.child(parent, st.elem(name));
        let v = st.val(value);
        doc.child(n, v);
    }

    /// `site/regions/.../item` substructure.
    fn item(&mut self, st: &mut SymbolTable) -> Document {
        let mut doc = Document::with_root(st.elem("site"));
        let root = doc.root().expect("Document::with_root always has a root");
        let item = doc.child(root, st.elem("item"));
        let loc = COUNTRIES[self.rng.gen_range(0..COUNTRIES.len())];
        self.text_leaf(&mut doc, item, "location", loc, st);
        let quantity = format!("{}", self.rng.gen_range(1..5));
        self.text_leaf(&mut doc, item, "quantity", &quantity, st);
        let name = format!("item name {}", self.rng.gen_range(0..5000));
        self.text_leaf(&mut doc, item, "name", &name, st);
        self.text_leaf(&mut doc, item, "payment", "Creditcard", st);
        for _ in 0..self.repeat(4) {
            let inc = doc.child(item, st.elem("incategory"));
            let v = st.val(CATEGORIES[self.rng.gen_range(0..CATEGORIES.len())]);
            doc.child(inc, v);
        }
        let mailbox = doc.child(item, st.elem("mailbox"));
        for _ in 0..self.repeat(3) {
            let mail = doc.child(mailbox, st.elem("mail"));
            let from = self.person_ref();
            self.text_leaf(&mut doc, mail, "from", &from, st);
            let to = self.person_ref();
            self.text_leaf(&mut doc, mail, "to", &to, st);
            let date = self.date();
            self.text_leaf(&mut doc, mail, "date", &date, st);
            let body = format!("mail body {}", self.rng.gen_range(0..1000));
            self.text_leaf(&mut doc, mail, "text", &body, st);
        }
        doc
    }

    /// `site/people/person` substructure.
    fn person(&mut self, st: &mut SymbolTable) -> Document {
        let id = self.person_counter;
        self.person_counter += 1;
        let mut doc = Document::with_root(st.elem("site"));
        let root = doc.root().expect("Document::with_root always has a root");
        let person = doc.child(root, st.elem("person"));
        self.text_leaf(&mut doc, person, "id", &format!("person{id}"), st);
        let pname = format!("name {}", self.rng.gen_range(0..20000));
        self.text_leaf(&mut doc, person, "name", &pname, st);
        let email = format!("mailto:u{}@example.com", self.rng.gen_range(0..20000));
        self.text_leaf(&mut doc, person, "emailaddress", &email, st);
        if self.rng.gen_bool(0.6) {
            let addr = doc.child(person, st.elem("address"));
            let street = format!("{} Main St", self.rng.gen_range(1..999));
            self.text_leaf(&mut doc, addr, "street", &street, st);
            let city = CITIES[self.rng.gen_range(0..CITIES.len())];
            self.text_leaf(&mut doc, addr, "city", city, st);
            let country = COUNTRIES[self.rng.gen_range(0..COUNTRIES.len())];
            self.text_leaf(&mut doc, addr, "country", country, st);
        }
        let profile = doc.child(person, st.elem("profile"));
        for _ in 0..self.repeat(3) {
            let interest = doc.child(profile, st.elem("interest"));
            let v = st.val(CATEGORIES[self.rng.gen_range(0..CATEGORIES.len())]);
            doc.child(interest, v);
        }
        // Q2 filters //person/*/age[text='32']: age sits under profile
        if self.rng.gen_bool(0.7) {
            let age = format!("{}", 18 + self.rng.gen_range(0..50));
            self.text_leaf(&mut doc, profile, "age", &age, st);
        }
        doc
    }

    /// `site/open_auctions/open_auction` substructure.
    fn open_auction(&mut self, st: &mut SymbolTable) -> Document {
        let mut doc = Document::with_root(st.elem("site"));
        let root = doc.root().expect("Document::with_root always has a root");
        let oa = doc.child(root, st.elem("open_auction"));
        let initial = format!(
            "{}.{:02}",
            self.rng.gen_range(1..200),
            self.rng.gen_range(0..100)
        );
        self.text_leaf(&mut doc, oa, "initial", &initial, st);
        if self.rng.gen_bool(0.5) {
            let reserve = format!("{}", self.rng.gen_range(10..500));
            self.text_leaf(&mut doc, oa, "reserve", &reserve, st);
        }
        for _ in 0..self.repeat(4) {
            let bidder = doc.child(oa, st.elem("bidder"));
            let date = self.date();
            self.text_leaf(&mut doc, bidder, "date", &date, st);
            let pref = self.person_ref();
            self.text_leaf(&mut doc, bidder, "personref", &pref, st);
            let inc = format!("{}.00", self.rng.gen_range(1..30));
            self.text_leaf(&mut doc, bidder, "increase", &inc, st);
        }
        let current = format!("{}", self.rng.gen_range(10..900));
        self.text_leaf(&mut doc, oa, "current", &current, st);
        let seller = doc.child(oa, st.elem("seller"));
        let sp = self.person_ref();
        self.text_leaf(&mut doc, seller, "person", &sp, st);
        let itemref = format!("item{}", self.rng.gen_range(0..30000));
        self.text_leaf(&mut doc, oa, "itemref", &itemref, st);
        doc
    }

    /// `site/closed_auctions/closed_auction` substructure.
    fn closed_auction(&mut self, st: &mut SymbolTable) -> Document {
        let mut doc = Document::with_root(st.elem("site"));
        let root = doc.root().expect("Document::with_root always has a root");
        let ca = doc.child(root, st.elem("closed_auction"));
        let seller = doc.child(ca, st.elem("seller"));
        let sp = self.person_ref();
        self.text_leaf(&mut doc, seller, "person", &sp, st);
        let buyer = doc.child(ca, st.elem("buyer"));
        let bp = self.person_ref();
        self.text_leaf(&mut doc, buyer, "person", &bp, st);
        let itemref = format!("item{}", self.rng.gen_range(0..30000));
        self.text_leaf(&mut doc, ca, "itemref", &itemref, st);
        let price = format!(
            "{}.{:02}",
            self.rng.gen_range(5..999),
            self.rng.gen_range(0..100)
        );
        self.text_leaf(&mut doc, ca, "price", &price, st);
        let date = self.date();
        self.text_leaf(&mut doc, ca, "date", &date, st);
        let quantity = format!("{}", self.rng.gen_range(1..4));
        self.text_leaf(&mut doc, ca, "quantity", &quantity, st);
        doc
    }
}

/// Finds an actual `(seller person, date)` pair from a generated
/// closed-auction record, for instantiating Table 4's Q3 with constants
/// that exist in this (seeded) dataset — the paper queried `person11304`
/// because it existed in *their* XMark instance.
pub fn q3_constants(docs: &[Document], st: &SymbolTable) -> Option<(String, String)> {
    let ca = st.lookup_designator("closed_auction")?;
    let seller = st.lookup_designator("seller")?;
    let person = st.lookup_designator("person")?;
    let date = st.lookup_designator("date")?;
    for doc in docs {
        let root = doc.root()?;
        let Some(&can) = doc
            .children(root)
            .iter()
            .find(|&&n| doc.sym(n).as_elem() == Some(ca))
        else {
            continue;
        };
        let mut person_val = None;
        let mut date_val = None;
        for &c in doc.children(can) {
            if doc.sym(c).as_elem() == Some(seller) {
                for &p in doc.children(c) {
                    if doc.sym(p).as_elem() == Some(person) {
                        let v = doc.sym(doc.children(p)[0]).as_value()?;
                        person_val = st.values.resolve(v).map(str::to_owned);
                    }
                }
            }
            if doc.sym(c).as_elem() == Some(date) {
                let v = doc.sym(doc.children(c)[0]).as_value()?;
                date_val = st.values.resolve(v).map(str::to_owned);
            }
        }
        if let (Some(p), Some(d)) = (person_val, date_val) {
            return Some((p, d));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::ValueMode;

    fn st() -> SymbolTable {
        SymbolTable::with_value_mode(ValueMode::Intern)
    }

    #[test]
    fn generates_all_substructures() {
        let mut s = st();
        let docs = XmarkGenerator::new(1, XmarkOptions::default()).generate(40, &mut s);
        assert_eq!(docs.len(), 40);
        for name in ["item", "person", "open_auction", "closed_auction", "site"] {
            assert!(s.lookup_designator(name).is_some(), "{name}");
        }
    }

    #[test]
    fn no_identical_siblings_variant() {
        let mut s = st();
        let docs = XmarkGenerator::new(
            2,
            XmarkOptions {
                identical_siblings: false,
            },
        )
        .generate(200, &mut s);
        for doc in &docs {
            for n in doc.node_ids() {
                let kids = doc.children(n);
                for (i, &a) in kids.iter().enumerate() {
                    for &b in &kids[i + 1..] {
                        assert_ne!(
                            doc.sym(a),
                            doc.sym(b),
                            "no identical siblings in the Table 6 variant"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn identical_siblings_variant_has_repeats() {
        let mut s = st();
        let docs = XmarkGenerator::new(3, XmarkOptions::default()).generate(200, &mut s);
        let some_repeat = docs.iter().any(|doc| {
            doc.node_ids().any(|n| {
                let kids = doc.children(n);
                kids.iter()
                    .enumerate()
                    .any(|(i, &a)| kids[i + 1..].iter().any(|&b| doc.sym(a) == doc.sym(b)))
            })
        });
        assert!(some_repeat);
    }

    #[test]
    fn query_constants_exist() {
        let mut s = st();
        let _docs = XmarkGenerator::new(4, XmarkOptions::default()).generate(4000, &mut s);
        assert!(s.values.lookup("United States").is_some());
        assert!(s.lookup_designator("location").is_some());
        assert!(s.lookup_designator("age").is_some());
        // at least one age of 32 in 4000 records (50 ages uniform)
        assert!(s.values.lookup("32").is_some());
    }

    #[test]
    fn q3_constants_found() {
        let mut s = st();
        let docs = XmarkGenerator::new(5, XmarkOptions::default()).generate(100, &mut s);
        let (person, date) = q3_constants(&docs, &s).expect("closed auctions exist");
        assert!(person.starts_with("person"));
        assert!(date.contains('/'));
    }

    #[test]
    fn deterministic() {
        let mut s1 = st();
        let mut s2 = st();
        let a = XmarkGenerator::new(9, XmarkOptions::default()).generate(60, &mut s1);
        let b = XmarkGenerator::new(9, XmarkOptions::default()).generate(60, &mut s2);
        assert_eq!(a, b);
    }
}
