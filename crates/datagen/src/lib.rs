//! # xseq-datagen — deterministic workload generation
//!
//! Every dataset of the paper's evaluation, rebuilt as a seeded generator:
//!
//! * [`synthetic`] — the paper's parameterized tree generator
//!   (Section 6.1): a random DTD schema from `L` (max height), `F` (max
//!   fanout), `A` (% value child nodes), `I` (% identical sibling nodes),
//!   then `N` documents whose nodes exist according to per-node occurrence
//!   probabilities drawn from `[P%, 1.0]`.  Datasets are named by their
//!   parameters, e.g. `L3F5A25I0P40`.
//! * [`dblp`] — DBLP-shaped bibliography records (the paper indexes 407,417
//!   records of max depth 6, average constraint-sequence length ≈ 21); the
//!   generator reproduces the shape, the element vocabulary and the value
//!   skew (author names include the `David`s of Table 8's Q3/Q4, keys
//!   include `Maier`).
//! * [`xmark`] — the XMark substructures the paper decomposes the benchmark
//!   into (item / person / open_auction / closed_auction), with and without
//!   identical-sibling repetition, including the constants of Table 4's
//!   queries (`United States`, dates, `personNNNNN`).
//!
//! All generators take a seed and a shared [`xseq_xml::SymbolTable`] and are fully
//! deterministic.
#![forbid(unsafe_code)]

pub mod dblp;
pub mod queries;
pub mod synthetic;
pub mod xmark;

pub use dblp::DblpGenerator;
pub use synthetic::{SyntheticDataset, SyntheticParams};
pub use xmark::{XmarkGenerator, XmarkOptions};

use rand::rngs::StdRng;
use rand::Rng;
use xseq_xml::{Document, NodeId};

/// Draws a random connected root-anchored subtree of `doc` with `len` nodes
/// (or the whole document if smaller) and returns it as a new document —
/// the paper's "random query sequences" for the synthetic experiments
/// (Figure 16: query sequence length is the x-axis).
pub fn random_query_tree(doc: &Document, len: usize, rng: &mut StdRng) -> Document {
    let Some(root) = doc.root() else {
        return Document::new();
    };
    let mut selected: Vec<NodeId> = vec![root];
    let mut frontier: Vec<NodeId> = doc.children(root).to_vec();
    while selected.len() < len && !frontier.is_empty() {
        let i = rng.gen_range(0..frontier.len());
        let n = frontier.swap_remove(i);
        selected.push(n);
        frontier.extend_from_slice(doc.children(n));
    }
    // rebuild as a fresh document preserving relative structure
    let mut out = Document::with_root(doc.sym(root));
    let mut map = std::collections::HashMap::new();
    map.insert(
        root,
        out.root().expect("Document::with_root always has a root"),
    );
    // selected is in discovery order, parents before children
    for &n in &selected[1..] {
        let p = doc.parent(n).expect("non-root");
        let np = map[&p];
        let nn = out.child(np, doc.sym(n));
        map.insert(n, nn);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xseq_xml::matcher::structure_match;
    use xseq_xml::{Axis, PatternLabel, SymbolTable, TreePattern};

    #[test]
    fn random_query_tree_is_contained() {
        let mut st = SymbolTable::default();
        let params = SyntheticParams {
            max_height: 4,
            max_fanout: 3,
            value_pct: 25,
            identical_pct: 20,
            prob_floor_pct: 40,
        };
        let ds = SyntheticDataset::generate(&params, 20, 42, &mut st);
        let mut rng = StdRng::seed_from_u64(7);
        for doc in &ds.docs[..10] {
            let q = random_query_tree(doc, 4, &mut rng);
            assert!(q.len() <= doc.len());
            // the query tree embeds in its source document
            let mut pattern = TreePattern::root(PatternLabel::Elem(
                q.sym(q.root().unwrap()).as_elem().unwrap(),
            ));
            let mut map = vec![0u32; q.len()];
            for n in q.preorder() {
                if n == q.root().unwrap() {
                    continue;
                }
                let parent = q.parent(n).unwrap();
                let label = match (q.sym(n).as_elem(), q.sym(n).as_value()) {
                    (Some(d), _) => PatternLabel::Elem(d),
                    (_, Some(v)) => PatternLabel::Value(v),
                    _ => unreachable!(),
                };
                map[n as usize] = pattern.add(map[parent as usize], Axis::Child, label);
            }
            assert!(structure_match(&pattern, doc));
        }
    }
}
