//! The paper's query workloads, verbatim.
//!
//! Table 4 (XMark) and Table 8 (DBLP) list the path expressions the
//! evaluation runs; they are reproduced here as constants so the benchmark
//! harness and the documentation agree on exactly what is measured.  The
//! strings parse with `xseq_query::parse_xpath`.

/// Table 4, Q1: branching + `//` + two value predicates.  The paper prints
/// `…/mail/date…`, but the XMark DTD nests `mail` under `mailbox`; the
/// expression here follows the DTD so the query is satisfiable.
pub const XMARK_Q1: &str =
    "/site//item[location='United States']/mailbox/mail/date[text='07/05/2000']";

/// Table 4, Q2: `//` + `*` wildcard + value predicate.
pub const XMARK_Q2: &str = "/site//person/*/age[text='32']";

/// Table 4, Q3: `//` root + nested path predicate + value predicate.
pub const XMARK_Q3: &str = "//closed_auction[seller/person='person11304']/date[text='12/15/1999']";

/// All Table 4 queries in order.
pub const XMARK_QUERIES: &[(&str, &str)] = &[("Q1", XMARK_Q1), ("Q2", XMARK_Q2), ("Q3", XMARK_Q3)];

/// Table 8, Q1: plain path.
pub const DBLP_Q1: &str = "/inproceedings/title";

/// Table 8, Q2: value predicate on an attribute-like field (the paper
/// writes `/book/[key='Maier]` with a stray slash and an unclosed quote —
/// normalized here).
pub const DBLP_Q2: &str = "/book/[key='Maier']/author";

/// Table 8, Q3: `*` root step + text predicate.
pub const DBLP_Q3: &str = "/*/author[text='David']";

/// Table 8, Q4: `//` root + text predicate.
pub const DBLP_Q4: &str = "//author[text='David']";

/// All Table 8 queries in order.
pub const DBLP_QUERIES: &[(&str, &str)] = &[
    ("Q1", DBLP_Q1),
    ("Q2", DBLP_Q2),
    ("Q3", DBLP_Q3),
    ("Q4", DBLP_Q4),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_lists_are_complete() {
        assert_eq!(XMARK_QUERIES.len(), 3);
        assert_eq!(DBLP_QUERIES.len(), 4);
    }

    #[test]
    fn q1_follows_the_dtd() {
        assert!(XMARK_Q1.contains("/mailbox/mail/"));
    }
}
