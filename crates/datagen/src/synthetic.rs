//! The paper's synthetic tree generator (Section 6.1).
//!
//! "The generation of synthetic tree structures takes three steps.  First,
//! we generate a random DTD schema based on user-provided parameters
//! [L, F, A, I].  Second, we assign an occurrence probability with a uniform
//! distribution in the range of `[P%, 1.0]` to each node.  Finally, we
//! generate N tree structures based on the schema, and determine the
//! existence of their tree nodes by the occurrence probabilities."
//!
//! Occurrence probabilities are *root* probabilities, clamped to be
//! monotone down the schema (a node cannot be more probable than its
//! parent); a node is included, given its parent, with probability
//! `p(node|root) / p(parent|root)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xseq_xml::{Document, NodeId, Symbol, SymbolTable};

/// Parameters of the synthetic generator, named like the paper's datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticParams {
    /// `L` — maximum tree height (root has depth 1).
    pub max_height: u16,
    /// `F` — maximum fanout of a node.
    pub max_fanout: u16,
    /// `A` — percentage of value child nodes (0–100).
    pub value_pct: u8,
    /// `I` — percentage of identical sibling nodes (0–100).
    pub identical_pct: u8,
    /// `P` — lower bound of the occurrence probability range, in percent.
    pub prob_floor_pct: u8,
}

impl SyntheticParams {
    /// The paper's dataset naming: `L3F5A25I0P40`.
    pub fn name(&self) -> String {
        format!(
            "L{}F{}A{}I{}P{}",
            self.max_height,
            self.max_fanout,
            self.value_pct,
            self.identical_pct,
            self.prob_floor_pct
        )
    }

    /// Figure 14(a)'s dataset.
    pub fn fig14a() -> Self {
        SyntheticParams {
            max_height: 3,
            max_fanout: 5,
            value_pct: 25,
            identical_pct: 0,
            prob_floor_pct: 40,
        }
    }

    /// Figure 14(b)'s dataset.
    pub fn fig14b() -> Self {
        SyntheticParams {
            max_height: 5,
            max_fanout: 3,
            value_pct: 40,
            identical_pct: 0,
            prob_floor_pct: 5,
        }
    }

    /// Figure 16's dataset (`L3F5A25I10P40`).
    pub fn fig16() -> Self {
        SyntheticParams {
            max_height: 3,
            max_fanout: 5,
            value_pct: 25,
            identical_pct: 10,
            prob_floor_pct: 40,
        }
    }
}

/// One node of the generated DTD schema.
#[derive(Debug, Clone)]
enum SchemaNode {
    Element {
        sym: Symbol,
        /// Root occurrence probability.
        prob: f64,
        children: Vec<SchemaNode>,
    },
    /// A value slot: a pool of possible value symbols, one of which appears
    /// (if the slot fires).
    ValueSlot { pool: Vec<Symbol>, prob: f64 },
}

impl SchemaNode {
    fn prob(&self) -> f64 {
        match self {
            SchemaNode::Element { prob, .. } | SchemaNode::ValueSlot { prob, .. } => *prob,
        }
    }
}

/// A generated synthetic dataset: schema + documents.
#[derive(Debug)]
pub struct SyntheticDataset {
    /// The generated documents.
    pub docs: Vec<Document>,
    /// Dataset name (`L3F5A25I0P40`).
    pub name: String,
    schema: SchemaNode,
}

impl SyntheticDataset {
    /// Generates `n` documents from a fresh random schema.
    ///
    /// The base schema is drawn from a RNG stream that depends only on
    /// `seed` and the non-`I` parameters; identical siblings are then
    /// *injected* from a second stream.  Sweeping `I` with a fixed seed
    /// therefore varies exactly one thing — the identical-sibling share —
    /// which is what Figure 15 requires.
    pub fn generate(
        params: &SyntheticParams,
        n: usize,
        seed: u64,
        symbols: &mut SymbolTable,
    ) -> Self {
        let base = SyntheticParams {
            identical_pct: 0,
            ..*params
        };
        let mut schema_rng = StdRng::seed_from_u64(seed);
        let mut counter = 0u32;
        let mut schema = gen_schema(&base, 1, 1.0, &mut counter, &mut schema_rng, symbols);
        if params.identical_pct > 0 {
            let mut dup_rng = StdRng::seed_from_u64(seed ^ 0x1de0_71ca1);
            inject_identicals(&mut schema, params, 1.0, &mut dup_rng);
        }
        let mut doc_rng = StdRng::seed_from_u64(seed ^ 0xd0c5);
        let mut docs = Vec::with_capacity(n);
        for _ in 0..n {
            docs.push(gen_doc(&schema, &mut doc_rng));
        }
        SyntheticDataset {
            docs,
            name: params.name(),
            schema,
        }
    }

    /// Generates `n` documents and serializes them straight to XML
    /// strings — the form the sharded `Database` builders route by
    /// document.  Generation runs against a private symbol table, so
    /// callers (differential shard tests, the scaling bench) don't have
    /// to thread interner state just to obtain parseable input.
    pub fn generate_xml(params: &SyntheticParams, n: usize, seed: u64) -> Vec<String> {
        let mut symbols = SymbolTable::with_value_mode(xseq_xml::ValueMode::Intern);
        let ds = Self::generate(params, n, seed, &mut symbols);
        ds.docs
            .iter()
            .map(|d| xseq_xml::write_document(d, &symbols))
            .collect()
    }

    /// Generates `extra` additional documents from the same schema (for
    /// dataset-size sweeps that must share one schema).
    pub fn extend(&mut self, extra: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for _ in 0..extra {
            self.docs.push(gen_doc(&self.schema, &mut rng));
        }
    }

    /// Average document size in nodes (= average sequence length).
    pub fn avg_len(&self) -> f64 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.docs.iter().map(|d| d.len()).sum::<usize>() as f64 / self.docs.len() as f64
    }

    /// Total nodes across documents.
    pub fn total_nodes(&self) -> usize {
        self.docs.iter().map(|d| d.len()).sum()
    }
}

fn gen_schema(
    params: &SyntheticParams,
    depth: u16,
    parent_prob: f64,
    counter: &mut u32,
    rng: &mut StdRng,
    symbols: &mut SymbolTable,
) -> SchemaNode {
    let sym = symbols.elem(&format!("e{}", *counter));
    *counter += 1;
    let prob = if depth == 1 {
        1.0
    } else {
        draw_prob(params, parent_prob, rng)
    };
    let mut children = Vec::new();
    if depth < params.max_height {
        let f = params.max_fanout.max(1);
        let fanout = rng.gen_range(f / 2 + 1..=f);
        while (children.len() as u16) < fanout {
            if rng.gen_range(0u32..100) < params.value_pct as u32 {
                let pool_size = 1usize << rng.gen_range(3u32..=6); // 8..64 values
                let slot = *counter;
                *counter += 1;
                let pool = (0..pool_size)
                    .map(|k| symbols.val(&format!("v{slot}_{k}")))
                    .collect();
                children.push(SchemaNode::ValueSlot {
                    pool,
                    prob: draw_prob(params, prob, rng),
                });
            } else {
                children.push(gen_schema(params, depth + 1, prob, counter, rng, symbols));
            }
        }
    }
    SchemaNode::Element {
        sym,
        prob,
        children,
    }
}

/// Root probability of a child: uniform in `[P%, 1]`, clamped by the parent
/// (monotonicity).
fn draw_prob(params: &SyntheticParams, parent_prob: f64, rng: &mut StdRng) -> f64 {
    let floor = params.prob_floor_pct as f64 / 100.0;
    rng.gen_range(floor..=1.0f64).min(parent_prob)
}

/// Post-pass adding identical siblings: each element child gains, with
/// probability `I`%, a duplicate sibling (same designators and value
/// domains, re-drawn occurrence probabilities).  Applied to the `I = 0`
/// base schema, so a fixed seed sweeps `I` while holding the underlying
/// structure and value variety constant — a duplicate never *removes*
/// variety the way in-place replacement would.
fn inject_identicals(
    node: &mut SchemaNode,
    params: &SyntheticParams,
    parent_prob: f64,
    rng: &mut StdRng,
) {
    let SchemaNode::Element { children, prob, .. } = node else {
        return;
    };
    let prob = *prob;
    let mut extra = Vec::new();
    for c in children.iter() {
        if matches!(c, SchemaNode::Element { .. })
            && rng.gen_range(0u32..100) < params.identical_pct as u32
        {
            extra.push(reprob(c.clone(), params, prob, rng));
        }
    }
    children.extend(extra);
    let _ = parent_prob;
    for c in children.iter_mut() {
        inject_identicals(c, params, prob, rng);
    }
}

/// Re-draws the probabilities of a duplicated subtree (identical siblings
/// share designators, not fate).
fn reprob(
    node: SchemaNode,
    params: &SyntheticParams,
    parent_prob: f64,
    rng: &mut StdRng,
) -> SchemaNode {
    match node {
        SchemaNode::Element { sym, children, .. } => {
            let prob = draw_prob(params, parent_prob, rng);
            let children = children
                .into_iter()
                .map(|c| reprob(c, params, prob, rng))
                .collect();
            SchemaNode::Element {
                sym,
                prob,
                children,
            }
        }
        SchemaNode::ValueSlot { pool, .. } => SchemaNode::ValueSlot {
            pool,
            prob: draw_prob(params, parent_prob, rng),
        },
    }
}

fn gen_doc(schema: &SchemaNode, rng: &mut StdRng) -> Document {
    let SchemaNode::Element {
        sym,
        children,
        prob,
    } = schema
    else {
        unreachable!("schema root is an element");
    };
    let mut doc = Document::with_root(*sym);
    let root = doc.root().expect("Document::with_root always has a root");
    for c in children {
        gen_node(c, *prob, root, &mut doc, rng);
    }
    doc
}

fn gen_node(
    schema: &SchemaNode,
    parent_prob: f64,
    parent: NodeId,
    doc: &mut Document,
    rng: &mut StdRng,
) {
    let cond = (schema.prob() / parent_prob).min(1.0);
    if rng.gen_range(0.0..1.0f64) >= cond {
        return;
    }
    match schema {
        SchemaNode::Element {
            sym,
            prob,
            children,
        } => {
            let n = doc.child(parent, *sym);
            for c in children {
                gen_node(c, *prob, n, doc, rng);
            }
        }
        SchemaNode::ValueSlot { pool, .. } => {
            let v = pool[rng.gen_range(0..pool.len())];
            doc.child(parent, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::ValueMode;

    fn st() -> SymbolTable {
        SymbolTable::with_value_mode(ValueMode::Intern)
    }

    #[test]
    fn naming_matches_paper() {
        assert_eq!(SyntheticParams::fig14a().name(), "L3F5A25I0P40");
        assert_eq!(SyntheticParams::fig14b().name(), "L5F3A40I0P5");
        assert_eq!(SyntheticParams::fig16().name(), "L3F5A25I10P40");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut s1 = st();
        let mut s2 = st();
        let d1 = SyntheticDataset::generate(&SyntheticParams::fig14a(), 50, 9, &mut s1);
        let d2 = SyntheticDataset::generate(&SyntheticParams::fig14a(), 50, 9, &mut s2);
        assert_eq!(d1.docs, d2.docs);
        let d3 = SyntheticDataset::generate(&SyntheticParams::fig14a(), 50, 10, &mut s2);
        assert_ne!(d1.docs, d3.docs);
    }

    #[test]
    fn height_and_root_invariants() {
        let mut s = st();
        let ds = SyntheticDataset::generate(&SyntheticParams::fig14b(), 100, 3, &mut s);
        for doc in &ds.docs {
            assert!(doc.height() <= 5 + 1, "value leaves may add one level");
            assert!(!doc.is_empty(), "root always exists");
        }
        assert!(ds.avg_len() >= 1.0);
    }

    #[test]
    fn value_percentage_zero_means_no_values() {
        let mut s = st();
        let params = SyntheticParams {
            value_pct: 0,
            ..SyntheticParams::fig14a()
        };
        let ds = SyntheticDataset::generate(&params, 30, 5, &mut s);
        for doc in &ds.docs {
            for n in doc.node_ids() {
                assert!(doc.sym(n).is_elem());
            }
        }
    }

    #[test]
    fn identical_siblings_appear_when_requested() {
        let mut s = st();
        let params = SyntheticParams {
            identical_pct: 80,
            max_fanout: 4,
            ..SyntheticParams::fig14a()
        };
        let ds = SyntheticDataset::generate(&params, 60, 11, &mut s);
        let has_identical = ds.docs.iter().any(|doc| {
            doc.node_ids().any(|n| {
                let kids = doc.children(n);
                kids.iter().enumerate().any(|(i, &a)| {
                    kids[i + 1..]
                        .iter()
                        .any(|&b| doc.sym(a) == doc.sym(b) && doc.sym(a).is_elem())
                })
            })
        });
        assert!(has_identical);

        // and I=0 never produces identical element siblings
        let params0 = SyntheticParams::fig14a();
        let ds0 = SyntheticDataset::generate(&params0, 60, 11, &mut s);
        let none = ds0.docs.iter().all(|doc| {
            doc.node_ids().all(|n| {
                let kids: Vec<_> = doc
                    .children(n)
                    .iter()
                    .filter(|&&c| doc.sym(c).is_elem())
                    .collect();
                let mut syms: Vec<_> = kids.iter().map(|&&c| doc.sym(c)).collect();
                syms.sort();
                syms.windows(2).all(|w| w[0] != w[1])
            })
        });
        assert!(none, "I=0 must not create identical element siblings");
    }

    #[test]
    fn extend_grows_dataset_with_same_schema() {
        let mut s = st();
        let mut ds = SyntheticDataset::generate(&SyntheticParams::fig14a(), 10, 1, &mut s);
        let before = ds.docs.len();
        ds.extend(15, 2);
        assert_eq!(ds.docs.len(), before + 15);
        // new docs use existing designators only (schema shared)
        let count = s.designator_count();
        ds.extend(5, 3);
        assert_eq!(s.designator_count(), count);
    }

    #[test]
    fn average_lengths_are_in_a_sane_band() {
        let mut s = st();
        let a = SyntheticDataset::generate(&SyntheticParams::fig14a(), 300, 21, &mut s);
        let b = SyntheticDataset::generate(&SyntheticParams::fig14b(), 300, 21, &mut s);
        assert!(a.avg_len() > 4.0, "fig14a avg {}", a.avg_len());
        assert!(b.avg_len() > 4.0, "fig14b avg {}", b.avg_len());
    }
}
