//! # xseq-baselines — the comparators of the paper's evaluation
//!
//! Three classical XML indexing approaches, implemented from their papers,
//! to reproduce Table 8 ("query by paths / query by nodes / CS") and
//! Figure 16(a)/(b) ("ViST vs CS"):
//!
//! * [`PathIndex`] — a DataGuide-style **path index**: every distinct
//!   root-to-node path maps to a postings list of `(doc, pre, max)` labels.
//!   Simple path queries are one lookup; *tree patterns* must be
//!   disassembled into root-to-leaf paths, their document sets intersected,
//!   and the candidates verified per document — exactly the join/
//!   post-processing overhead sequence-based indexing exists to avoid.
//! * [`NodeIndex`] — an XISS-style **node index**: every element name maps
//!   to a list of `(doc, pre, max, depth)` labels; queries run structural
//!   merge joins along the pattern edges, bottom-up.  Structural joins
//!   alone cannot express the injectivity of identical sibling query nodes,
//!   so candidates are verified per document (the paper's point about join
//!   costs stands: the joins dominate).
//! * [`VistIndex`] — **ViST**: depth-first constraint sequences over the
//!   same trie, *naïve* subsequence matching, and a per-candidate
//!   verification pass standing in for ViST's join-based false-alarm
//!   repair.
//!
//! All three return exactly the same answers as `xseq_index::XmlIndex`
//! (verified by cross-engine property tests); they differ — and this is the
//! paper's story — in how much work it takes.
#![forbid(unsafe_code)]

use std::collections::HashMap;
use xseq_index::{PlanOptions, XmlIndex};
use xseq_sequence::Strategy;
use xseq_xml::{
    matcher::structure_match, Axis, Designator, DocId, Document, NodeId, PathId, PathTable,
    PatternLabel, PatternNodeId, Symbol, TreePattern,
};

/// Work counters shared by the baselines, for the performance experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineStats {
    /// Postings/label-list entries scanned.
    pub postings_scanned: u64,
    /// Structural join output rows produced (node index).
    pub join_rows: u64,
    /// Candidate documents verified by the brute-force matcher.
    pub verifications: u64,
}

/// Pre-order labels of one document node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Label {
    doc: DocId,
    pre: u32,
    max: u32,
    depth: u16,
}

/// Labels every node of `doc`: preorder number, max descendant preorder,
/// depth (root = 1).
fn label_document(doc: &Document, id: DocId) -> Vec<(NodeId, Label)> {
    let mut out = Vec::with_capacity(doc.len());
    let Some(root) = doc.root() else {
        return out;
    };
    // iterative preorder with exit bookkeeping
    let mut counter = 0u32;
    let mut pre = vec![0u32; doc.len()];
    let mut max = vec![0u32; doc.len()];
    let mut depth = vec![0u16; doc.len()];
    enum Ev {
        Enter(NodeId, u16),
        Exit(NodeId),
    }
    let mut stack = vec![Ev::Enter(root, 1)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(n, d) => {
                pre[n as usize] = counter;
                depth[n as usize] = d;
                counter += 1;
                stack.push(Ev::Exit(n));
                for &c in doc.children(n).iter().rev() {
                    stack.push(Ev::Enter(c, d + 1));
                }
            }
            Ev::Exit(n) => max[n as usize] = counter - 1,
        }
    }
    for n in doc.node_ids() {
        out.push((
            n,
            Label {
                doc: id,
                pre: pre[n as usize],
                max: max[n as usize],
                depth: depth[n as usize],
            },
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Path index (DataGuide-like)
// ---------------------------------------------------------------------------

/// DataGuide-style path index: distinct path → postings.
#[derive(Debug)]
pub struct PathIndex {
    postings: HashMap<PathId, Vec<Label>>,
    doc_count: usize,
}

impl PathIndex {
    /// Builds the index over `docs`, interning paths into `paths`.
    pub fn build(docs: &[Document], paths: &mut PathTable) -> Self {
        let mut postings: HashMap<PathId, Vec<Label>> = HashMap::new();
        for (id, doc) in docs.iter().enumerate() {
            let enc = doc.path_encode(paths);
            for (n, label) in label_document(doc, id as DocId) {
                postings.entry(enc[n as usize]).or_default().push(label);
            }
        }
        for list in postings.values_mut() {
            list.sort_by_key(|l| (l.doc, l.pre));
        }
        PathIndex {
            postings,
            doc_count: docs.len(),
        }
    }

    /// Number of distinct paths (the DataGuide size).
    pub fn path_count(&self) -> usize {
        self.postings.len()
    }

    /// Total postings entries.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }

    /// The basic interface: `Simple Paths ⇒ P(Node Ids)` — documents (and
    /// how many nodes in each) matching one concrete path.
    pub fn query_path(&self, path: PathId, stats: &mut BaselineStats) -> Vec<DocId> {
        let mut out = Vec::new();
        if let Some(list) = self.postings.get(&path) {
            stats.postings_scanned += list.len() as u64;
            for l in list {
                out.push(l.doc);
            }
        }
        out.dedup();
        out
    }

    /// Tree-pattern query: disassemble into root-to-leaf concrete paths
    /// (instantiating wildcards against the collected path set), intersect
    /// the per-path document sets, then verify each candidate document.
    pub fn query(
        &self,
        pattern: &TreePattern,
        docs: &[Document],
        paths: &PathTable,
    ) -> (Vec<DocId>, BaselineStats) {
        let mut stats = BaselineStats::default();
        // enumerate root-to-leaf label paths of the pattern, resolving
        // wildcards against the path dictionary
        let data_paths: std::collections::HashSet<PathId> = self.postings.keys().copied().collect();
        let opts = PlanOptions::default();
        let concrete = xseq_index::instantiate(pattern, paths, &data_paths, &opts);

        let mut result: Vec<DocId> = Vec::new();
        for qdoc in &concrete {
            // candidate docs: intersection over the leaf paths of qdoc
            let mut enc_paths = PathTable::new();
            let _ = &mut enc_paths;
            let enc = {
                // paths are already interned; re-deriving against the shared
                // table requires mutability we don't have, so recompute path
                // ids by walking the dictionary
                qdoc_paths(qdoc, paths)
            };
            let mut candidate: Option<Vec<DocId>> = None;
            let mut dead = false;
            for n in qdoc.node_ids() {
                if !qdoc.children(n).is_empty() {
                    continue; // only leaf paths constrain the intersection
                }
                let Some(p) = enc[n as usize] else {
                    dead = true;
                    break;
                };
                let ds = self.query_path(p, &mut stats);
                candidate = Some(match candidate {
                    None => ds,
                    Some(prev) => intersect_sorted(&prev, &ds),
                });
                if matches!(&candidate, Some(v) if v.is_empty()) {
                    break;
                }
            }
            if dead {
                continue;
            }
            // A linear query is exactly one root-to-leaf path: the postings
            // lookup *is* the answer (this is the case DataGuide is built
            // for — "Simple Paths ⇒ P(Node Ids)" — and why Table 8's Q1 is
            // nearly free on the path index).  Branching queries need the
            // join/verification step.
            let linear = qdoc.node_ids().all(|n| qdoc.children(n).len() <= 1);
            if linear {
                result.extend(candidate.unwrap_or_default());
                continue;
            }
            // verify candidates (the "join"/post-processing step)
            for d in candidate.unwrap_or_default() {
                stats.verifications += 1;
                if structure_match_concrete(qdoc, &docs[d as usize]) {
                    result.push(d);
                }
            }
        }
        result.sort_unstable();
        result.dedup();
        let _ = self.doc_count;
        (result, stats)
    }
}

/// Path ids of every node of a concrete query tree, looked up (not interned)
/// in the shared table; `None` when a path does not exist in the dictionary.
fn qdoc_paths(qdoc: &Document, paths: &PathTable) -> Vec<Option<PathId>> {
    let mut out = vec![None; qdoc.len()];
    let Some(root) = qdoc.root() else {
        return out;
    };
    let mut stack = vec![(root, PathId::ROOT)];
    while let Some((n, base)) = stack.pop() {
        let p = paths.child(base, qdoc.sym(n));
        out[n as usize] = p;
        if let Some(p) = p {
            for &c in qdoc.children(n) {
                stack.push((c, p));
            }
        }
    }
    out
}

/// Structure match of a fully concrete query tree (child axes only).
fn structure_match_concrete(qdoc: &Document, doc: &Document) -> bool {
    let Some(qroot) = qdoc.root() else {
        return false;
    };
    let mut pattern = TreePattern::root(label_of(qdoc.sym(qroot)));
    let mut map: Vec<PatternNodeId> = vec![0; qdoc.len()];
    for n in qdoc.preorder() {
        if n == qroot {
            map[n as usize] = pattern.root_id();
            continue;
        }
        let parent = qdoc.parent(n).expect("non-root");
        let pn = pattern.add(map[parent as usize], Axis::Child, label_of(qdoc.sym(n)));
        map[n as usize] = pn;
    }
    structure_match(&pattern, doc)
}

fn label_of(sym: Symbol) -> PatternLabel {
    match (sym.as_elem(), sym.as_value()) {
        (Some(d), _) => PatternLabel::Elem(d),
        (_, Some(v)) => PatternLabel::Value(v),
        _ => unreachable!(),
    }
}

fn intersect_sorted(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Node index (XISS-like)
// ---------------------------------------------------------------------------

/// XISS-style node index: element name → labelled node list.
#[derive(Debug)]
pub struct NodeIndex {
    elements: HashMap<Designator, Vec<Label>>,
    values: HashMap<u32, Vec<Label>>,
}

impl NodeIndex {
    /// Builds the index over `docs`.
    pub fn build(docs: &[Document]) -> Self {
        let mut elements: HashMap<Designator, Vec<Label>> = HashMap::new();
        let mut values: HashMap<u32, Vec<Label>> = HashMap::new();
        for (id, doc) in docs.iter().enumerate() {
            for (n, label) in label_document(doc, id as DocId) {
                match (doc.sym(n).as_elem(), doc.sym(n).as_value()) {
                    (Some(d), _) => elements.entry(d).or_default().push(label),
                    (_, Some(v)) => values.entry(v.0).or_default().push(label),
                    _ => unreachable!(),
                }
            }
        }
        for list in elements.values_mut().chain(values.values_mut()) {
            list.sort_by_key(|l| (l.doc, l.pre));
        }
        NodeIndex { elements, values }
    }

    /// Total label-list entries.
    pub fn entry_count(&self) -> usize {
        self.elements.values().map(Vec::len).sum::<usize>()
            + self.values.values().map(Vec::len).sum::<usize>()
    }

    fn list_for(&self, label: PatternLabel) -> Vec<Label> {
        match label {
            PatternLabel::Elem(d) => self.elements.get(&d).cloned().unwrap_or_default(),
            PatternLabel::Value(v) => self.values.get(&v.0).cloned().unwrap_or_default(),
            PatternLabel::AnyElem => {
                let mut all: Vec<Label> = self
                    .elements
                    .values()
                    .flat_map(|v| v.iter().copied())
                    .collect();
                all.sort_by_key(|l| (l.doc, l.pre));
                all
            }
        }
    }

    /// Tree-pattern query by bottom-up structural merge joins, followed by
    /// per-candidate verification (structural joins alone cannot express
    /// identical-sibling injectivity).
    pub fn query(&self, pattern: &TreePattern, docs: &[Document]) -> (Vec<DocId>, BaselineStats) {
        let mut stats = BaselineStats::default();
        // matches[n] = labels of document nodes rooting a (non-injective)
        // match of pattern subtree n, sorted by (doc, pre)
        let n = pattern.len();
        let mut matches: Vec<Vec<Label>> = vec![Vec::new(); n];
        for i in (0..n as PatternNodeId).rev() {
            let mut list = self.list_for(pattern.label(i));
            stats.postings_scanned += list.len() as u64;
            for &c in pattern.children(i) {
                list = structural_join(&list, &matches[c as usize], pattern.axis(c), &mut stats);
                if list.is_empty() {
                    break;
                }
            }
            matches[i as usize] = list;
        }
        // root axis filter
        let root_ok: Vec<Label> = matches[pattern.root_id() as usize]
            .iter()
            .copied()
            .filter(|l| match pattern.axis(pattern.root_id()) {
                Axis::Child => l.pre == 0,
                Axis::Descendant => true,
            })
            .collect();
        let mut candidates: Vec<DocId> = root_ok.iter().map(|l| l.doc).collect();
        candidates.dedup();
        let mut result = Vec::new();
        for d in candidates {
            stats.verifications += 1;
            if structure_match(pattern, &docs[d as usize]) {
                result.push(d);
            }
        }
        (result, stats)
    }
}

/// Keeps the ancestors from `anc` that have at least one `desc` node related
/// by `axis` within the same document (a structural semi-join).
fn structural_join(
    anc: &[Label],
    desc: &[Label],
    axis: Axis,
    stats: &mut BaselineStats,
) -> Vec<Label> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for a in anc {
        // advance to this document
        while j < desc.len() && desc[j].doc < a.doc {
            j += 1;
        }
        let mut k = j;
        let mut hit = false;
        while k < desc.len() && desc[k].doc == a.doc {
            stats.join_rows += 1;
            let d = desc[k];
            let related = d.pre > a.pre
                && d.pre <= a.max
                && match axis {
                    Axis::Child => d.depth == a.depth + 1,
                    Axis::Descendant => true,
                };
            if related {
                hit = true;
                break;
            }
            k += 1;
        }
        if hit {
            out.push(*a);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// ViST
// ---------------------------------------------------------------------------

/// ViST: depth-first sequencing, naïve subsequence matching, and a
/// verification pass standing in for the join-based false-alarm repair.
#[derive(Debug)]
pub struct VistIndex {
    inner: XmlIndex,
}

impl VistIndex {
    /// Builds the ViST-style index (depth-first sequences).
    pub fn build(docs: &[Document], paths: &mut PathTable) -> Self {
        VistIndex {
            inner: XmlIndex::build(docs, paths, Strategy::DepthFirst, PlanOptions::default()),
        }
    }

    /// Number of trie nodes (same structure as the CS index, different
    /// sequencing — this is the DF column of Tables 5/6).
    pub fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// Queries with naïve matching + per-candidate verification.
    pub fn query(
        &self,
        pattern: &TreePattern,
        docs: &[Document],
        paths: &mut PathTable,
    ) -> (Vec<DocId>, BaselineStats) {
        let mut stats = BaselineStats::default();
        let naive = self.inner.query_naive(pattern, paths);
        stats.postings_scanned = naive.stats.search.candidates;
        let mut result = Vec::new();
        for d in naive.docs {
            stats.verifications += 1;
            if structure_match(pattern, &docs[d as usize]) {
                result.push(d);
            }
        }
        (result, stats)
    }

    /// The wrapped sequence index (for size experiments).
    pub fn inner(&self) -> &XmlIndex {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::{parse_document, SymbolTable, ValueMode};

    fn corpus(xmls: &[&str]) -> (SymbolTable, PathTable, Vec<Document>) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = xmls
            .iter()
            .map(|x| parse_document(x, &mut st).unwrap())
            .collect();
        (st, PathTable::new(), docs)
    }

    fn sample() -> (SymbolTable, PathTable, Vec<Document>) {
        corpus(&[
            "<p><r><l>boston</l></r></p>",
            "<p><d><l>boston</l></d><d><m>johnson</m></d></p>",
            "<p><r><l>newyork</l></r></p>",
            "<p><l><s/></l><l><b/></l></p>",
        ])
    }

    #[test]
    fn labeling_is_preorder_with_ranges() {
        let (_, _, docs) = sample();
        for (i, doc) in docs.iter().enumerate() {
            let labels = label_document(doc, i as DocId);
            let by_node: HashMap<NodeId, Label> = labels.into_iter().collect();
            for n in doc.node_ids() {
                if let Some(p) = doc.parent(n) {
                    let (ln, lp) = (by_node[&n], by_node[&p]);
                    assert!(lp.pre < ln.pre && ln.max <= lp.max);
                    assert_eq!(ln.depth, lp.depth + 1);
                }
            }
        }
    }

    #[test]
    fn path_index_simple_path() {
        let (mut st, mut pt, docs) = sample();
        let idx = PathIndex::build(&docs, &mut pt);
        let p = st.elem("p");
        let r = st.elem("r");
        let l = st.elem("l");
        let prl = pt.intern(&[p, r, l]);
        let mut stats = BaselineStats::default();
        assert_eq!(idx.query_path(prl, &mut stats), vec![0, 2]);
        assert!(stats.postings_scanned >= 2);
        assert!(idx.path_count() > 0);
        assert_eq!(
            idx.posting_count(),
            docs.iter().map(|d| d.len()).sum::<usize>()
        );
    }

    #[test]
    fn all_engines_agree_on_patterns() {
        let (mut st, mut pt, docs) = sample();
        let path_idx = PathIndex::build(&docs, &mut pt);
        let node_idx = NodeIndex::build(&docs);
        let vist = VistIndex::build(&docs, &mut pt);
        let cs = XmlIndex::build(&docs, &mut pt, Strategy::DepthFirst, PlanOptions::default());

        let pd = st.designator("p");
        let ld = st.designator("l");
        let sd = st.designator("s");
        let bd = st.designator("b");
        let boston = st.values.intern("boston");

        let patterns = {
            let mut v = Vec::new();
            // /p//l
            let q = {
                let mut q = TreePattern::root(PatternLabel::Elem(pd));
                q.add(q.root_id(), Axis::Descendant, PatternLabel::Elem(ld));
                q
            };
            v.push(q);
            // //l='boston'
            let q = {
                let mut q = TreePattern::with_root_axis(PatternLabel::Elem(ld), Axis::Descendant);
                q.add(q.root_id(), Axis::Child, PatternLabel::Value(boston));
                q
            };
            v.push(q);
            // /p[l/s][l/b] — needs two distinct l's
            let q = {
                let mut q = TreePattern::root(PatternLabel::Elem(pd));
                let l1 = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
                q.add(l1, Axis::Child, PatternLabel::Elem(sd));
                let l2 = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
                q.add(l2, Axis::Child, PatternLabel::Elem(bd));
                q
            };
            v.push(q);
            // /p/l[s][b] — one l with both: matches nothing
            let q = {
                let mut q = TreePattern::root(PatternLabel::Elem(pd));
                let l1 = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
                q.add(l1, Axis::Child, PatternLabel::Elem(sd));
                q.add(l1, Axis::Child, PatternLabel::Elem(bd));
                q
            };
            v.push(q);
            v
        };

        for q in &patterns {
            let oracle: Vec<DocId> = docs
                .iter()
                .enumerate()
                .filter(|(_, d)| structure_match(q, d))
                .map(|(i, _)| i as DocId)
                .collect();
            let (a, _) = path_idx.query(q, &docs, &pt);
            let (b, _) = node_idx.query(q, &docs);
            let (c, _) = vist.query(q, &docs, &mut pt);
            let d = cs.query(q, &pt).docs;
            assert_eq!(a, oracle, "path index, {}", q.render(&st));
            assert_eq!(b, oracle, "node index, {}", q.render(&st));
            assert_eq!(c, oracle, "vist, {}", q.render(&st));
            assert_eq!(d, oracle, "cs, {}", q.render(&st));
        }
    }

    #[test]
    fn vist_verifications_reflect_false_alarms() {
        let (mut st, mut pt, docs) = sample();
        let vist = VistIndex::build(&docs, &mut pt);
        let pd = st.designator("p");
        let ld = st.designator("l");
        let sd = st.designator("s");
        let bd = st.designator("b");
        // /p/l[s][b]: doc 3 is a naïve false alarm
        let mut q = TreePattern::root(PatternLabel::Elem(pd));
        let l1 = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
        q.add(l1, Axis::Child, PatternLabel::Elem(sd));
        q.add(l1, Axis::Child, PatternLabel::Elem(bd));
        let (res, stats) = vist.query(&q, &docs, &mut pt);
        assert!(res.is_empty());
        assert!(
            stats.verifications >= 1,
            "the false alarm forces verification work"
        );
    }

    #[test]
    fn node_index_join_counters_move() {
        let (mut st, _, docs) = sample();
        let node_idx = NodeIndex::build(&docs);
        assert_eq!(
            node_idx.entry_count(),
            docs.iter().map(|d| d.len()).sum::<usize>()
        );
        let pd = st.designator("p");
        let ld = st.designator("l");
        let mut q = TreePattern::root(PatternLabel::Elem(pd));
        q.add(q.root_id(), Axis::Descendant, PatternLabel::Elem(ld));
        let (res, stats) = node_idx.query(&q, &docs);
        assert_eq!(res, vec![0, 1, 2, 3]);
        assert!(stats.join_rows > 0);
        assert!(stats.postings_scanned > 0);
    }

    #[test]
    fn empty_pattern_results() {
        let (mut st, mut pt, docs) = sample();
        let path_idx = PathIndex::build(&docs, &mut pt);
        let node_idx = NodeIndex::build(&docs);
        let zd = st.designator("zzz");
        let q = TreePattern::root(PatternLabel::Elem(zd));
        assert!(path_idx.query(&q, &docs, &pt).0.is_empty());
        assert!(node_idx.query(&q, &docs).0.is_empty());
    }
}
