//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p xseq-bench --bin repro -- all
//! cargo run --release -p xseq-bench --bin repro -- table7 --scale 0.5
//! cargo run --release -p xseq-bench --bin repro -- all --metrics out.json
//! ```
//!
//! With `--metrics <path.json>`, the process-wide metrics registry is
//! snapshotted after each experiment and the per-experiment deltas are
//! written to the file as one JSON object keyed by experiment name.

use std::process::exit;
use xseq::telemetry::{to_json, MetricsRegistry, Snapshot};

/// Experiment registry: name → runner.
type Experiment = (&'static str, fn(f64));

const EXPERIMENTS: &[Experiment] = &[
    ("fig14a", xseq_bench::fig14a),
    ("fig14b", xseq_bench::fig14b),
    ("fig15", xseq_bench::fig15),
    ("table5", xseq_bench::table5),
    ("table6", xseq_bench::table6),
    ("table7", xseq_bench::table7),
    ("table8", xseq_bench::table8),
    ("fig16a", xseq_bench::fig16a),
    ("fig16b", xseq_bench::fig16b),
    ("fig16c", xseq_bench::fig16c),
    ("fig16d", xseq_bench::fig16d),
];

fn usage() -> ! {
    eprintln!("usage: repro <experiment|all|check> [--scale X] [--metrics PATH.json]");
    eprintln!("experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
    eprintln!("  all     run every experiment");
    eprintln!("  check   tiny-scale sweep with agreement assertions");
    exit(2)
}

/// Accumulates per-experiment registry deltas and rewrites the output file
/// after each one, so a partial run still leaves valid JSON behind.
struct MetricsDump {
    path: String,
    sections: Vec<(String, String)>,
    last: Snapshot,
}

impl MetricsDump {
    fn new(path: String) -> Self {
        MetricsDump {
            path,
            sections: Vec::new(),
            last: MetricsRegistry::global().snapshot(),
        }
    }

    fn record(&mut self, experiment: &str) {
        let now = MetricsRegistry::global().snapshot();
        let delta = now.delta(&self.last);
        self.last = now;
        // Repeat runs of one experiment get distinct keys so the JSON
        // object never carries duplicates.
        let repeats = self
            .sections
            .iter()
            .filter(|(n, _)| n == experiment || n.starts_with(&format!("{experiment}#")))
            .count();
        let key = if repeats == 0 {
            experiment.to_string()
        } else {
            format!("{experiment}#{}", repeats + 1)
        };
        self.sections.push((key, to_json(&delta)));
        let mut out = String::from("{\n");
        for (i, (name, json)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("\"{}\": {}", name, json.trim_end()));
        }
        out.push_str("\n}\n");
        if let Err(e) = std::fs::write(&self.path, out) {
            eprintln!("[repro] cannot write metrics to {}: {e}", self.path);
            exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = 1.0f64;
    let mut metrics: Option<MetricsDump> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = v.parse().unwrap_or_else(|_| usage());
            }
            "--metrics" => {
                let path = it.next().unwrap_or_else(|| usage());
                metrics = Some(MetricsDump::new(path));
            }
            "-h" | "--help" => usage(),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        usage();
    }
    for name in names {
        match name.as_str() {
            "all" => {
                for (n, f) in EXPERIMENTS {
                    eprintln!("[repro] running {n} (scale {scale}) ...");
                    f(scale);
                    if let Some(m) = metrics.as_mut() {
                        m.record(n);
                    }
                }
            }
            "check" => {
                xseq_bench::check();
                if let Some(m) = metrics.as_mut() {
                    m.record("check");
                }
            }
            other => match EXPERIMENTS.iter().find(|(n, _)| *n == other) {
                Some((n, f)) => {
                    f(scale);
                    if let Some(m) = metrics.as_mut() {
                        m.record(n);
                    }
                }
                None => usage(),
            },
        }
    }
}
