//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p xseq-bench --bin repro -- all
//! cargo run --release -p xseq-bench --bin repro -- table7 --scale 0.5
//! ```

use std::process::exit;

/// Experiment registry: name → runner.
type Experiment = (&'static str, fn(f64));

const EXPERIMENTS: &[Experiment] = &[
    ("fig14a", xseq_bench::fig14a),
    ("fig14b", xseq_bench::fig14b),
    ("fig15", xseq_bench::fig15),
    ("table5", xseq_bench::table5),
    ("table6", xseq_bench::table6),
    ("table7", xseq_bench::table7),
    ("table8", xseq_bench::table8),
    ("fig16a", xseq_bench::fig16a),
    ("fig16b", xseq_bench::fig16b),
    ("fig16c", xseq_bench::fig16c),
    ("fig16d", xseq_bench::fig16d),
];

fn usage() -> ! {
    eprintln!("usage: repro <experiment|all|check> [--scale X]");
    eprintln!("experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
    eprintln!("  all     run every experiment");
    eprintln!("  check   tiny-scale sweep with agreement assertions");
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = 1.0f64;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = v.parse().unwrap_or_else(|_| usage());
            }
            "-h" | "--help" => usage(),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        usage();
    }
    for name in names {
        match name.as_str() {
            "all" => {
                for (n, f) in EXPERIMENTS {
                    eprintln!("[repro] running {n} (scale {scale}) ...");
                    f(scale);
                }
            }
            "check" => xseq_bench::check(),
            other => match EXPERIMENTS.iter().find(|(n, _)| *n == other) {
                Some((_, f)) => f(scale),
                None => usage(),
            },
        }
    }
}
