//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p xseq-bench --bin repro -- all
//! cargo run --release -p xseq-bench --bin repro -- table7 --scale 0.5
//! cargo run --release -p xseq-bench --bin repro -- all --metrics out.json
//! cargo run --release -p xseq-bench --bin repro -- table7 fig16b \
//!     --bench-label main               # writes BENCH_main.json
//! cargo run --release -p xseq-bench --bin repro -- table7 fig16b \
//!     --baseline BENCH_main.json       # exits 1 on >15% p50 regression
//! cargo run --release -p xseq-bench --bin repro -- --verify --scale 0.1
//! cargo run --release -p xseq-bench --bin repro -- --diag out/diag
//! ```
//!
//! With `--metrics <path.json>`, the process-wide metrics registry is
//! snapshotted after each experiment and the per-experiment deltas are
//! written to the file as one JSON object keyed by experiment name.
//!
//! With `--bench-label <label>`, the tracked latency quantiles
//! (per-experiment histogram p50/p95/p99) and the `scaling` experiment's
//! throughput gauges are written to `BENCH_<label>.json`.  With
//! `--baseline <path>`, the same keys are compared against a previously
//! written report and the process exits nonzero when any tracked p50
//! regresses more than 15% or any throughput gauge drops more than 50% —
//! the CI gate.  `--threads N` caps the `scaling` thread series.
//!
//! With `--diag <dir>` (alone or after the named experiments), a fully
//! instrumented database runs a representative workload and writes a
//! self-contained diagnostics bundle — metrics, stats, workload profile,
//! traces, the flight-recorder journal, a collapsed phase profile and a
//! build manifest — into `dir`; `cargo xtask diagcheck <dir>` validates it.

use std::process::exit;
use xseq::telemetry::{to_json, MetricsRegistry, Snapshot};
use xseq_bench::regress::{self, BenchReport};

/// Experiment registry: name → runner.
type Experiment = (&'static str, fn(f64));

const EXPERIMENTS: &[Experiment] = &[
    ("fig14a", xseq_bench::fig14a),
    ("fig14b", xseq_bench::fig14b),
    ("fig15", xseq_bench::fig15),
    ("table5", xseq_bench::table5),
    ("table6", xseq_bench::table6),
    ("table7", xseq_bench::table7),
    ("table8", xseq_bench::table8),
    ("fig16a", xseq_bench::fig16a),
    ("fig16b", xseq_bench::fig16b),
    ("fig16c", xseq_bench::fig16c),
    ("fig16d", xseq_bench::fig16d),
    ("scaling", xseq_bench::scaling),
    ("updates", xseq_bench::updates),
    ("profile_overhead", xseq_bench::profile_overhead),
];

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all|check> [--scale X] [--threads N] [--shards N]\n\
         \x20           [--metrics PATH.json] [--bench-label LABEL]\n\
         \x20           [--baseline BENCH.json] [--verify] [--diag DIR]"
    );
    eprintln!("experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
    eprintln!("  all     run every experiment");
    eprintln!("  check   tiny-scale sweep with agreement assertions");
    eprintln!(
        "\n--verify runs the index invariant verifier over every corpus\n\
         (alone or after the named experiments); exits 1 on any violation\n\
         --diag writes a self-contained diagnostics bundle into DIR"
    );
    exit(2)
}

/// Accumulates per-experiment registry deltas; optionally rewrites the
/// `--metrics` output file after each one, so a partial run still leaves
/// valid JSON behind.
struct Recorder {
    metrics_path: Option<String>,
    sections: Vec<(String, Snapshot)>,
    last: Snapshot,
}

impl Recorder {
    fn new(metrics_path: Option<String>) -> Self {
        Recorder {
            metrics_path,
            sections: Vec::new(),
            last: MetricsRegistry::global().snapshot(),
        }
    }

    fn record(&mut self, experiment: &str) {
        let now = MetricsRegistry::global().snapshot();
        let mut delta = now.delta(&self.last);
        // `Snapshot::delta` keeps a gauge's current value, so a gauge set
        // by an *earlier* experiment (scaling's throughput series, say)
        // would bleed into every later section.  A section only owns the
        // gauges that moved while it ran.
        delta.metrics.retain(|name, value| match value {
            xseq::telemetry::MetricValue::Gauge(_) => self.last.get(name) != Some(value),
            _ => true,
        });
        self.last = now;
        // Repeat runs of one experiment get distinct keys so the JSON
        // object never carries duplicates.
        let repeats = self
            .sections
            .iter()
            .filter(|(n, _)| n == experiment || n.starts_with(&format!("{experiment}#")))
            .count();
        let key = if repeats == 0 {
            experiment.to_string()
        } else {
            format!("{experiment}#{}", repeats + 1)
        };
        self.sections.push((key, delta));
        if let Some(path) = &self.metrics_path {
            let mut out = String::from("{\n");
            for (i, (name, delta)) in self.sections.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&format!("\"{}\": {}", name, to_json(delta).trim_end()));
            }
            out.push_str("\n}\n");
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("[repro] cannot write metrics to {path}: {e}");
                exit(1);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = 1.0f64;
    let mut metrics_path: Option<String> = None;
    let mut bench_label: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut verify = false;
    let mut diag_dir: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = v.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| usage());
                xseq_bench::set_thread_cap(v.parse().unwrap_or_else(|_| usage()));
            }
            "--shards" => {
                let v = it.next().unwrap_or_else(|| usage());
                xseq_bench::set_shard_cap(v.parse().unwrap_or_else(|_| usage()));
            }
            "--metrics" => metrics_path = Some(it.next().unwrap_or_else(|| usage())),
            "--bench-label" => bench_label = Some(it.next().unwrap_or_else(|| usage())),
            "--baseline" => baseline_path = Some(it.next().unwrap_or_else(|| usage())),
            "--verify" => verify = true,
            "--diag" => diag_dir = Some(it.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() && !verify && diag_dir.is_none() {
        usage();
    }
    let mut recorder = Recorder::new(metrics_path);
    for name in names {
        match name.as_str() {
            "all" => {
                for (n, f) in EXPERIMENTS {
                    eprintln!("[repro] running {n} (scale {scale}) ...");
                    f(scale);
                    recorder.record(n);
                }
            }
            "check" => {
                xseq_bench::check();
                recorder.record("check");
            }
            other => match EXPERIMENTS.iter().find(|(n, _)| *n == other) {
                Some((n, f)) => {
                    f(scale);
                    recorder.record(n);
                }
                None => usage(),
            },
        }
    }

    if verify {
        eprintln!("[repro] verifying index integrity (scale {scale}) ...");
        if !xseq_bench::verify_corpora(scale) {
            exit(1);
        }
        recorder.record("verify");
    }

    if let Some(dir) = diag_dir {
        eprintln!("[repro] writing diagnostics bundle to {dir} ...");
        xseq_bench::diagnostics_bundle(&dir);
        recorder.record("diagnostics");
    }

    if bench_label.is_none() && baseline_path.is_none() {
        return;
    }
    let report = BenchReport::from_sections(&recorder.sections);
    if let Some(label) = bench_label {
        let path = format!("BENCH_{label}.json");
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("[repro] cannot write bench report to {path}: {e}");
            exit(1);
        }
        eprintln!(
            "[repro] wrote {} tracked latencies to {path}",
            report.entries.len()
        );
    }
    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("[repro] cannot read baseline {path}: {e}");
                exit(1);
            }
        };
        let baseline = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("[repro] cannot parse baseline {path}: {e}");
                exit(1);
            }
        };
        let regressions = regress::compare(
            &baseline,
            &report,
            regress::DEFAULT_THRESHOLD,
            regress::NOISE_FLOOR_NS,
        );
        print!(
            "{}",
            regress::render_comparison(&baseline, &report, &regressions)
        );
        if !regressions.is_empty() {
            eprintln!(
                "[repro] FAIL: {} tracked metric{} regressed past the gate vs {path}",
                regressions.len(),
                if regressions.len() == 1 { "" } else { "s" },
            );
            exit(1);
        }
        eprintln!("[repro] OK: no tracked latency or throughput regressed vs {path}");
    }
}
