//! The bench-regression harness behind `repro --bench-label / --baseline`.
//!
//! A [`BenchReport`] is a flat map of tracked quantiles — one entry per
//! `<experiment>/<histogram-metric>.<quantile>` with its nanosecond value,
//! extracted from the per-experiment registry deltas the `repro` binary
//! already records.  Reports serialize as a flat JSON object
//! (`BENCH_<label>.json`), readable by the dep-free parser here, so a
//! committed `BENCH_main.json` baseline can gate CI: [`compare`] flags
//! every tracked latency whose p50 regressed more than the threshold.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use xseq::telemetry::{MetricValue, Snapshot};

/// Quantiles tracked per histogram metric.
const QUANTILES: &[(&str, f64)] = &[("p50", 0.50), ("p95", 0.95), ("p99", 0.99)];

/// Regressions are gated on p50 only: tail quantiles of pow2-bucketed
/// histograms on small CI datasets are too coarse to gate on.
const GATED_SUFFIX: &str = ".p50";

/// Baseline entries below this are ignored by the gate — experiments that
/// fast sit inside scheduler noise, not measurement.
pub const NOISE_FLOOR_NS: u64 = 50_000;

/// Latencies may grow by at most this fraction over the baseline.
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Throughput gauges (`*.docs_per_s.*`, `*.qps.*` from the `scaling`
/// experiment) may *drop* by at most this fraction.  Deliberately tolerant:
/// wall-clock throughput on shared CI hosts (often a single core, where
/// multi-thread runs oversubscribe and swing ±40% between passes) is far
/// noisier than the per-phase latency histograms, so this catches
/// collapses — an accidentally serialized pipeline, a poisoned fast path —
/// not drift.
pub const THROUGHPUT_THRESHOLD: f64 = 0.6;

/// True for report keys that carry operations-per-second gauges rather
/// than nanosecond quantiles — gated on decrease, not growth.
fn is_throughput_key(key: &str) -> bool {
    key.contains(".docs_per_s.") || key.contains(".qps.")
}

/// True for merge-debt gauges (`update.merge.stall_ns` from the `updates`
/// experiment): nanoseconds of tier-merge backlog a foreground caller
/// could stall behind.  Gated on *growth* past [`THROUGHPUT_THRESHOLD`] —
/// the same tolerant bound as the throughput series, since the drain is a
/// wall-clock measurement with the same CI-host noise profile.
fn is_stall_key(key: &str) -> bool {
    key.ends_with(".stall_ns")
}

/// The profiling zero-overhead guard: the `profile_overhead` experiment's
/// gated ratio gauge may grow by at most this fraction over the baseline.
/// The gauge is the profiled-over-unprofiled p50 ratio measured *within
/// one run* (host noise cancels), so a tight gate is safe where a 3% gate
/// on raw wall-clock quantiles would flake.
pub const PROFILE_OVERHEAD_THRESHOLD: f64 = 0.03;

/// True for the `profile_overhead` experiment's gated ratio keys — held to
/// [`PROFILE_OVERHEAD_THRESHOLD`], exempt from the nanosecond noise floor
/// (the value is a per-mille ratio, not a duration).
fn is_profile_overhead_key(key: &str) -> bool {
    key.starts_with("profile_overhead/") && key.ends_with(GATED_SUFFIX)
}

/// Metrics whose baseline has fewer samples than this are not gated: the
/// p50 of a handful of samples in a pow2-bucketed histogram moves by a
/// whole bucket (2×) between runs.
pub const MIN_GATE_SAMPLES: u64 = 16;

/// A flat map `"<experiment>/<metric>.<quantile>" → nanoseconds`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchReport {
    /// The tracked values, sorted by key.
    pub entries: BTreeMap<String, u64>,
}

/// One tracked metric that moved past its threshold — a latency that grew,
/// or a throughput gauge that dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The flat report key.
    pub key: String,
    /// Baseline value — ns for latency keys, ops/s for throughput keys.
    pub baseline_ns: u64,
    /// Current value, same unit as the baseline.
    pub current_ns: u64,
    /// `current / baseline - 1` (negative when throughput dropped).
    pub growth: f64,
}

impl BenchReport {
    /// Extracts the tracked quantiles of every histogram in each
    /// experiment's registry delta.
    pub fn from_sections(sections: &[(String, Snapshot)]) -> Self {
        let mut entries = BTreeMap::new();
        for (experiment, delta) in sections {
            for (metric, value) in &delta.metrics {
                match value {
                    MetricValue::Histogram(h) => {
                        if h.count == 0 {
                            continue;
                        }
                        for (label, q) in QUANTILES {
                            if let Some(v) = h.quantile(*q) {
                                entries.insert(format!("{experiment}/{metric}.{label}"), v);
                            }
                        }
                        entries.insert(format!("{experiment}/{metric}.count"), h.count);
                    }
                    // Tracked gauges: throughput series, the derived
                    // speedup-vs-t1 series, and the profiler-overhead
                    // ratio (a gauge named `.p50` so the gate grammar
                    // picks it up).
                    MetricValue::Gauge(v)
                        if *v > 0
                            && (is_throughput_key(metric)
                                || is_stall_key(metric)
                                || metric.contains(".speedup_x100.")
                                || metric.ends_with(GATED_SUFFIX)) =>
                    {
                        entries.insert(format!("{experiment}/{metric}"), *v as u64);
                    }
                    _ => {}
                }
            }
        }
        BenchReport { entries }
    }

    /// Serializes as a flat JSON object, one key per line, sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "  {}: {}",
                xseq::telemetry::export::json_string(key),
                value
            );
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses the flat JSON object written by [`BenchReport::to_json`].
    ///
    /// Accepts exactly that shape — string keys, unsigned integer values —
    /// and reports anything else as an error naming the offending position.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let mut p = FlatParser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.parse()
    }
}

struct FlatParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FlatParser<'a> {
    fn parse(&mut self) -> Result<BenchReport, String> {
        let mut entries = BTreeMap::new();
        self.skip_ws();
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(BenchReport { entries });
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.number()?;
            entries.insert(key, value);
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => return Ok(BenchReport { entries }),
                other => return Err(self.err_at(other, "',' or '}'")),
            }
        }
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(self.err_at(other, &format!("'{}'", want as char))),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    other => return Err(self.err_at(other, "a simple escape")),
                },
                Some(b) => out.push(b as char),
                None => return Err(self.err_at(None, "closing '\"'")),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            let b = self.peek();
            return Err(self.err_at(b, "a digit"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|e| format!("number at byte {start}: {e}"))
    }

    fn err_at(&self, found: Option<u8>, expected: &str) -> String {
        match found {
            Some(b) => format!(
                "bench report: unexpected '{}' at byte {}, expected {expected}",
                b as char,
                self.pos.saturating_sub(1)
            ),
            None => format!("bench report: unexpected end of input, expected {expected}"),
        }
    }
}

/// True when `key` (a `*.p50` entry) is exempt from gating because its
/// baseline histogram recorded fewer than [`MIN_GATE_SAMPLES`] samples.
fn too_few_samples(baseline: &BenchReport, key: &str) -> bool {
    let count_key = format!("{}.count", key.trim_end_matches(GATED_SUFFIX));
    // baselines written before counts were tracked gate unconditionally
    baseline
        .entries
        .get(&count_key)
        .is_some_and(|&c| c < MIN_GATE_SAMPLES)
}

/// Flags every gated key whose current value moved past its threshold in
/// the bad direction.  Latency keys (`*.p50`, baseline at or above
/// `floor_ns`, enough baseline samples) are gated on *growth* over
/// `threshold`; throughput keys (`*.docs_per_s.*`, `*.qps.*`) are gated on
/// a *drop* beyond [`THROUGHPUT_THRESHOLD`]; merge-debt keys
/// (`*.stall_ns`) are gated on growth past the same tolerant bound.  Keys
/// absent from either report are skipped: the gate compares what both
/// runs measured.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold: f64,
    floor_ns: u64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (key, &base) in &baseline.entries {
        if base == 0 {
            continue;
        }
        let Some(&cur) = current.entries.get(key) else {
            continue;
        };
        let growth = cur as f64 / base as f64 - 1.0;
        let regressed = if is_throughput_key(key) {
            -growth > THROUGHPUT_THRESHOLD
        } else if is_stall_key(key) {
            growth > THROUGHPUT_THRESHOLD
        } else if is_profile_overhead_key(key) {
            growth > PROFILE_OVERHEAD_THRESHOLD
        } else if key.ends_with(GATED_SUFFIX) && base >= floor_ns && !too_few_samples(baseline, key)
        {
            growth > threshold
        } else {
            false
        };
        if regressed {
            out.push(Regression {
                key: key.clone(),
                baseline_ns: base,
                current_ns: cur,
                growth,
            });
        }
    }
    out
}

/// Renders a comparison summary: every gated key with its baseline/current
/// values, regressions marked.  Latencies print as durations, throughput
/// gauges as ops/s.
pub fn render_comparison(
    baseline: &BenchReport,
    current: &BenchReport,
    regressions: &[Regression],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<56} {:>12} {:>12} {:>8}",
        "tracked metric", "baseline", "current", "delta"
    );
    for (key, &base) in &baseline.entries {
        let throughput = is_throughput_key(key);
        if !throughput && !key.ends_with(GATED_SUFFIX) {
            continue;
        }
        let Some(&cur) = current.entries.get(key) else {
            continue;
        };
        let growth = if base == 0 {
            0.0
        } else {
            cur as f64 / base as f64 - 1.0
        };
        let profile_ratio = is_profile_overhead_key(key);
        let flag = if regressions.iter().any(|r| r.key == *key) {
            "  REGRESSED"
        } else if throughput || profile_ratio {
            ""
        } else if base < NOISE_FLOOR_NS {
            "  (below noise floor)"
        } else if too_few_samples(baseline, key) {
            "  (too few samples)"
        } else {
            ""
        };
        let render = |v: u64| {
            if throughput {
                format!("{v}/s")
            } else if profile_ratio {
                format!("{}.{:03}x", v / 1000, v % 1000)
            } else {
                xseq::telemetry::format_ns(v)
            }
        };
        let _ = writeln!(
            out,
            "{:<56} {:>12} {:>12} {:>+7.1}%{flag}",
            key,
            render(base),
            render(cur),
            growth * 100.0,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq::MetricsRegistry;

    fn report(pairs: &[(&str, u64)]) -> BenchReport {
        BenchReport {
            entries: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn json_round_trip() {
        let r = report(&[
            ("table7/index.search.p50", 1_234_567),
            ("table7/index.search.p95", 2_000_000),
            ("fig16b/index.plan.p50", 42),
        ]);
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "{\"a\" 1}", "{\"a\": }", "{\"a\": 1,", "[1]"] {
            assert!(BenchReport::from_json(bad).is_err(), "{bad:?}");
        }
        assert!(BenchReport::from_json("{}").unwrap().entries.is_empty());
    }

    #[test]
    fn injected_regression_is_flagged() {
        let base = report(&[("t/index.search.p50", 1_000_000)]);
        let bad = report(&[("t/index.search.p50", 1_200_000)]);
        let ok = report(&[("t/index.search.p50", 1_100_000)]);
        let regs = compare(&base, &bad, DEFAULT_THRESHOLD, NOISE_FLOOR_NS);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "t/index.search.p50");
        assert!((regs[0].growth - 0.2).abs() < 1e-9);
        assert!(compare(&base, &ok, DEFAULT_THRESHOLD, NOISE_FLOOR_NS).is_empty());
    }

    #[test]
    fn gate_ignores_tail_quantiles_noise_floor_and_missing_keys() {
        let base = report(&[
            ("t/a.p95", 1_000_000), // tail quantile: not gated
            ("t/b.p50", 10_000),    // below the noise floor
            ("t/c.p50", 1_000_000), // missing from current
            ("t/d.p50", 1_000_000), // fine
        ]);
        let cur = report(&[
            ("t/a.p95", 9_000_000),
            ("t/b.p50", 90_000),
            ("t/d.p50", 1_000_001),
        ]);
        assert!(compare(&base, &cur, DEFAULT_THRESHOLD, NOISE_FLOOR_NS).is_empty());
    }

    #[test]
    fn gate_exempts_small_sample_histograms() {
        let base = report(&[
            ("t/a.p50", 1_000_000),
            ("t/a.count", 3), // p50 of 3 samples: bucket noise
            ("t/b.p50", 1_000_000),
            ("t/b.count", 100),
        ]);
        let cur = report(&[("t/a.p50", 5_000_000), ("t/b.p50", 5_000_000)]);
        let regs = compare(&base, &cur, DEFAULT_THRESHOLD, NOISE_FLOOR_NS);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "t/b.p50");
    }

    #[test]
    fn from_sections_extracts_histogram_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("index.search");
        for v in [100_000u64, 200_000, 300_000] {
            h.record(v);
        }
        reg.counter("index.search.candidates").add(5); // not a histogram
        reg.histogram("index.plan"); // empty: skipped
        let sections = vec![("table7".to_string(), reg.snapshot())];
        let r = BenchReport::from_sections(&sections);
        assert!(r.entries.contains_key("table7/index.search.p50"));
        assert!(r.entries.contains_key("table7/index.search.p95"));
        assert!(r.entries.contains_key("table7/index.search.p99"));
        assert_eq!(r.entries.get("table7/index.search.count"), Some(&3));
        assert!(!r.entries.keys().any(|k| k.contains("candidates")));
        assert!(!r.entries.keys().any(|k| k.contains("index.plan")));
    }

    #[test]
    fn from_sections_extracts_throughput_gauges() {
        let reg = MetricsRegistry::new();
        reg.gauge("ingest.docs_per_s.t4").set(12_345);
        reg.gauge("query.qps.t4").set(678);
        reg.gauge("pool.resident_pages").set(99); // not throughput: skipped
        reg.gauge("ingest.docs_per_s.t8").set(0); // empty run: skipped
        let sections = vec![("scaling".to_string(), reg.snapshot())];
        let r = BenchReport::from_sections(&sections);
        assert_eq!(r.entries.get("scaling/ingest.docs_per_s.t4"), Some(&12_345));
        assert_eq!(r.entries.get("scaling/query.qps.t4"), Some(&678));
        assert!(!r.entries.keys().any(|k| k.contains("resident_pages")));
        assert!(!r.entries.keys().any(|k| k.contains("t8")));
    }

    #[test]
    fn throughput_gated_on_drop_not_growth() {
        let base = report(&[
            ("scaling/ingest.docs_per_s.t2", 10_000),
            ("scaling/query.qps.t2", 10_000),
            ("scaling/query.qps.t4", 10_000), // missing from current: skipped
        ]);
        // ingest collapsed (−70%), qps *grew* 10× — only the collapse fires
        let cur = report(&[
            ("scaling/ingest.docs_per_s.t2", 3_000),
            ("scaling/query.qps.t2", 100_000),
        ]);
        let regs = compare(&base, &cur, DEFAULT_THRESHOLD, NOISE_FLOOR_NS);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "scaling/ingest.docs_per_s.t2");
        assert!((regs[0].growth + 0.7).abs() < 1e-9);
        // a drop within the tolerant threshold passes
        let ok = report(&[
            ("scaling/ingest.docs_per_s.t2", 6_000),
            ("scaling/query.qps.t2", 6_000),
        ]);
        assert!(compare(&base, &ok, DEFAULT_THRESHOLD, NOISE_FLOOR_NS).is_empty());
    }

    #[test]
    fn merge_stall_gated_on_growth_not_drop() {
        // nanosecond merge-debt gauge: growing past the tolerant bound
        // fires, shrinking (merges got cheaper) never does
        let base = report(&[("updates/update.merge.stall_ns", 10_000)]);
        let bad = report(&[("updates/update.merge.stall_ns", 17_000)]);
        let ok = report(&[("updates/update.merge.stall_ns", 15_000)]);
        let gone = report(&[("updates/update.merge.stall_ns", 1_000)]);
        let regs = compare(&base, &bad, DEFAULT_THRESHOLD, NOISE_FLOOR_NS);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "updates/update.merge.stall_ns");
        assert!(compare(&base, &ok, DEFAULT_THRESHOLD, NOISE_FLOOR_NS).is_empty());
        assert!(compare(&base, &gone, DEFAULT_THRESHOLD, NOISE_FLOOR_NS).is_empty());
    }

    #[test]
    fn profile_overhead_ratio_gated_at_3_percent_below_the_floor() {
        // per-mille ratio values sit far below NOISE_FLOOR_NS yet must gate
        let base = report(&[("profile_overhead/query.overhead.p50", 1_000)]);
        let bad = report(&[("profile_overhead/query.overhead.p50", 1_040)]);
        let ok = report(&[("profile_overhead/query.overhead.p50", 1_020)]);
        let regs = compare(&base, &bad, DEFAULT_THRESHOLD, NOISE_FLOOR_NS);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "profile_overhead/query.overhead.p50");
        assert!(compare(&base, &ok, DEFAULT_THRESHOLD, NOISE_FLOOR_NS).is_empty());
        // ordinary experiments keep the loose threshold and the floor
        let base = report(&[("table7/index.search.p50", 1_000)]);
        let cur = report(&[("table7/index.search.p50", 1_040)]);
        assert!(compare(&base, &cur, DEFAULT_THRESHOLD, NOISE_FLOOR_NS).is_empty());
    }

    #[test]
    fn from_sections_extracts_speedup_and_overhead_gauges() {
        let reg = MetricsRegistry::new();
        reg.gauge("ingest.speedup_x100.t4").set(310);
        reg.gauge("query.overhead.p50").set(1_005);
        reg.gauge("query.profiled.p50_ns").set(123_456); // informational only
        let sections = vec![("scaling".to_string(), reg.snapshot())];
        let r = BenchReport::from_sections(&sections);
        assert_eq!(r.entries.get("scaling/ingest.speedup_x100.t4"), Some(&310));
        assert_eq!(r.entries.get("scaling/query.overhead.p50"), Some(&1_005));
        assert!(!r.entries.keys().any(|k| k.contains("p50_ns")));
    }

    #[test]
    fn render_includes_throughput_rows() {
        let base = report(&[("scaling/query.qps.t2", 10_000)]);
        let cur = report(&[("scaling/query.qps.t2", 2_000)]);
        let regs = compare(&base, &cur, DEFAULT_THRESHOLD, NOISE_FLOOR_NS);
        let table = render_comparison(&base, &cur, &regs);
        assert!(table.contains("scaling/query.qps.t2"));
        assert!(table.contains("10000/s"));
        assert!(table.contains("REGRESSED"));
    }

    #[test]
    fn render_marks_regressions() {
        let base = report(&[("t/x.p50", 1_000_000), ("t/y.p50", 1_000_000)]);
        let cur = report(&[("t/x.p50", 2_000_000), ("t/y.p50", 1_000_000)]);
        let regs = compare(&base, &cur, DEFAULT_THRESHOLD, NOISE_FLOOR_NS);
        let table = render_comparison(&base, &cur, &regs);
        assert!(table.contains("REGRESSED"));
        assert!(table.lines().count() >= 3);
    }
}
