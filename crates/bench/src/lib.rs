//! # xseq-bench — the paper's evaluation, experiment by experiment
//!
//! One function per table/figure of Section 6.  Each regenerates the
//! corresponding workload with the seeded generators, runs the same
//! engines the paper ran, and prints a markdown table with the same rows
//! and series the paper reports.  The `repro` binary dispatches on
//! experiment name; `repro all` runs the lot.
//!
//! Absolute numbers will differ from a 2005 1.8 GHz Windows machine — the
//! *shapes* (who wins, by what factor, where curves bend) are the
//! reproduction target, recorded in `EXPERIMENTS.md`.
#![forbid(unsafe_code)]

pub mod regress;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use xseq::baselines::{NodeIndex, PathIndex, VistIndex};
use xseq::datagen::{
    self, queries, random_query_tree, DblpGenerator, SyntheticDataset, SyntheticParams,
    XmarkGenerator, XmarkOptions,
};
use xseq::index::{tree_search, QuerySequence, XmlIndex};
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::Strategy;
use xseq::storage::{write_paged_trie, MemStore, PagedTrie};
use xseq::xml::matcher::structure_match;
use xseq::{
    parse_xpath, AnomalyDetector, Axis, Corpus, Database, DatabaseBuilder, Document,
    IndexTelemetry, MetricsRegistry, PatternLabel, PlanOptions, PoolTelemetry, SymbolTable,
    TreePattern, ValueMode,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Index-side handles into the process-wide registry (`repro --metrics`
/// snapshots it after each experiment).
fn global_index_telemetry() -> IndexTelemetry {
    IndexTelemetry::register(MetricsRegistry::global())
}

/// Pool-side handles into the process-wide registry.
fn global_pool_telemetry() -> PoolTelemetry {
    PoolTelemetry::register(MetricsRegistry::global())
}

/// Scales every dataset-size parameter (1.0 = defaults).
pub fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(100)
}

fn cs_strategy(docs: &[Document], paths: &mut xseq::PathTable, sample: usize) -> Strategy {
    let model = ProbabilityModel::estimate(docs, paths, sample);
    Strategy::Probability(model.priorities(paths, &WeightMap::default()))
}

/// Builds an exact child-axis pattern from a sampled subtree.
pub fn pattern_of(doc: &Document) -> TreePattern {
    let root = doc
        .root()
        .expect("pattern_of requires a non-empty sampled document");
    let label = |d: &Document, n: u32| match (d.sym(n).as_elem(), d.sym(n).as_value()) {
        (Some(e), _) => PatternLabel::Elem(e),
        (_, Some(v)) => PatternLabel::Value(v),
        _ => unreachable!(),
    };
    let mut q = TreePattern::root(label(doc, root));
    let mut map = vec![0u32; doc.len()];
    for n in doc.preorder() {
        if n == root {
            continue;
        }
        let p = doc.parent(n).expect("non-root");
        map[n as usize] = q.add(map[p as usize], Axis::Child, label(doc, n));
    }
    q
}

/// Random exact query patterns of roughly `len` nodes drawn from the data.
pub fn random_patterns(docs: &[Document], len: usize, count: usize, seed: u64) -> Vec<TreePattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let src = &docs[(i * 131) % docs.len()];
            pattern_of(&random_query_tree(src, len, &mut rng))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 14: index size vs dataset size, four sequencing strategies
// ---------------------------------------------------------------------------

/// Shared body for Figures 14(a) and 14(b).
fn fig14(params: SyntheticParams, scale: f64) {
    println!("## Figure 14 — index size, dataset {}", params.name());
    println!();
    println!(
        "| documents | avg seq len | Random | Breadth-first | Depth-first | Constraint (CS) |"
    );
    println!("|---|---|---|---|---|---|");
    let base = scaled(20_000, scale);
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let mut ds = SyntheticDataset::generate(&params, base, 14, &mut symbols);
    for step in 1..=5 {
        if step > 1 {
            ds.extend(base, 14 + step as u64);
        }
        let n = ds.docs.len();
        let mut sizes = Vec::new();
        for strategy in [
            Strategy::Random { seed: 5 },
            Strategy::BreadthFirst,
            Strategy::DepthFirst,
        ] {
            let mut paths = xseq::PathTable::new();
            let index = XmlIndex::build(&ds.docs, &mut paths, strategy, PlanOptions::default());
            sizes.push(index.node_count());
        }
        {
            // the probability strategy's PriorityMap is keyed by path ids,
            // so estimation and build must share one PathTable
            let mut paths = xseq::PathTable::new();
            let cs = cs_strategy(&ds.docs, &mut paths, 2000);
            let index = XmlIndex::build(&ds.docs, &mut paths, cs, PlanOptions::default());
            sizes.push(index.node_count());
        }
        println!(
            "| {} | {:.1} | {} | {} | {} | {} |",
            n,
            ds.avg_len(),
            sizes[0],
            sizes[1],
            sizes[2],
            sizes[3]
        );
    }
    println!();
}

/// Figure 14(a): dataset `L3F5A25I0P40`.
pub fn fig14a(scale: f64) {
    fig14(SyntheticParams::fig14a(), scale);
}

/// Figure 14(b): dataset `L5F3A40I0P5`.
pub fn fig14b(scale: f64) {
    fig14(SyntheticParams::fig14b(), scale);
}

// ---------------------------------------------------------------------------
// Figure 15: impact of identical sibling nodes on index size
// ---------------------------------------------------------------------------

/// Figure 15: `L3F5A25I?P40`, `I` from 0% to 100%, DF vs CS.
pub fn fig15(scale: f64) {
    println!("## Figure 15 — impact of identical sibling nodes (L3F5A25I?P40)");
    println!();
    println!("| I (%) | avg seq len | Depth-first | Constraint (CS) | CS/DF |");
    println!("|---|---|---|---|---|");
    let n = scaled(30_000, scale);
    for i_pct in [0u8, 20, 40, 60, 80, 100] {
        let params = SyntheticParams {
            identical_pct: i_pct,
            ..SyntheticParams::fig14a()
        };
        let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
        let ds = SyntheticDataset::generate(&params, n, 15, &mut symbols);
        let mut paths = xseq::PathTable::new();
        let df = XmlIndex::build(
            &ds.docs,
            &mut paths,
            Strategy::DepthFirst,
            PlanOptions::default(),
        );
        let mut paths_cs = xseq::PathTable::new();
        let cs_strat = cs_strategy(&ds.docs, &mut paths_cs, 2000);
        let cs = XmlIndex::build(&ds.docs, &mut paths_cs, cs_strat, PlanOptions::default());
        println!(
            "| {} | {:.1} | {} | {} | {:.2} |",
            i_pct,
            ds.avg_len(),
            df.node_count(),
            cs.node_count(),
            cs.node_count() as f64 / df.node_count() as f64
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Tables 5 and 6: XMark index sizes
// ---------------------------------------------------------------------------

fn xmark_table(title: &str, identical: bool, scale: f64) {
    println!("## {title}");
    println!();
    println!("| Records | Nodes | DF | CS | CS/DF |");
    println!("|---|---|---|---|---|");
    for step in 1..=5 {
        let n = scaled(10_000 * step, scale);
        let mut corpus = Corpus::new(ValueMode::Intern);
        corpus.docs = XmarkGenerator::new(
            8,
            XmarkOptions {
                identical_siblings: identical,
            },
        )
        .generate(n, &mut corpus.symbols);
        let nodes = corpus.total_nodes();
        let mut paths = xseq::PathTable::new();
        let df = XmlIndex::build(
            &corpus.docs,
            &mut paths,
            Strategy::DepthFirst,
            PlanOptions::default(),
        );
        let mut paths_cs = xseq::PathTable::new();
        let strat = cs_strategy(&corpus.docs, &mut paths_cs, 2000);
        let cs = XmlIndex::build(&corpus.docs, &mut paths_cs, strat, PlanOptions::default());
        println!(
            "| {} | {} | {} | {} | {:.2} |",
            n,
            nodes,
            df.node_count(),
            cs.node_count(),
            cs.node_count() as f64 / df.node_count() as f64
        );
    }
    println!();
}

/// Table 5: XMark index size with identical sibling nodes.
pub fn table5(scale: f64) {
    xmark_table(
        "Table 5 — XMark index size (identical sibling nodes)",
        true,
        scale,
    );
}

/// Table 6: XMark index size without identical sibling nodes.
pub fn table6(scale: f64) {
    xmark_table(
        "Table 6 — XMark index size (no identical sibling nodes)",
        false,
        scale,
    );
}

// ---------------------------------------------------------------------------
// Table 7: query performance on XMark
// ---------------------------------------------------------------------------

/// Table 7: Q1–Q3 on XMark — query length, result size, disk accesses,
/// elapsed time.
pub fn table7(scale: f64) {
    println!("## Table 7 — query performance on XMark");
    println!();
    let n = scaled(60_000, scale);
    let mut corpus = Corpus::new(ValueMode::Intern);
    corpus.docs = XmarkGenerator::new(8, XmarkOptions::default()).generate(n, &mut corpus.symbols);
    let strat = cs_strategy(&corpus.docs, &mut corpus.paths, 2000);
    let mut index = XmlIndex::build(
        &corpus.docs,
        &mut corpus.paths,
        strat,
        PlanOptions::default(),
    );
    index.attach_telemetry(global_index_telemetry());

    let mut store = MemStore::new();
    let pages = write_paged_trie(index.trie(), &mut store).expect("in-memory store");
    let paged = PagedTrie::open(store, 4096).expect("valid layout");
    paged.attach_pool_telemetry(global_pool_telemetry());
    println!(
        "{n} records, {} trie nodes, paged into {pages} × 4 KiB pages",
        index.node_count()
    );
    println!();

    // Q3's constants are instantiated from the generated data (the paper's
    // person11304 existed in *their* XMark instance).
    let (q3_person, q3_date) =
        datagen::xmark::q3_constants(&corpus.docs, &corpus.symbols).expect("closed auctions exist");
    let q3 = format!("//closed_auction[seller/person='{q3_person}']/date[text='{q3_date}']");
    let qs: Vec<(&str, String)> = vec![
        ("Q1", queries::XMARK_Q1.to_string()),
        ("Q2", queries::XMARK_Q2.to_string()),
        ("Q3", q3),
    ];

    println!("| query | query length | result size | # disk accesses | time (ms) |");
    println!("|---|---|---|---|---|");
    for (name, expr) in &qs {
        let pattern = parse_xpath(expr, &mut corpus.symbols).expect("paper query parses");
        let t0 = Instant::now();
        let outcome = index.query(&pattern, &corpus.paths);
        let elapsed = t0.elapsed();

        paged.reset_pool();
        let concrete =
            xseq::index::instantiate(&pattern, &corpus.paths, index.data_paths(), index.options());
        let mut disk_docs = Vec::new();
        for qdoc in &concrete {
            let qseq = QuerySequence::from_document(qdoc, &mut corpus.paths, index.strategy());
            let (docs, _) = tree_search(&paged, &qseq);
            disk_docs.extend(docs);
        }
        disk_docs.sort_unstable();
        disk_docs.dedup();
        assert_eq!(disk_docs, outcome.docs, "paged agrees with memory");

        println!(
            "| {} | {} | {} | {} | {:.2} |",
            name,
            pattern.len(),
            outcome.docs.len(),
            paged.pool_stats().misses,
            elapsed.as_secs_f64() * 1e3
        );
    }
    println!();
    println!("(Q3 instantiated as: {})", qs[2].1);
    println!();
}

// ---------------------------------------------------------------------------
// Table 8: query performance on DBLP, engine comparison
// ---------------------------------------------------------------------------

/// Table 8: Q1–Q4 on DBLP — path index vs node index vs CS (plus ViST).
pub fn table8(scale: f64) {
    println!("## Table 8 — query performance on DBLP (ms)");
    println!();
    let n = scaled(100_000, scale);
    let mut corpus = Corpus::new(ValueMode::Intern);
    corpus.docs = DblpGenerator::new(7).generate(n, &mut corpus.symbols);
    println!(
        "{n} records, avg {:.1} nodes/record",
        corpus.total_nodes() as f64 / n as f64
    );
    println!();

    let path_idx = PathIndex::build(&corpus.docs, &mut corpus.paths);
    let node_idx = NodeIndex::build(&corpus.docs);
    let vist = VistIndex::build(&corpus.docs, &mut corpus.paths);
    let strat = cs_strategy(&corpus.docs, &mut corpus.paths, 2000);
    let mut cs = XmlIndex::build(
        &corpus.docs,
        &mut corpus.paths,
        strat,
        PlanOptions::default(),
    );
    cs.attach_telemetry(global_index_telemetry());

    println!("| query | results | paths | nodes | ViST | CS | expression |");
    println!("|---|---|---|---|---|---|---|");
    for (name, expr) in queries::DBLP_QUERIES {
        let pattern = parse_xpath(expr, &mut corpus.symbols).expect("paper query parses");

        let t = Instant::now();
        let (r1, _) = path_idx.query(&pattern, &corpus.docs, &corpus.paths);
        let t1 = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let (r2, _) = node_idx.query(&pattern, &corpus.docs);
        let t2 = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let (r3, _) = vist.query(&pattern, &corpus.docs, &mut corpus.paths);
        let t3 = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let r4 = cs.query(&pattern, &corpus.paths).docs;
        let t4 = t.elapsed().as_secs_f64() * 1e3;

        assert_eq!(r1, r2);
        assert_eq!(r2, r3);
        assert_eq!(r3, r4);
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | `{}` |",
            name,
            r4.len(),
            t1,
            t2,
            t3,
            t4,
            expr
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Figure 16: synthetic query performance
// ---------------------------------------------------------------------------

/// Figure 16(a): CS vs ViST query time as the dataset grows
/// (`L3F5A25I10P40`, query length 5).
pub fn fig16a(scale: f64) {
    println!("## Figure 16(a) — CS vs ViST, scaling dataset (L3F5A25I10P40, query length 5)");
    println!();
    println!("| documents | ViST (µs/query) | CS (µs/query) | speedup |");
    println!("|---|---|---|---|");
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let base = scaled(50_000, scale);
    let mut ds = SyntheticDataset::generate(&SyntheticParams::fig16(), base, 16, &mut symbols);
    for step in 1..=4 {
        if step > 1 {
            ds.extend(ds.docs.len(), 16 + step as u64); // double each step
        }
        let (v, c) = cs_vs_vist(&ds.docs, 5, 30);
        println!(
            "| {} | {:.1} | {:.1} | {:.1}× |",
            ds.docs.len(),
            v,
            c,
            v / c.max(0.001)
        );
    }
    println!();
}

/// Figure 16(b): CS vs ViST as query length grows (fixed dataset).
pub fn fig16b(scale: f64) {
    println!("## Figure 16(b) — CS vs ViST, query length sweep (L3F5A25I10P40)");
    println!();
    println!("| query length | ViST (µs/query) | CS (µs/query) | speedup |");
    println!("|---|---|---|---|");
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let n = scaled(200_000, scale);
    let ds = SyntheticDataset::generate(&SyntheticParams::fig16(), n, 16, &mut symbols);
    for len in [2usize, 4, 6, 8, 10, 12] {
        let (v, c) = cs_vs_vist(&ds.docs, len, 20);
        println!(
            "| {} | {:.1} | {:.1} | {:.1}× |",
            len,
            v,
            c,
            v / c.max(0.001)
        );
    }
    println!();
}

/// Shared CS-vs-ViST timing: mean microseconds per query.
fn cs_vs_vist(docs: &[Document], len: usize, count: usize) -> (f64, f64) {
    let mut paths = xseq::PathTable::new();
    let vist = VistIndex::build(docs, &mut paths);
    let mut paths_cs = xseq::PathTable::new();
    let strat = cs_strategy(docs, &mut paths_cs, 2000);
    let mut cs = XmlIndex::build(docs, &mut paths_cs, strat, PlanOptions::default());
    cs.attach_telemetry(global_index_telemetry());
    let patterns = random_patterns(docs, len, count, 4242);

    let t = Instant::now();
    let mut vist_results = 0usize;
    for q in &patterns {
        vist_results += vist.query(q, docs, &mut paths).0.len();
    }
    let tv = t.elapsed().as_secs_f64() * 1e6 / patterns.len() as f64;

    let t = Instant::now();
    let mut cs_results = 0usize;
    for q in &patterns {
        cs_results += cs.query(q, &paths_cs).docs.len();
    }
    let tc = t.elapsed().as_secs_f64() * 1e6 / patterns.len() as f64;
    assert_eq!(vist_results, cs_results, "engines agree");
    (tv, tc)
}

/// Figure 16(c)/(d) shared body: I/O cost (pages) and time vs query length.
fn fig16cd(title: &str, identical_pct: u8, scale: f64) {
    println!("## {title}");
    println!();
    println!("| query length | I/O cost (pages) | time (µs/query) |");
    println!("|---|---|---|");
    let n = scaled(100_000, scale);
    let params = SyntheticParams {
        identical_pct,
        ..SyntheticParams::fig14a()
    };
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let ds = SyntheticDataset::generate(&params, n, 18, &mut symbols);
    let mut paths = xseq::PathTable::new();
    let strat = cs_strategy(&ds.docs, &mut paths, 2000);
    let mut index = XmlIndex::build(&ds.docs, &mut paths, strat, PlanOptions::default());
    index.attach_telemetry(global_index_telemetry());
    let mut store = MemStore::new();
    write_paged_trie(index.trie(), &mut store).expect("in-memory store");
    let paged = PagedTrie::open(store, 1 << 20).expect("valid layout");
    paged.attach_pool_telemetry(global_pool_telemetry());

    for len in [2usize, 4, 6, 8, 10, 12] {
        let patterns = random_patterns(&ds.docs, len, 20, 777);
        let mut total_pages = 0u64;
        let t = Instant::now();
        for q in &patterns {
            let concrete = xseq::index::instantiate(q, &paths, index.data_paths(), index.options());
            paged.reset_pool();
            for qdoc in &concrete {
                let qseq = QuerySequence::from_document(qdoc, &mut paths, index.strategy());
                let _ = tree_search(&paged, &qseq);
            }
            total_pages += paged.pool_stats().misses;
        }
        let per_query = t.elapsed().as_secs_f64() * 1e6 / patterns.len() as f64;
        println!(
            "| {} | {:.1} | {:.1} |",
            len,
            total_pages as f64 / patterns.len() as f64,
            per_query
        );
    }
    println!();
}

/// Figure 16(c): no identical sibling nodes.
pub fn fig16c(scale: f64) {
    fig16cd(
        "Figure 16(c) — I/O and time vs query length (no identical siblings)",
        0,
        scale,
    );
}

/// Figure 16(d): with identical sibling nodes.
pub fn fig16d(scale: f64) {
    fig16cd(
        "Figure 16(d) — I/O and time vs query length (identical siblings, I=25)",
        25,
        scale,
    );
}

// ---------------------------------------------------------------------------
// Scaling: ingest and batch-query throughput vs worker threads
// ---------------------------------------------------------------------------

/// Upper bound of the thread series [`scaling`] sweeps (`repro --threads N`).
static THREAD_CAP: AtomicUsize = AtomicUsize::new(8);

/// Caps the [`scaling`] thread series at `n` (clamped to at least 1).
pub fn set_thread_cap(n: usize) {
    // ORDERING: config — standalone cell, written once before experiments run
    THREAD_CAP.store(n.max(1), Ordering::Relaxed);
}

/// Upper bound of the shard series [`scaling`] sweeps (`repro --shards N`).
static SHARD_CAP: AtomicUsize = AtomicUsize::new(8);

/// Caps the [`scaling`] shard series at `n` (clamped to at least 1).
pub fn set_shard_cap(n: usize) {
    // ORDERING: config — standalone cell, written once before experiments run
    SHARD_CAP.store(n.max(1), Ordering::Relaxed);
}

/// Throughput series over the parallel ingest pipeline and the shared-read
/// batch query path: one XMark corpus, indexed and queried at 1/2/4/8
/// worker threads (capped by [`set_thread_cap`]).
///
/// Records one gauge per thread count — `ingest.docs_per_s.tN` and
/// `query.qps.tN` — which `--bench-label` tracks and `--baseline` gates
/// with the tolerant [`regress::THROUGHPUT_THRESHOLD`].  The gate holds
/// each (thread count, phase) cell against its own baseline; it does not
/// demand a speedup slope, so a single-core CI host (where the series is
/// flat) still passes as long as absolute throughput holds up.
pub fn scaling(scale: f64) {
    println!("## Scaling — ingest and batch-query throughput vs worker threads");
    println!();
    let n = scaled(20_000, scale);
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let docs = XmarkGenerator::new(8, XmarkOptions::default()).generate(n, &mut symbols);
    // The paper's XMark queries, cycled into a batch large enough that the
    // per-query cost dominates the batch dispatch overhead.
    let exprs: Vec<&str> = queries::XMARK_QUERIES
        .iter()
        .map(|(_, q)| *q)
        .cycle()
        .take(600)
        .collect();
    let cap = THREAD_CAP.load(Ordering::Relaxed); // ORDERING: config — advisory read
    println!(
        "{n} records, {} queries per batch, threads ≤ {cap}",
        exprs.len()
    );
    println!();
    println!("| threads | ingest (docs/s) | batch queries (q/s) | speedup vs t1 |");
    println!("|---|---|---|---|");
    let registry = MetricsRegistry::global();
    let mut expect_hits: Option<usize> = None;
    let mut t1: Option<(f64, f64)> = None; // 1-thread (ingest, qps) reference
    for t in [1usize, 2, 4, 8] {
        if t > cap {
            continue;
        }
        // Best of two passes per thread count: wall-clock throughput on a
        // loaded host swings far more than the latency histograms do, and
        // the faster pass is the one that measured the code, not the
        // scheduler.  The corpus is rebuilt from the same documents and
        // interners each pass, so every run ingests identical input.
        let mut ingest = 0f64;
        let mut qps = 0f64;
        for _ in 0..2 {
            let corpus = Corpus {
                symbols: symbols.clone(),
                paths: xseq::PathTable::new(),
                docs: docs.clone(),
                parse_histogram: None,
            };
            let t0 = Instant::now();
            // shards(1): this series is the historical single-shard one,
            // kept under the same `tN` keys so old baselines stay
            // comparable; the shard series below records `sN.tN` keys.
            let db = DatabaseBuilder::new()
                .threads(t)
                .shards(1)
                .build_from_corpus(corpus)
                .expect("xmark corpus indexes");
            ingest = ingest.max(docs.len() as f64 / t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            let mut hits = 0usize;
            for r in db.query_batch(&exprs) {
                hits += r.expect("paper query parses").len();
            }
            qps = qps.max(exprs.len() as f64 / t0.elapsed().as_secs_f64());
            match expect_hits {
                None => expect_hits = Some(hits),
                Some(h) => assert_eq!(h, hits, "answers diverged at {t} threads"),
            }
        }

        registry
            .gauge(&format!("ingest.docs_per_s.t{t}"))
            .set(ingest as i64);
        registry.gauge(&format!("query.qps.t{t}")).set(qps as i64);
        // Derived speedup gauges (tN vs t1, ×100 so 250 = 2.5×).  Named
        // outside the `.docs_per_s.` / `.qps.` throughput grammar on
        // purpose: the regression gate must hold absolute throughput, not
        // the slope — a single-core host's flat series is not a failure.
        let (i1, q1) = *t1.get_or_insert((ingest, qps));
        registry
            .gauge(&format!("ingest.speedup_x100.t{t}"))
            .set((ingest / i1 * 100.0) as i64);
        registry
            .gauge(&format!("query.speedup_x100.t{t}"))
            .set((qps / q1 * 100.0) as i64);
        println!(
            "| {t} | {ingest:.0} | {qps:.0} | {:.2}× / {:.2}× |",
            ingest / i1,
            qps / q1
        );
    }
    println!();

    // Shard-per-core series: shards = threads (capped by `--shards`), the
    // configuration ISSUE 9's scatter/gather architecture targets.  Each
    // cell records `ingest.docs_per_s.sS.tT` / `query.qps.sS.tT` gauges —
    // new keys, so old baselines skip them and fresh ones gate them with
    // the same tolerant throughput threshold as the `tN` series.
    let scap = SHARD_CAP.load(Ordering::Relaxed); // ORDERING: config — advisory read
    println!("### Sharded — shards = threads (shards ≤ {scap})");
    println!();
    println!("| shards × threads | ingest (docs/s) | batch queries (q/s) | speedup vs s1·t1 |");
    println!("|---|---|---|---|");
    let mut s1: Option<(f64, f64)> = None; // (s1, t1) reference cell
    for t in [1usize, 2, 4, 8] {
        if t > cap {
            continue;
        }
        let s = t.min(scap);
        let mut ingest = 0f64;
        let mut qps = 0f64;
        for _ in 0..2 {
            let corpus = Corpus {
                symbols: symbols.clone(),
                paths: xseq::PathTable::new(),
                docs: docs.clone(),
                parse_histogram: None,
            };
            let t0 = Instant::now();
            let db = DatabaseBuilder::new()
                .threads(t)
                .shards(s)
                .build_from_corpus(corpus)
                .expect("xmark corpus indexes");
            ingest = ingest.max(docs.len() as f64 / t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            let mut hits = 0usize;
            for r in db.query_batch(&exprs) {
                hits += r.expect("paper query parses").len();
            }
            qps = qps.max(exprs.len() as f64 / t0.elapsed().as_secs_f64());
            // Shard-merge ≡ sequential, measured on the bench corpus too:
            // the sharded batch must match the single-shard series' hits.
            match expect_hits {
                None => expect_hits = Some(hits),
                Some(h) => assert_eq!(h, hits, "answers diverged at {s} shards, {t} threads"),
            }
        }

        registry
            .gauge(&format!("ingest.docs_per_s.s{s}.t{t}"))
            .set(ingest as i64);
        registry
            .gauge(&format!("query.qps.s{s}.t{t}"))
            .set(qps as i64);
        // Speedup gauges vs the sharded series' own 1×1 cell (×100),
        // outside the gated throughput grammar like the `tN` ones.
        let (i1, q1) = *s1.get_or_insert((ingest, qps));
        registry
            .gauge(&format!("ingest.speedup_x100.s{s}.t{t}"))
            .set((ingest / i1 * 100.0) as i64);
        registry
            .gauge(&format!("query.speedup_x100.s{s}.t{t}"))
            .set((qps / q1 * 100.0) as i64);
        println!(
            "| {s} × {t} | {ingest:.0} | {qps:.0} | {:.2}× / {:.2}× |",
            ingest / i1,
            qps / q1
        );
    }
    println!();
}

/// Update-path throughput: delta inserts and tombstone removes against a
/// live XMark database, then a compaction, at 1/2/4/8 worker threads
/// (capped by [`set_thread_cap`]).
///
/// Records `update.docs_per_s.tN` (single-writer insert throughput into
/// the tiered delta overlay, foreground merges drained inline) and
/// `update.qps.post_compact.tN` (batch query throughput after the overlay
/// has been folded back into the frozen segment on the N-thread pool).
/// A second **tiered series** runs the same inserts with the background
/// merge worker enabled (`update.docs_per_s.tiered.tN`): inserts pay only
/// the O(1) memtable push plus cuts, and whatever run-folding the worker
/// has not absorbed by the end is drained explicitly and recorded as
/// `update.merge.stall_ns` (the worst case a foreground caller could
/// stall behind pending merges).  All three series are `--bench-label`
/// tracked and `--baseline` gated with the tolerant
/// [`regress::THROUGHPUT_THRESHOLD`].  Correctness rides along: the
/// post-compaction batch must answer exactly like the pre-compaction
/// *frozen ∪ delta − tombstones* view did, and background merges must not
/// change any answer.
pub fn updates(scale: f64) {
    println!("## Updates — delta insert and post-compaction query throughput");
    println!();
    let nbase = scaled(8_000, scale);
    let nextra = scaled(2_000, scale).max(1);
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let docs =
        XmarkGenerator::new(8, XmarkOptions::default()).generate(nbase + nextra, &mut symbols);
    let extra_xml: Vec<String> = docs[nbase..]
        .iter()
        .map(|d| xseq::xml::write_document(d, &symbols))
        .collect();
    let exprs: Vec<&str> = queries::XMARK_QUERIES
        .iter()
        .map(|(_, q)| *q)
        .cycle()
        .take(600)
        .collect();
    let cap = THREAD_CAP.load(Ordering::Relaxed); // ORDERING: config — advisory read
    println!(
        "{nbase} base records, {nextra} inserts, {} removes, threads ≤ {cap}",
        nbase / 8
    );
    println!();
    println!(
        "| threads | insert (docs/s) | tiered insert (docs/s) | compaction (s) | post-compact queries (q/s) | speedup vs t1 |"
    );
    println!("|---|---|---|---|---|---|");
    let registry = MetricsRegistry::global();
    let mut t1: Option<(f64, f64)> = None; // 1-thread (insert, qps) reference
    let mut worst_stall_ns = 0u64; // max merge-drain debt across the t series
    for t in [1usize, 2, 4, 8] {
        if t > cap {
            continue;
        }
        // Best of two passes, as in `scaling`: wall-clock throughput on a
        // loaded host swings far more than the latency histograms do.
        let mut insert_rate = 0f64;
        let mut compact_secs = f64::MAX;
        let mut qps = 0f64;
        for _ in 0..2 {
            let corpus = Corpus {
                symbols: symbols.clone(),
                paths: xseq::PathTable::new(),
                docs: docs[..nbase].to_vec(),
                parse_histogram: None,
            };
            // shards(1): keeps the `update.*.tN` keys on the historical
            // single-shard path so old baselines stay comparable.
            let mut db = DatabaseBuilder::new()
                .threads(t)
                .shards(1)
                .build_from_corpus(corpus)
                .expect("xmark corpus indexes");
            let t0 = Instant::now();
            for xml in &extra_xml {
                db.insert_document(xml).expect("written xmark doc reparses");
            }
            insert_rate = insert_rate.max(extra_xml.len() as f64 / t0.elapsed().as_secs_f64());
            for id in (0..nbase as u32).step_by(8) {
                db.remove_document(id);
            }
            let before: Vec<_> = db.query_batch(&exprs);
            let t0 = Instant::now();
            db.compact();
            compact_secs = compact_secs.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let after: Vec<_> = db.query_batch(&exprs);
            qps = qps.max(exprs.len() as f64 / t0.elapsed().as_secs_f64());
            // Survivor ids renumber densely on compaction: map the overlay
            // answers through the tombstone set before comparing.
            let mut rank = vec![None; nbase + nextra];
            let mut next = 0u32;
            for (id, slot) in rank.iter_mut().enumerate() {
                if !(id < nbase && id % 8 == 0) {
                    *slot = Some(next);
                    next += 1;
                }
            }
            for (b, a) in before.iter().zip(&after) {
                let b = b.as_ref().expect("paper query parses");
                let a = a.as_ref().expect("paper query parses");
                let mapped: Vec<u32> = b
                    .iter()
                    .map(|d| rank[*d as usize].expect("no tombstoned doc in overlay answer"))
                    .collect();
                assert_eq!(&mapped, a, "compaction changed answers at {t} threads");
            }
        }

        // Tiered series: background merge worker on a 1 ms cadence, so
        // inserts never drain tier merges inline.  Answers must match the
        // drained overlay exactly (snapshot consistency), and the final
        // explicit drain bounds the merge debt as `update.merge.stall_ns`.
        let mut tiered_rate = 0f64;
        let mut stall_ns = 0u64;
        for _ in 0..2 {
            let corpus = Corpus {
                symbols: symbols.clone(),
                paths: xseq::PathTable::new(),
                docs: docs[..nbase].to_vec(),
                parse_histogram: None,
            };
            let mut db = DatabaseBuilder::new()
                .threads(t)
                .shards(1)
                .background_merge(std::time::Duration::from_millis(1))
                .build_from_corpus(corpus)
                .expect("xmark corpus indexes");
            let t0 = Instant::now();
            for xml in &extra_xml {
                db.insert_document(xml).expect("written xmark doc reparses");
            }
            tiered_rate = tiered_rate.max(extra_xml.len() as f64 / t0.elapsed().as_secs_f64());
            let racing: Vec<_> = db.query_batch(&exprs);
            let t0 = Instant::now();
            db.run_pending_merges();
            stall_ns = stall_ns.max(t0.elapsed().as_nanos() as u64);
            let drained: Vec<_> = db.query_batch(&exprs);
            for (r, d) in racing.iter().zip(&drained) {
                let r = r.as_ref().expect("paper query parses");
                let d = d.as_ref().expect("paper query parses");
                assert_eq!(r, d, "background merges changed answers at {t} threads");
            }
        }
        registry
            .gauge(&format!("update.docs_per_s.t{t}"))
            .set(insert_rate as i64);
        registry
            .gauge(&format!("update.docs_per_s.tiered.t{t}"))
            .set(tiered_rate as i64);
        worst_stall_ns = worst_stall_ns.max(stall_ns);
        registry
            .gauge("update.merge.stall_ns")
            .set(worst_stall_ns as i64);
        registry
            .gauge(&format!("update.qps.post_compact.t{t}"))
            .set(qps as i64);
        // Derived speedup gauges, as in `scaling` (×100, t1 = 100).
        let (i1, q1) = *t1.get_or_insert((insert_rate, qps));
        registry
            .gauge(&format!("update.insert.speedup_x100.t{t}"))
            .set((insert_rate / i1 * 100.0) as i64);
        registry
            .gauge(&format!("update.query.speedup_x100.t{t}"))
            .set((qps / q1 * 100.0) as i64);
        println!(
            "| {t} | {insert_rate:.0} | {tiered_rate:.0} | {compact_secs:.2} | {qps:.0} | {:.2}× / {:.2}× |",
            insert_rate / i1,
            qps / q1
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Profiler overhead: the zero-overhead guard behind workload profiling
// ---------------------------------------------------------------------------

/// Median nanoseconds per query of one sequential pass over `exprs`.
fn median_query_ns(db: &Database, exprs: &[&str]) -> u64 {
    let mut samples: Vec<u64> = exprs
        .iter()
        .map(|e| {
            let t0 = Instant::now();
            db.query_xpath(e).expect("paper query parses");
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Zero-overhead guard for the workload profiler (on by default in
/// [`DatabaseBuilder`]): two databases over the same XMark corpus, one
/// profiling and one not, answer the same query batch interleaved; the
/// best-of-3 medians are compared in-process and recorded for the gate.
///
/// Records `query.profiled.p50_ns` / `query.unprofiled.p50_ns` /
/// `query.observed.p50_ns` (informational, `--metrics` only) and the
/// **gated** `query.overhead.p50` and `query.overhead.observed.p50`
/// gauges — each variant's p50 as a per-mille of the unprofiled p50,
/// clamped below at parity (1000) because instrumentation cannot speed
/// queries up, so dips are noise.  `regress::compare` holds those keys to
/// [`regress::PROFILE_OVERHEAD_THRESHOLD`] (3%): profiling — and the full
/// flight-recorder + anomaly-detector stack — must stay free relative to
/// the *same run's* unprofiled measurement, which cancels host noise out
/// of the gated quantity.
pub fn profile_overhead(scale: f64) {
    println!("## Profiler overhead — query p50 with the workload profiler on vs off");
    println!();
    let n = scaled(30_000, scale);
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let docs = XmarkGenerator::new(8, XmarkOptions::default()).generate(n, &mut symbols);
    let exprs: Vec<&str> = queries::XMARK_QUERIES
        .iter()
        .map(|(_, q)| *q)
        .cycle()
        .take(240)
        .collect();
    let build = |profiling: bool| {
        let corpus = Corpus {
            symbols: symbols.clone(),
            paths: xseq::PathTable::new(),
            docs: docs.clone(),
            parse_histogram: None,
        };
        DatabaseBuilder::new()
            .profiling(profiling)
            .build_from_corpus(corpus)
            .expect("xmark corpus indexes")
    };
    let on = build(true);
    let off = build(false);
    // Third variant: the full observability stack as production runs it —
    // profiler on, flight recorder live, the slow-query check armed (with
    // a threshold generous enough that nothing fires, so we measure the
    // check, not the event traffic) and an anomaly detector ticking
    // between passes.
    let observed = build(true);
    observed.set_slow_query_threshold(std::time::Duration::from_secs(60));
    let detector = AnomalyDetector::new(
        observed.metrics_registry().clone(),
        xseq::SloPolicy::default(),
    )
    .events(observed.events().clone())
    .watch_latency("index.search");
    // Warm every side, then interleave the measured passes so all see the
    // same host weather; the min-median is the pass the scheduler left
    // alone.
    median_query_ns(&off, &exprs);
    median_query_ns(&on, &exprs);
    median_query_ns(&observed, &exprs);
    let (mut on_ns, mut off_ns, mut obs_ns) = (u64::MAX, u64::MAX, u64::MAX);
    for _ in 0..3 {
        off_ns = off_ns.min(median_query_ns(&off, &exprs));
        on_ns = on_ns.min(median_query_ns(&on, &exprs));
        obs_ns = obs_ns.min(median_query_ns(&observed, &exprs));
        detector.tick();
    }
    let ratio_x1000 = ((on_ns as f64 / off_ns as f64) * 1000.0) as u64;
    let obs_x1000 = ((obs_ns as f64 / off_ns as f64) * 1000.0) as u64;
    let registry = MetricsRegistry::global();
    registry.gauge("query.profiled.p50_ns").set(on_ns as i64);
    registry.gauge("query.unprofiled.p50_ns").set(off_ns as i64);
    registry.gauge("query.observed.p50_ns").set(obs_ns as i64);
    registry
        .gauge("query.overhead.p50")
        .set(ratio_x1000.max(1000) as i64);
    registry
        .gauge("query.overhead.observed.p50")
        .set(obs_x1000.max(1000) as i64);
    println!("| profiling | query p50 (µs) |");
    println!("|---|---|");
    println!("| off | {:.1} |", off_ns as f64 / 1e3);
    println!("| on | {:.1} |", on_ns as f64 / 1e3);
    println!("| on + recorder + detector | {:.1} |", obs_ns as f64 / 1e3);
    println!();
    println!(
        "overhead: {:+.2}% profiled, {:+.2}% fully observed ({} workload classes accumulated)",
        (on_ns as f64 / off_ns as f64 - 1.0) * 100.0,
        (obs_ns as f64 / off_ns as f64 - 1.0) * 100.0,
        on.workload_profile().len()
    );
    println!();
    // In-process backstop: a catastrophic slowdown (an accidental lock on
    // the query path, say) fails the run outright even without a baseline;
    // the fine-grained 3% gate is `regress::compare`'s job.
    assert!(
        on_ns <= off_ns.max(regress::NOISE_FLOOR_NS) * 3 / 2 + regress::NOISE_FLOOR_NS,
        "profiling overhead out of bounds: on {on_ns} ns vs off {off_ns} ns"
    );
    assert!(
        obs_ns <= off_ns.max(regress::NOISE_FLOOR_NS) * 3 / 2 + regress::NOISE_FLOOR_NS,
        "observability overhead out of bounds: observed {obs_ns} ns vs off {off_ns} ns"
    );
}

/// Builds a small, fully instrumented XMark database, drives a
/// representative mixed workload over it — queries, an insert, a removal,
/// a compaction, anomaly-detector ticks — then writes a complete
/// diagnostics bundle into `dir`: the engine behind `repro --diag DIR`
/// (validated in CI by `cargo xtask diagcheck DIR`).
pub fn diagnostics_bundle(dir: &str) {
    use std::time::Duration;
    println!("## Diagnostics bundle — {dir}");
    println!();
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let docs = XmarkGenerator::new(8, XmarkOptions::default()).generate(400, &mut symbols);
    let corpus = Corpus {
        symbols,
        paths: xseq::PathTable::new(),
        docs,
        parse_histogram: None,
    };
    let mut db = DatabaseBuilder::new()
        .trace_config(xseq::TraceConfig {
            sample_rate: 0.25,
            ..Default::default()
        })
        .integrity_spot_check(0.1)
        .build_from_corpus(corpus)
        .expect("xmark corpus indexes");
    db.set_slow_query_threshold(Duration::from_millis(50));
    let detector = AnomalyDetector::new(db.metrics_registry().clone(), xseq::SloPolicy::default())
        .events(db.events().clone())
        .watch_latency("index.search")
        .watch_throughput("workload.queries");
    // The paper's queries plus structural ones that always hit, so the
    // bundle captures real plan/search activity on a small corpus.
    let mut exprs: Vec<&str> = queries::XMARK_QUERIES.iter().map(|(_, q)| *q).collect();
    exprs.extend(["/site//item/location", "//person/name", "/site//mail/date"]);
    for round in 0..6 {
        for e in &exprs {
            db.query_xpath(e).expect("paper query parses");
        }
        detector.tick();
        if round == 2 {
            let id = db
                .insert_document("<site><people><person><name>diag</name></person></people></site>")
                .expect("diag doc parses");
            db.remove_document(id);
            db.compact();
        }
    }
    let report = db.diagnostics(dir).expect("diagnostics bundle writes");
    for f in &report.files {
        println!("- {f}");
    }
    println!();
    println!(
        "wrote {} artifacts to {}",
        report.files.len(),
        report.dir.display()
    );
    println!();
}

/// Sanity sweep used by `repro check`: every experiment at tiny scale, with
/// engine-agreement assertions active throughout.
pub fn check() {
    let s = 0.02;
    fig14a(s);
    fig14b(s);
    fig15(s);
    table5(s);
    table6(s);
    table7(s);
    table8(s);
    fig16a(s);
    fig16b(s);
    fig16c(s);
    fig16d(s);
    scaling(s);
    updates(s);
    profile_overhead(s);
    // extra safety: CS answers equal brute force on a fresh corpus
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let ds = SyntheticDataset::generate(&SyntheticParams::fig16(), 300, 1, &mut symbols);
    let mut paths = xseq::PathTable::new();
    let strat = cs_strategy(&ds.docs, &mut paths, 0);
    let index = XmlIndex::build(&ds.docs, &mut paths, strat, PlanOptions::default());
    for q in random_patterns(&ds.docs, 4, 25, 3) {
        let got = index.query(&q, &paths).docs;
        let expect: Vec<u32> = ds
            .docs
            .iter()
            .enumerate()
            .filter(|(_, d)| structure_match(&q, d))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, expect);
    }
    println!("check: all experiments ran, all agreement assertions held");
}

// ---------------------------------------------------------------------------
// `repro --verify`: integrity verification across corpora
// ---------------------------------------------------------------------------

/// `repro --verify`: builds an index per sequencing strategy over the
/// synthetic, XMark and DBLP corpora and runs the full invariant verifier
/// over each — preorder-label nesting, subtree extents, path-link order
/// and coverage, sibling-cover bookkeeping, `f2` validity (Eq. 3) and the
/// Theorem 1 round-trip of every stored sequence.
///
/// Prints one markdown row per (corpus, strategy) pair and returns `true`
/// when every report is clean.
pub fn verify_corpora(scale: f64) -> bool {
    println!("## Index integrity — invariant verification per corpus");
    println!();
    println!("| corpus | docs | strategy | nodes | links | sequences | violations |");
    println!("|---|---|---|---|---|---|---|");
    let mut all_clean = true;

    let mut corpora: Vec<(&str, Corpus)> = Vec::new();
    {
        let mut c = Corpus::new(ValueMode::Intern);
        let ds = SyntheticDataset::generate(
            &SyntheticParams::fig16(),
            scaled(20_000, scale),
            16,
            &mut c.symbols,
        );
        c.docs = ds.docs;
        corpora.push(("synthetic L3F5A25I10P40", c));
    }
    {
        let mut c = Corpus::new(ValueMode::Intern);
        c.docs = XmarkGenerator::new(8, XmarkOptions::default())
            .generate(scaled(10_000, scale), &mut c.symbols);
        corpora.push(("xmark", c));
    }
    {
        let mut c = Corpus::new(ValueMode::Intern);
        c.docs = DblpGenerator::new(7).generate(scaled(20_000, scale), &mut c.symbols);
        corpora.push(("dblp", c));
    }

    for (name, corpus) in &mut corpora {
        let n = corpus.docs.len();
        for strat_name in ["random", "breadth-first", "depth-first", "cs"] {
            let mut paths = xseq::PathTable::new();
            let strategy = match strat_name {
                "random" => Strategy::Random { seed: 5 },
                "breadth-first" => Strategy::BreadthFirst,
                "depth-first" => Strategy::DepthFirst,
                _ => cs_strategy(&corpus.docs, &mut paths, 2000),
            };
            let index = XmlIndex::build(&corpus.docs, &mut paths, strategy, PlanOptions::default());
            let report = index.verify_integrity(&mut paths);
            println!(
                "| {} | {} | {} | {} | {} | {} | {} |",
                name,
                n,
                strat_name,
                report.nodes_checked,
                report.links_checked,
                report.sequences_checked,
                report.violation_count()
            );
            if !report.is_clean() {
                all_clean = false;
                eprint!("{}", report.render());
            }
        }
    }
    // The update overlay: every corpus re-verified with a live delta
    // segment and tombstones (the merged report walks both tries), then
    // once more after compaction has folded the overlay back in.  Before
    // this pass existed, `--verify` silently skipped the delta segment.
    for (name, corpus) in corpora {
        let n = corpus.docs.len();
        let nbase = (n * 9 / 10).max(1);
        let extra_xml: Vec<String> = corpus.docs[nbase..]
            .iter()
            .map(|d| xseq::xml::write_document(d, &corpus.symbols))
            .collect();
        let base = Corpus {
            symbols: corpus.symbols.clone(),
            paths: xseq::PathTable::new(),
            docs: corpus.docs[..nbase].to_vec(),
            parse_histogram: None,
        };
        let mut db = DatabaseBuilder::new()
            .build_from_corpus(base)
            .expect("corpus indexes");
        for xml in &extra_xml {
            db.insert_document(xml).expect("written doc reparses");
        }
        for id in (0..nbase as u32).step_by(7) {
            db.remove_document(id);
        }
        for phase in ["pre-compact", "post-compact"] {
            if phase == "post-compact" {
                db.compact();
            }
            let report = db.verify_integrity();
            println!(
                "| {} | {} | {} | {} | {} | {} | {} |",
                name,
                n,
                phase,
                report.nodes_checked,
                report.links_checked,
                report.sequences_checked,
                report.violation_count()
            );
            if !report.is_clean() {
                all_clean = false;
                eprint!("{}", report.render());
            }
        }
    }
    println!();
    println!(
        "verify: {}",
        if all_clean {
            "all invariants hold on every corpus"
        } else {
            "INTEGRITY VIOLATIONS FOUND"
        }
    );
    all_clean
}
