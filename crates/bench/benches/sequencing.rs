//! Criterion micro-benchmark: sequencing throughput per strategy, and the
//! Theorem 1 decoder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xseq::datagen::{SyntheticDataset, SyntheticParams};
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::{decode_f2, sequence_document, Strategy};
use xseq::{SymbolTable, ValueMode};

fn bench_sequencing(c: &mut Criterion) {
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let params = SyntheticParams {
        identical_pct: 20,
        ..SyntheticParams::fig14a()
    };
    let ds = SyntheticDataset::generate(&params, 2_000, 5, &mut symbols);
    let mut paths = xseq::PathTable::new();
    let model = ProbabilityModel::estimate(&ds.docs, &mut paths, 0);
    let probability = Strategy::Probability(model.priorities(&paths, &WeightMap::default()));

    let mut group = c.benchmark_group("sequence_2k_docs");
    for (name, strategy) in [
        ("depth_first", Strategy::DepthFirst),
        ("random", Strategy::Random { seed: 1 }),
        ("probability", probability),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, s| {
            b.iter(|| {
                let mut total = 0usize;
                for doc in &ds.docs {
                    total += sequence_document(doc, &mut paths, s).len();
                }
                total
            })
        });
    }
    group.finish();

    // decoder throughput
    let seqs: Vec<_> = ds
        .docs
        .iter()
        .map(|d| sequence_document(d, &mut paths, &Strategy::DepthFirst))
        .collect();
    c.bench_function("decode_f2_2k_seqs", |b| {
        b.iter(|| {
            seqs.iter()
                .map(|s| decode_f2(s, &paths).expect("valid").len())
                .sum::<usize>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_sequencing
}
criterion_main!(benches);
