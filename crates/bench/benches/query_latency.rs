//! Criterion micro-benchmark: per-query latency of the four engines on a
//! DBLP-shaped corpus (the engine comparison behind Table 8 and Figure 16).

use criterion::{criterion_group, criterion_main, Criterion};
use xseq::baselines::{NodeIndex, PathIndex, VistIndex};
use xseq::datagen::{queries, DblpGenerator};
use xseq::index::XmlIndex;
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::Strategy;
use xseq::{parse_xpath, Corpus, PlanOptions, ValueMode};

fn bench_queries(c: &mut Criterion) {
    let mut corpus = Corpus::new(ValueMode::Intern);
    corpus.docs = DblpGenerator::new(7).generate(20_000, &mut corpus.symbols);

    let path_idx = PathIndex::build(&corpus.docs, &mut corpus.paths);
    let node_idx = NodeIndex::build(&corpus.docs);
    let vist = VistIndex::build(&corpus.docs, &mut corpus.paths);
    let model = ProbabilityModel::estimate(&corpus.docs, &mut corpus.paths, 2000);
    let strategy = Strategy::Probability(model.priorities(&corpus.paths, &WeightMap::default()));
    let cs = XmlIndex::build(
        &corpus.docs,
        &mut corpus.paths,
        strategy,
        PlanOptions::default(),
    );

    // the selective branching query is where the engines differ most
    let pattern = parse_xpath(queries::DBLP_Q2, &mut corpus.symbols).unwrap();

    let mut group = c.benchmark_group("dblp_q2_latency");
    group.bench_function("path_index", |b| {
        b.iter(|| {
            path_idx
                .query(&pattern, &corpus.docs, &corpus.paths)
                .0
                .len()
        })
    });
    group.bench_function("node_index", |b| {
        b.iter(|| node_idx.query(&pattern, &corpus.docs).0.len())
    });
    group.bench_function("vist", |b| {
        b.iter(|| {
            vist.query(&pattern, &corpus.docs, &mut corpus.paths)
                .0
                .len()
        })
    });
    group.bench_function("cs", |b| {
        b.iter(|| cs.query(&pattern, &corpus.paths).docs.len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_queries
}
criterion_main!(benches);
