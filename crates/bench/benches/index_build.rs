//! Criterion micro-benchmark: index construction under each sequencing
//! strategy (the build-cost side of Figure 14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xseq::datagen::{SyntheticDataset, SyntheticParams};
use xseq::index::XmlIndex;
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::Strategy;
use xseq::{PlanOptions, SymbolTable, ValueMode};

fn bench_build(c: &mut Criterion) {
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let ds = SyntheticDataset::generate(&SyntheticParams::fig14a(), 5_000, 1, &mut symbols);

    let mut group = c.benchmark_group("index_build_5k_docs");
    for (name, make) in [
        ("random", Strategy::Random { seed: 3 }),
        ("breadth_first", Strategy::BreadthFirst),
        ("depth_first", Strategy::DepthFirst),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &make, |b, strategy| {
            b.iter(|| {
                let mut paths = xseq::PathTable::new();
                XmlIndex::build(
                    &ds.docs,
                    &mut paths,
                    strategy.clone(),
                    PlanOptions::default(),
                )
                .node_count()
            })
        });
    }
    group.bench_function("probability", |b| {
        b.iter(|| {
            let mut paths = xseq::PathTable::new();
            let model = ProbabilityModel::estimate(&ds.docs, &mut paths, 1000);
            let strategy = Strategy::Probability(model.priorities(&paths, &WeightMap::default()));
            XmlIndex::build(&ds.docs, &mut paths, strategy, PlanOptions::default()).node_count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_build
}
criterion_main!(benches);
