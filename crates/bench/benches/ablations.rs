//! Criterion ablations for the design choices DESIGN.md calls out:
//!
//! * the sibling-cover constraint check (Algorithm 1) vs naïve matching —
//!   what query equivalence costs at match time;
//! * selectivity-ordered order-free search vs sequence-ordered Algorithm 1;
//! * bulk (sorted) loading vs one-by-one insertion;
//! * buffer-pool capacity vs paged-query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xseq::datagen::{SyntheticDataset, SyntheticParams};
use xseq::index::{
    constraint_search, naive_search, tree_search, QuerySequence, SequenceTrie, XmlIndex,
};
use xseq::sequence::{sequence_document, Strategy};
use xseq::storage::{write_paged_trie, MemStore, PagedTrie};
use xseq::{PlanOptions, SymbolTable, ValueMode};

fn setup() -> (xseq::PathTable, XmlIndex, Vec<QuerySequence>) {
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let params = SyntheticParams {
        identical_pct: 25,
        ..SyntheticParams::fig14a()
    };
    let ds = SyntheticDataset::generate(&params, 20_000, 9, &mut symbols);
    let mut paths = xseq::PathTable::new();
    let index = XmlIndex::build(
        &ds.docs,
        &mut paths,
        Strategy::DepthFirst,
        PlanOptions::default(),
    );
    // queries: prefixes of document sequences
    let queries: Vec<QuerySequence> = (0..50)
        .map(|i| {
            let doc = &ds.docs[(i * 401) % ds.docs.len()];
            let seq = sequence_document(doc, &mut paths, &Strategy::DepthFirst);
            let take = 2 + i % 6;
            let q = xseq::Sequence(seq.elems()[..take.min(seq.len())].to_vec());
            QuerySequence::from_sequence(&q, &paths)
        })
        .collect();
    (paths, index, queries)
}

fn bench_matchers(c: &mut Criterion) {
    let (_paths, index, queries) = setup();
    let trie = index.trie();
    let mut group = c.benchmark_group("matcher_ablation");
    group.bench_function("naive_no_constraint_check", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| naive_search(trie, q).0.len())
                .sum::<usize>()
        })
    });
    group.bench_function("algorithm1_sibling_cover", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| constraint_search(trie, q).0.len())
                .sum::<usize>()
        })
    });
    group.bench_function("tree_search_selectivity_ordered", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| tree_search(trie, q).0.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_loading(c: &mut Criterion) {
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let ds = SyntheticDataset::generate(&SyntheticParams::fig14a(), 10_000, 4, &mut symbols);
    let mut paths = xseq::PathTable::new();
    let seqs: Vec<_> = ds
        .docs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            (
                sequence_document(d, &mut paths, &Strategy::DepthFirst),
                i as u32,
            )
        })
        .collect();

    let mut group = c.benchmark_group("load_ablation");
    group.bench_function("incremental_insert", |b| {
        b.iter(|| {
            let mut trie = SequenceTrie::new();
            for (s, id) in &seqs {
                trie.insert(s, *id);
            }
            trie.freeze();
            trie.node_count()
        })
    });
    group.bench_function("bulk_sorted_load", |b| {
        b.iter(|| {
            let mut trie = SequenceTrie::new();
            trie.bulk_load(seqs.clone());
            trie.freeze();
            trie.node_count()
        })
    });
    group.finish();
}

fn bench_pool_capacity(c: &mut Criterion) {
    let (_paths, index, queries) = setup();
    let mut group = c.benchmark_group("pool_capacity");
    for cap in [8usize, 64, 4096] {
        let mut store = MemStore::new();
        write_paged_trie(index.trie(), &mut store).unwrap();
        let paged = PagedTrie::open(store, cap).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(cap), &paged, |b, paged| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| tree_search(paged, q).0.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_matchers, bench_loading, bench_pool_capacity
}
criterion_main!(benches);
