//! Analyze fixture: AB/BA lock acquisition order — the lock-order pass
//! must report a deadlock cycle carrying both witness acquisition paths.

use std::sync::Mutex;

pub struct Pools {
    alloc: Mutex<Vec<u32>>,
    free: Mutex<Vec<u32>>,
}

impl Pools {
    pub fn promote(&self) {
        let mut a = self.alloc.lock().expect("alloc");
        let mut f = self.free.lock().expect("free");
        if let Some(x) = f.pop() {
            a.push(x);
        }
    }

    pub fn demote(&self) {
        let mut f = self.free.lock().expect("free");
        let mut a = self.alloc.lock().expect("alloc");
        if let Some(x) = a.pop() {
            f.push(x);
        }
    }
}
