//! Analyze fixture: a publication pair whose consumer load is `Relaxed` —
//! the atomic audit must flag the hand-off even though every site's own
//! role annotation is internally consistent.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Flag {
    ready: AtomicUsize,
}

impl Flag {
    pub fn publish(&self) {
        // ORDERING: release — payload writes precede the flag
        self.ready.store(1, Ordering::Release);
    }

    pub fn poll(&self) -> usize {
        // ORDERING: latch — wrong: this read gates the published payload
        self.ready.load(Ordering::Relaxed)
    }
}
