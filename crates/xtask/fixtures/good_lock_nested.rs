//! Analyze fixture: nested acquisition in one consistent order (`alloc`
//! before `free`, everywhere) — the lock-order pass must stay silent.

use std::sync::Mutex;

pub struct Pools {
    alloc: Mutex<Vec<u32>>,
    free: Mutex<Vec<u32>>,
}

impl Pools {
    pub fn promote(&self) {
        let mut a = self.alloc.lock().expect("alloc");
        let mut f = self.free.lock().expect("free");
        if let Some(x) = f.pop() {
            a.push(x);
        }
    }

    pub fn demote(&self) {
        let mut a = self.alloc.lock().expect("alloc");
        let mut f = self.free.lock().expect("free");
        if let Some(x) = a.pop() {
            f.push(x);
        }
    }
}
