//! Analyze fixture: a correctly paired publication — `Release` store,
//! `Acquire` load, both annotated — must produce zero findings.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Flag {
    ready: AtomicUsize,
}

impl Flag {
    pub fn publish(&self) {
        // ORDERING: release — payload writes precede the flag
        self.ready.store(1, Ordering::Release);
    }

    pub fn wait(&self) -> usize {
        // ORDERING: acquire — pairs with the Release in publish
        self.ready.load(Ordering::Acquire)
    }
}
