//! Lint fixture: bare `.unwrap()` and empty `.expect("")` in library
//! code.  Must fail `no-bare-unwrap` twice — and only outside the test
//! module below.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
