//! Lint fixture: flight-recorder event names violating the grammar.
//! `Event::new("compact.start")` in this comment must not fire.

use xseq_telemetry::{Event, EventJournal, Severity};

pub fn emit(journal: &EventJournal) {
    journal.record(Event::new("Compact.Start")); // bad: uppercase segments
    journal.record(Event::new("compact..finish")); // bad: empty segment
    journal.record(Event::new("compact.start")); // good
    journal.record(Event::new("compact.tier.start")); // good: background tier merge
    journal.record(Event::new("compact.tier.finish")); // good: background tier merge
    journal.record(
        Event::new("anomaly.latency") // good
            .severity(Severity::Warn)
            .message("Event::new(\"Not.A.Name\") inside a string must not fire"),
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_is_exempt() {
        let _ = super::emit;
        let _bad_but_ignored = xseq_telemetry::Event::new("Ignored.In.Tests");
    }
}
