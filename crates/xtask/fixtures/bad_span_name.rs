//! Lint fixture: telemetry names violating the `seg(.seg)*` grammar
//! (segments must be `[a-z][a-z0-9_]*`).  Must fail `span-name-grammar`
//! exactly three times — `pool.size` is valid.

pub fn register(t: &dyn Telemetry) {
    t.start_span("Query.Execute");
    t.counter("index..lookups");
    t.histogram("latency-ms");
    t.gauge("pool.size");
}

pub trait Telemetry {
    fn start_span(&self, name: &str);
    fn counter(&self, name: &str);
    fn histogram(&self, name: &str);
    fn gauge(&self, name: &str);
}
