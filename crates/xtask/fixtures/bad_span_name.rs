//! Lint fixture: telemetry names violating the `seg(.seg)*` grammar
//! (segments must be `[a-z][a-z0-9_]*`).  Must fail `span-name-grammar`
//! exactly three times — `storage.pool.size` is valid (and in a
//! registered metric family, so `metric-family` stays quiet too).

pub fn register(t: &dyn Telemetry) {
    t.start_span("Query.Execute");
    t.counter("index..lookups");
    t.histogram("latency-ms");
    t.gauge("storage.pool.size");
}

pub trait Telemetry {
    fn start_span(&self, name: &str);
    fn counter(&self, name: &str);
    fn histogram(&self, name: &str);
    fn gauge(&self, name: &str);
}
