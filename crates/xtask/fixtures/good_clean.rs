//! Lint fixture: clean library code — exercises every rule in its
//! passing form.  Must produce zero findings.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    // ORDERING: counter — a monotone statistic; orders with no other data.
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn head(v: &[u32]) -> u32 {
    *v.first().expect("caller guarantees non-empty input")
}

pub fn register(t: &dyn Telemetry) {
    t.start_span("query.execute");
    t.counter("index.lookups_total");
    t.histogram("query.latency.path_search");
}

pub trait Telemetry {
    fn start_span(&self, name: &str);
    fn counter(&self, name: &str);
    fn histogram(&self, name: &str);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
