//! Analyze fixture: the same shape with checked alternatives and a
//! PANIC-FREE proof — hot-path-panic must stay silent.

pub fn query_batch(inputs: &[&str]) -> usize {
    let Some(head) = inputs.first() else { return 0 };
    head.parse::<usize>().unwrap_or(0) + fixed(head.as_bytes())
}

// PANIC-FREE: callers pass the fixed-size header slice (len >= 1)
fn fixed(b: &[u8]) -> usize {
    b[0] as usize
}
