//! Analyze fixture: hot-path panic sites (slice indexing, bare unwrap)
//! reachable from the `query_batch` seed — hot-path-panic must flag each
//! with its reachability path.
#![forbid(unsafe_code)]

pub fn query_batch(inputs: &[&str]) -> usize {
    let head = inputs[0];
    decode(head)
}

fn decode(s: &str) -> usize {
    s.parse::<usize>().unwrap()
}
