//! Lint fixture: grammar-valid metric names outside the registered
//! families.  Must fail `metric-family` exactly twice — span names are
//! not registry metrics, and `workload.merge.latency` belongs to a
//! registered family.

pub fn register(t: &dyn Telemetry) {
    t.start_span("custom.phase");
    t.counter("latency.total");
    t.gauge("pool.size");
    t.histogram("workload.merge.latency");
}

pub trait Telemetry {
    fn start_span(&self, name: &str);
    fn counter(&self, name: &str);
    fn gauge(&self, name: &str);
    fn histogram(&self, name: &str);
}
