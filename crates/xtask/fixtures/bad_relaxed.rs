//! Lint fixture: an atomic op using the weakest memory ordering with no
//! annotation comment justifying it.  Must fail the annotation rule and
//! nothing else.  (The rule's own keyword must not appear in this header:
//! the checker scans the preceding comment lines for it.)

pub fn bump(c: &std::sync::atomic::AtomicU64) -> u64 {
    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}
