//! Fixture: spawns an unscoped thread outside `crates/exec/` — the
//! `no-thread-spawn` rule must flag it (once, not for the scoped spawn,
//! the string, the comment, or the test module).

use std::thread;

fn detached_worker() -> thread::JoinHandle<()> {
    thread::spawn(|| {})
}

fn scoped_is_fine() {
    // thread::spawn( in a comment must not fire
    let needle = "thread::spawn(";
    let _ = needle;
    thread::scope(|s| {
        s.spawn(|| {});
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawning_in_tests_is_exempt() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}
