//! Analyze fixture: a `Release` store on a field with no `Acquire` load
//! anywhere in the crate — the atomic-ordering pass must flag the broken
//! publication pair (the site annotation itself is valid).

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Cell {
    ready: AtomicUsize,
}

impl Cell {
    pub fn publish(&self) {
        // ORDERING: release — payload writes precede this flag
        self.ready.store(1, Ordering::Release);
    }
}
