//! Lint fixture: `unsafe` with no SAFETY: comment, in a non-allowlisted
//! module.  Must fail `unsafe-allowlist` and `safety-comment`.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
