//! Analyze fixture: a declared role inconsistent with the site's memory
//! ordering — `counter` permits only `Relaxed`.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn sample(stat: &AtomicU64) -> u64 {
    // ORDERING: counter — per-query statistic
    stat.load(Ordering::Acquire)
}

pub fn publish(stat: &AtomicU64) {
    // ORDERING: release — pairs with the sample load above
    stat.store(1, Ordering::Release);
}
