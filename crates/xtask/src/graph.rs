//! The workspace function index and name-level call graph shared by the
//! lock-order and hot-path analyses.
//!
//! Resolution is lexical (no type information), tiered by how much the
//! call site tells us:
//!
//! * `Owner::name(…)` — resolved exactly against functions scanned with
//!   that `impl` owner.  Unknown owners (`Vec`, `String`, foreign types)
//!   resolve to nothing.
//! * `name(…)` (bare call) — resolved against *free* functions of that
//!   name: same-crate first, otherwise workspace-wide.
//! * `.name(…)` (method call) — resolved against every method of that
//!   name in the workspace, except that std-shadowed accessor names
//!   ([`UBIQUITOUS_METHODS`]) resolve same-crate only: `.len()` or
//!   `.get()` almost always hits std, and fanning those out across crates
//!   would glue every data structure into every hot path.
//!
//! The result over-approximates real dispatch (any same-named method may
//! be the callee), which is the conservative direction for both clients:
//! more reachability means more code held to the panic-freedom and
//! lock-order rules.  Turbofish calls (`f::<T>(…)`) are not recognized —
//! a documented under-approximation that does not occur on the audited
//! paths.

use crate::lexer::TokKind;
use crate::scan::{Function, SourceFile};
use std::collections::HashMap;

/// Method names resolved same-crate only (see module docs).
pub const UBIQUITOUS_METHODS: &[&str] = &[
    "add",
    "as_ref",
    "as_str",
    "clear",
    "clone",
    "cmp",
    "contains",
    "default",
    "eq",
    "extend",
    "fmt",
    "from",
    "get",
    "hash",
    "index",
    "insert",
    "into",
    "is_empty",
    "iter",
    "len",
    "new",
    "next",
    "push",
    "remove",
    "to_string",
];

/// Method names that, called with *no arguments*, are the std sync
/// primitives (`mutex.lock()`, `rwlock.read()`).  They resolve to
/// nothing: the lock-order pass models the acquisition itself, and
/// fanning `.lock()` out to every workspace method that happens to be
/// named `lock` would wire every guard into unrelated crates' locks.
/// With arguments (`file.read(buf)`) they resolve normally.
const SYNC_PRIMITIVE_METHODS: &[&str] =
    &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// A function's position in the index: (file index, function index).
pub type FnId = (usize, usize);

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee identifier.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Callee name.
    #[cfg_attr(not(test), allow(dead_code))]
    pub name: String,
    /// The functions this call may dispatch to.
    pub targets: Vec<FnId>,
}

/// The workspace function index over a set of scanned files.
pub struct FunctionIndex<'a> {
    pub files: &'a [SourceFile],
    /// name → candidate functions.
    by_name: HashMap<&'a str, Vec<FnId>>,
}

impl<'a> FunctionIndex<'a> {
    /// Indexes every function of `files` (test functions included — they
    /// are filtered at the analysis layer, where exemption is a policy).
    pub fn build(files: &'a [SourceFile]) -> FunctionIndex<'a> {
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            }
        }
        FunctionIndex { files, by_name }
    }

    pub fn function(&self, id: FnId) -> &'a Function {
        &self.files[id.0].functions[id.1]
    }

    pub fn file(&self, id: FnId) -> &'a SourceFile {
        &self.files[id.0]
    }

    /// A human label: `crate::Owner::name` or `crate::name`.
    pub fn label(&self, id: FnId) -> String {
        let f = self.function(id);
        let krate = &self.file(id).crate_name;
        match &f.owner {
            Some(o) => format!("{krate}::{o}::{}", f.name),
            None => format!("{krate}::{}", f.name),
        }
    }

    /// All functions with `name`, optionally restricted by `owner`.
    pub fn candidates(&self, name: &str, owner: Option<&str>) -> Vec<FnId> {
        let Some(all) = self.by_name.get(name) else {
            return Vec::new();
        };
        all.iter()
            .copied()
            .filter(|&id| match owner {
                None => true,
                Some(o) => self.function(id).owner.as_deref() == Some(o),
            })
            .collect()
    }

    /// True when some scanned function has `owner` as its impl type — the
    /// test that separates `QueryContext::new` (resolve exactly) from
    /// `Vec::new` (foreign, resolve to nothing).
    fn known_owner(&self, owner: &str) -> bool {
        self.files.iter().any(|f| {
            f.functions
                .iter()
                .any(|g| g.owner.as_deref() == Some(owner))
        })
    }

    /// Extracts and resolves every call site in `f`'s body (nested
    /// functions excluded — they are their own index entries).
    pub fn calls_in(&self, file_ix: usize, f: &Function) -> Vec<CallSite> {
        let file = &self.files[file_ix];
        let body: Vec<usize> = file.body_tokens_of(f).collect();
        let mut out = Vec::new();
        for (k, &ix) in body.iter().enumerate() {
            let t = &file.tokens[ix];
            if t.kind != TokKind::Ident {
                continue;
            }
            // a call: identifier directly followed by `(`
            let follows_paren = body
                .get(k + 1)
                .is_some_and(|&nx| file.tokens[nx].kind == TokKind::Punct && file.text(nx) == "(");
            if !follows_paren {
                continue;
            }
            let name = file.text(ix);
            let prev = (k >= 1).then(|| file.text(body[k - 1]));
            let targets = match prev {
                // method call `.name(`
                Some(".") => {
                    let empty_args = body.get(k + 2).is_some_and(|&nx| file.text(nx) == ")");
                    if empty_args && SYNC_PRIMITIVE_METHODS.contains(&name) {
                        out.push(CallSite {
                            tok: ix,
                            line: t.line,
                            name: name.to_string(),
                            targets: Vec::new(),
                        });
                        continue;
                    }
                    let mut c = self.candidates(name, None);
                    c.retain(|&id| self.function(id).owner.is_some());
                    if UBIQUITOUS_METHODS.contains(&name) {
                        c.retain(|&id| self.file(id).crate_name == file.crate_name);
                    }
                    c
                }
                // path call `Owner::name(` (the two `:` puncts of `::`)
                Some(":") if k >= 2 && file.text(body[k - 2]) == ":" => {
                    let owner = if k >= 3 { file.text(body[k - 3]) } else { "" };
                    if self.known_owner(owner) {
                        self.candidates(name, Some(owner))
                    } else if owner.starts_with("xseq_") || owner == "crate" || owner == "self" {
                        // crate-qualified free function: `xseq_query::parse_…`
                        // (crate dir names carry no `xseq_` prefix)
                        let krate = match owner.strip_prefix("xseq_") {
                            Some(tail) => tail.replace('_', "-"),
                            None => file.crate_name.clone(),
                        };
                        let mut c = self.candidates(name, None);
                        c.retain(|&id| {
                            self.function(id).owner.is_none() && self.file(id).crate_name == krate
                        });
                        c
                    } else {
                        Vec::new()
                    }
                }
                // bare call `name(`
                _ => {
                    let mut c = self.candidates(name, None);
                    c.retain(|&id| self.function(id).owner.is_none());
                    let same_crate: Vec<FnId> = c
                        .iter()
                        .copied()
                        .filter(|&id| self.file(id).crate_name == file.crate_name)
                        .collect();
                    if same_crate.is_empty() {
                        c
                    } else {
                        same_crate
                    }
                }
            };
            out.push(CallSite {
                tok: ix,
                line: t.line,
                name: name.to_string(),
                targets,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_two() -> Vec<SourceFile> {
        vec![
            SourceFile::scan(
                "crates/alpha/src/lib.rs",
                r#"
                pub fn entry() { helper(); Widget::build(); w.step(); v.len(); }
                fn helper() {}
                struct Widget;
                impl Widget {
                    fn build() {}
                    fn step(&self) {}
                    fn len(&self) -> usize { 0 }
                }
                "#,
            ),
            SourceFile::scan(
                "crates/beta/src/lib.rs",
                r#"
                pub fn helper() {}
                struct Gadget;
                impl Gadget {
                    fn step(&self) {}
                    fn len(&self) -> usize { 1 }
                }
                "#,
            ),
        ]
    }

    #[test]
    fn resolution_tiers() {
        let files = scan_two();
        let index = FunctionIndex::build(&files);
        let entry = &files[0].functions[0];
        let calls = index.calls_in(0, entry);
        let by_name = |n: &str| calls.iter().find(|c| c.name == n).expect("call found");

        // bare call prefers same crate (beta::helper not included)
        let helper = by_name("helper");
        assert_eq!(helper.targets.len(), 1);
        assert_eq!(index.label(helper.targets[0]), "alpha::helper");

        // path call resolves exactly
        let build = by_name("build");
        assert_eq!(build.targets.len(), 1);
        assert_eq!(index.label(build.targets[0]), "alpha::Widget::build");

        // method call fans out across crates
        let step = by_name("step");
        let mut labels: Vec<String> = step.targets.iter().map(|&t| index.label(t)).collect();
        labels.sort();
        assert_eq!(labels, vec!["alpha::Widget::step", "beta::Gadget::step"]);

        // ubiquitous method stays same-crate
        let len = by_name("len");
        assert_eq!(len.targets.len(), 1);
        assert_eq!(index.label(len.targets[0]), "alpha::Widget::len");
    }
}
