//! A real Rust lexer for the static-analysis pass (`cargo xtask analyze`).
//!
//! PR 3's lint masked source line-by-line with a hand-rolled state machine;
//! that cannot see token boundaries, so every rule needed bespoke needle
//! logic and stayed blind to scopes.  This module produces a proper token
//! stream — identifiers, lifetimes, string/char/number literals, single
//! punctuation characters, and comments *as tokens* (the annotation
//! grammars live in comments, so analyses must be able to find them).
//!
//! Coverage: raw strings `r"…"`/`r#"…"#` (any hash count), byte and C
//! strings (`b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`), byte chars `b'x'`,
//! raw identifiers `r#match`, nested block comments, `'a` lifetimes vs
//! `'x'` char literals, numeric literals with underscores / radix
//! prefixes / exponents / suffixes, and `0..n` ranges (the `.` stays
//! punctuation unless a digit follows).
//!
//! Invariants (checked by the proptests below): tokens are in strictly
//! increasing span order, spans never overlap, and every byte outside all
//! spans is ASCII whitespace — so the token stream is a lossless partition
//! of the source and any analysis finding can be mapped back to an exact
//! `line:column`.

use std::fmt;

/// Token classes — deliberately coarse: analyses match on identifier text
/// and punctuation characters, not on a full Rust grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`), without the quote.
    Lifetime,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, …
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// A numeric literal (integer or float, with suffix if glued on).
    Num,
    /// One punctuation character (`::` is two `Punct` tokens).
    Punct,
    /// `// …` to end of line (text includes the slashes).
    LineComment,
    /// `/* … */`, nesting respected (text includes the delimiters).
    BlockComment,
}

/// One token: a classified byte span of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the same string given to [`lex`]).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// True for comment tokens (excluded from code-pattern matching).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokKind::Ident => "ident",
            TokKind::Lifetime => "lifetime",
            TokKind::Str => "str",
            TokKind::Char => "char",
            TokKind::Num => "num",
            TokKind::Punct => "punct",
            TokKind::LineComment => "line-comment",
            TokKind::BlockComment => "block-comment",
        };
        f.write_str(s)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenizes `src`.  Invalid Rust never panics the lexer: unterminated
/// literals run to end of input and stray bytes become `Punct` tokens, so
/// the analyses degrade gracefully on fixtures and work-in-progress code.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::with_capacity(src.len() / 4),
    }
    .run()
}

struct Lexer<'s> {
    b: &'s [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.i),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed(),
                _ => {
                    self.push(TokKind::Punct, self.i, self.i + 1);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize) {
        self.out.push(Token {
            kind,
            start,
            end,
            line: self.line,
        });
    }

    /// Advances `i` to `to`, counting newlines (multi-line tokens record
    /// the line they *start* on).
    fn advance_to(&mut self, to: usize) {
        while self.i < to {
            if self.b[self.i] == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(TokKind::LineComment, start, self.i);
        // line tokens end before the newline; the main loop counts it
        let line = self.line;
        let last = self.out.len() - 1;
        self.out[last].line = line;
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let mut depth = 0usize;
        let mut j = self.i;
        while j < self.b.len() {
            if self.b[j] == b'/' && self.b.get(j + 1) == Some(&b'*') {
                depth += 1;
                j += 2;
            } else if self.b[j] == b'*' && self.b.get(j + 1) == Some(&b'/') {
                depth -= 1;
                j += 2;
                if depth == 0 {
                    break;
                }
            } else {
                j += 1;
            }
        }
        self.advance_to(j.min(self.b.len()));
        self.out.push(Token {
            kind: TokKind::BlockComment,
            start,
            end: self.i,
            line: start_line,
        });
    }

    /// A plain (non-raw) string starting at the quote; `start` marks where
    /// the token began (before any `b`/`c` prefix).
    fn string(&mut self, start: usize) {
        let start_line = self.line;
        let mut j = self.i + 1;
        while j < self.b.len() {
            match self.b[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        self.advance_to(j.min(self.b.len()));
        self.out.push(Token {
            kind: TokKind::Str,
            start,
            end: self.i,
            line: start_line,
        });
    }

    /// A raw string: `i` sits on the first `#` or the quote; `start` marks
    /// the token start (at the `r`/`br`/`cr` prefix).
    fn raw_string(&mut self, start: usize) {
        let start_line = self.line;
        let mut j = self.i;
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        debug_assert_eq!(self.b.get(j), Some(&b'"'), "caller checked the quote");
        j += 1;
        while j < self.b.len() {
            if self.b[j] == b'"'
                && self.b[j + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes
            {
                j += 1 + hashes;
                break;
            }
            j += 1;
        }
        self.advance_to(j.min(self.b.len()));
        self.out.push(Token {
            kind: TokKind::Str,
            start,
            end: self.i,
            line: start_line,
        });
    }

    /// `'` — a char literal, byte-char tail, lifetime, or loop label.
    fn quote(&mut self) {
        let start = self.i;
        match self.peek(1) {
            // escaped char literal: the byte after the backslash is always
            // part of the escape (`'\''`, `'\\'`), then scan to the close
            Some(b'\\') => {
                let mut j = self.i + 3;
                while j < self.b.len() {
                    match self.b[j] {
                        b'\\' => j += 2,
                        b'\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                self.advance_to(j.min(self.b.len()));
                self.push_span(TokKind::Char, start);
            }
            // 'x' with one (possibly multi-byte) char: a literal iff a
            // quote closes it; otherwise it's a lifetime
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // find the end of the ident-ish run
                let mut j = self.i + 1;
                while j < self.b.len() && is_ident_continue(self.b[j]) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    self.i = j + 1;
                    self.push_span(TokKind::Char, start);
                } else {
                    self.i = j;
                    self.push_span(TokKind::Lifetime, start);
                }
            }
            // any other single char in quotes ('"', ' ', '(' …)
            Some(_) if self.peek_char_close().is_some() => {
                let close = self.peek_char_close().unwrap_or(self.i + 2);
                self.advance_to(close + 1);
                self.push_span(TokKind::Char, start);
            }
            _ => {
                self.i += 1;
                self.push(TokKind::Punct, start, self.i);
            }
        }
    }

    /// For `'<one char>'`: the index of the closing quote, if present.
    fn peek_char_close(&self) -> Option<usize> {
        let first = self.i + 1;
        let c = *self.b.get(first)?;
        // skip the (possibly multi-byte) scalar after the opening quote
        let width = match c {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        };
        (self.b.get(first + width) == Some(&b'\'')).then_some(first + width)
    }

    fn push_span(&mut self, kind: TokKind, start: usize) {
        let end = self.i;
        let line = self.line;
        self.out.push(Token {
            kind,
            start,
            end,
            line,
        });
    }

    fn number(&mut self) {
        let start = self.i;
        let mut j = self.i + 1;
        // radix prefix bodies and plain digit runs share one loop: consume
        // alphanumerics and underscores (this also swallows suffixes and
        // hex digits), plus exponent signs
        while j < self.b.len() {
            let c = self.b[j];
            if c.is_ascii_alphanumeric() || c == b'_' {
                j += 1;
            } else if (c == b'+' || c == b'-')
                && matches!(self.b[j - 1], b'e' | b'E')
                && !matches!(self.b[start], b'0' if self.b.get(start + 1) == Some(&b'x'))
            {
                // exponent sign in 1e-3 / 2.5E+7 (not hex)
                j += 1;
            } else if c == b'.'
                && self.b.get(j + 1).is_some_and(u8::is_ascii_digit)
                && self.b.get(j.wrapping_sub(1)) != Some(&b'.')
            {
                // fractional part: `.` only joins when a digit follows,
                // so `0..n` stays Num Punct Punct Num
                j += 1;
            } else {
                break;
            }
        }
        self.i = j;
        self.push_span(TokKind::Num, start);
    }

    fn ident_or_prefixed(&mut self) {
        let start = self.i;
        let mut j = self.i + 1;
        while j < self.b.len() && is_ident_continue(self.b[j]) {
            j += 1;
        }
        let word = &self.b[start..j];
        // string prefixes glue directly onto a quote or raw-string hashes
        let next = self.b.get(j).copied();
        match (word, next) {
            (b"r" | b"br" | b"cr", Some(b'"' | b'#')) => {
                // r#"…"# | r#ident — decide by what follows the hashes
                let mut k = j;
                while self.b.get(k) == Some(&b'#') {
                    k += 1;
                }
                if self.b.get(k) == Some(&b'"') {
                    self.i = j;
                    self.raw_string(start);
                    return;
                }
                if word == b"r" && j + 1 == k && self.b.get(k).copied().is_some_and(is_ident_start)
                {
                    // raw identifier r#match
                    let mut m = k + 1;
                    while m < self.b.len() && is_ident_continue(self.b[m]) {
                        m += 1;
                    }
                    self.i = m;
                    self.push_span(TokKind::Ident, start);
                    return;
                }
            }
            (b"b" | b"c", Some(b'"')) => {
                self.i = j;
                self.string(start);
                return;
            }
            (b"b", Some(b'\'')) => {
                // byte char b'x': delegate to quote(), then widen the span
                self.i = j;
                self.quote();
                let last = self.out.len() - 1;
                if self.out[last].kind == TokKind::Char {
                    self.out[last].start = start;
                }
                return;
            }
            _ => {}
        }
        self.i = j;
        self.push_span(TokKind::Ident, start);
    }
}

/// The non-comment tokens of `tokens`, as (index, token) pairs — the view
/// most analyses iterate.
pub fn code_tokens(tokens: &[Token]) -> impl Iterator<Item = (usize, &Token)> {
    tokens.iter().enumerate().filter(|(_, t)| !t.is_comment())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    /// The partition invariants every lex must uphold.
    fn check_partition(src: &str) {
        let toks = lex(src);
        let mut prev_end = 0usize;
        for t in &toks {
            assert!(
                t.start >= prev_end,
                "overlap at {}..{} in {src:?}",
                t.start,
                t.end
            );
            assert!(
                t.end <= src.len() && t.start < t.end || t.start == t.end,
                "span"
            );
            assert!(
                src[prev_end..t.start]
                    .bytes()
                    .all(|c| c.is_ascii_whitespace()),
                "gap {:?} not whitespace in {src:?}",
                &src[prev_end..t.start]
            );
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            prev_end = t.end;
        }
        assert!(
            src[prev_end..].bytes().all(|c| c.is_ascii_whitespace()),
            "tail {:?} not whitespace",
            &src[prev_end..]
        );
        // line numbers are monotone and correct
        for t in &toks {
            let expect = 1 + src[..t.start].bytes().filter(|&c| c == b'\n').count() as u32;
            assert_eq!(t.line, expect, "line of {:?}", t.text(src));
        }
    }

    #[test]
    fn basic_items() {
        let src = "fn f(x: u32) -> u32 { x + 1 }";
        check_partition(src);
        let k = kinds(src);
        assert_eq!(k[0], (TokKind::Ident, "fn".into()));
        assert_eq!(k[1], (TokKind::Ident, "f".into()));
        assert!(k.iter().any(|(kind, t)| *kind == TokKind::Num && t == "1"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r##"let s = "has .unwrap() and unsafe"; let r = r#"raw "quoted" unsafe"#;"##;
        check_partition(src);
        let strs: Vec<_> = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].starts_with("r#\""));
        // no Ident token says "unsafe"
        assert!(!lex(src)
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text(src) == "unsafe"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        check_partition(src);
        let k = kinds(src);
        assert_eq!(k.len(), 3);
        assert_eq!(k[1].0, TokKind::BlockComment);
        assert_eq!(k[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src =
            "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let s = ' '; loop { break; } }";
        check_partition(src);
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\''", "' '"]);
    }

    #[test]
    fn byte_and_c_strings_and_raw_idents() {
        let src = r###"let a = b"bytes"; let b2 = b'\n'; let c = br#"raw"#; let d = r#match;"###;
        check_partition(src);
        let toks = lex(src);
        let strs = toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 2);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text(src) == "b'\\n'"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text(src) == "r#match"));
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "let a = 0..10; let b = 1.5e-3; let c = 0xfff_u32; let d = x.0;";
        check_partition(src);
        let nums: Vec<_> = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "0xfff_u32", "0"]);
    }

    #[test]
    fn ordering_in_strings_is_not_an_ident() {
        let src = r#"let s = "Ordering::Relaxed"; // Ordering::Relaxed in a comment"#;
        let toks = lex(src);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text(src) == "Ordering"));
        assert_eq!(
            toks.iter().filter(|t| t.is_comment()).count(),
            1,
            "the comment itself is kept as a token"
        );
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["let s = \"open", "let r = r#\"open", "/* open", "let c = '"] {
            let _ = lex(src); // must not panic; partition may end mid-token
        }
    }

    /// Generates token-soup fragments and asserts the partition invariants
    /// — the "round-trip token spans over generated raw-string / comment /
    /// lifetime soup" property from the issue.
    fn fragment(ix: usize, payload: u8) -> String {
        let p = payload as usize;
        match ix % 12 {
            0 => format!("ident{p}"),
            1 => format!("\"s{}\"", "\\\"".repeat(p % 3)),
            2 => format!("r{h}\"raw {p} \"# inner\"{h}", h = "#".repeat(p % 4 + 1)),
            3 => format!("/* d{} /* n */ */", p % 5),
            4 => format!("// line {p}\n"),
            5 => format!("'l{}", (b'a' + payload % 26) as char),
            6 => format!("'{}'", (b'a' + payload % 26) as char),
            7 => format!("{p}.{}e-{}", p % 7, p % 5),
            8 => "'\\u{41}'".to_string(),
            9 => format!("b\"b{p}\""),
            10 => "::().=>[]{}#!".to_string(),
            11 => format!("0..{p}"),
            _ => unreachable!(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn lex_partitions_generated_soup(
            picks in proptest::collection::vec((0usize..12, proptest::arbitrary::any::<u8>()), 0..24)
        ) {
            let mut src = String::new();
            for (ix, payload) in picks {
                src.push_str(&fragment(ix, payload));
                src.push(' ');
            }
            check_partition(&src);
        }

        #[test]
        fn lex_never_panics_on_arbitrary_ascii(bytes in proptest::collection::vec(32u8..127, 0..64)) {
            let src: String = bytes.into_iter().map(char::from).collect();
            let toks = lex(&src);
            // spans are ordered and in bounds even on nonsense input
            let mut prev = 0;
            for t in &toks {
                prop_assert!(t.start >= prev && t.end <= src.len());
                prev = t.start.max(prev);
            }
        }
    }
}
