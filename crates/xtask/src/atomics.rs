//! Atomic-ordering audit (`cargo xtask analyze`, rule `atomic-ordering`).
//!
//! Extends PR 3's "every `Relaxed` needs a `// relaxed:` comment" rule to
//! the full ordering vocabulary.  Every `Ordering::<X>` literal (for the
//! five *atomic* orderings — `cmp::Ordering` variants never match) must
//! carry a `// ORDERING: <role>` annotation within [`ORDERING_WINDOW`]
//! lines, and the declared role must be *consistent* with the ordering:
//!
//! | role                | meaning                                   | allowed orderings |
//! |---------------------|-------------------------------------------|-------------------|
//! | `counter`           | monotonic statistic, read for reporting   | `Relaxed`         |
//! | `gauge`             | last-write-wins level                     | `Relaxed`         |
//! | `cursor`            | queue/ring claim ticket; publication is elsewhere | `Relaxed`  |
//! | `config`            | tuning knob; staleness acceptable         | `Relaxed`         |
//! | `sample`            | probabilistic accumulator                 | `Relaxed`         |
//! | `id`                | unique-id allocator; uniqueness only      | `Relaxed`         |
//! | `latch`             | one-way stop/shutdown flag; laggy reads fine | `Relaxed`      |
//! | `acquire`           | consume-side of a publication pair        | `Acquire`         |
//! | `release`           | publish-side of a publication pair        | `Release`         |
//! | `acqrel`            | read-modify-write on a publication point  | `AcqRel`          |
//! | `handoff`           | either side of a publication pair (mixed-ordering call sites) | `Acquire`, `Release`, `AcqRel` |
//! | `seqcst`            | total-order required; justify in prose    | `SeqCst`          |
//!
//! On top of the per-site check, publication pairing is verified per
//! *atomic field* (`crate:field`, the receiver's last identifier): a field
//! with a Release-side write must also have an Acquire-side read somewhere
//! in the crate and vice versa — a mis-paired `Release` means the data it
//! guards is read without synchronization.  A field that mixes a
//! Release-side write with `Relaxed` loads (or Acquire-side reads with
//! `Relaxed` stores) is flagged as a **relaxed hand-off**: the cross-thread
//! edge exists but one side opted out of it.
//!
//! Test regions are exempt (single-threaded assertions), matching every
//! other rule.

use crate::lexer::TokKind;
use crate::lint::Finding;
use crate::scan::SourceFile;
use std::collections::BTreeMap;

/// Lines above an `Ordering::*` site searched for `// ORDERING: <role>`
/// (same value as PR 3's `RELAXED_WINDOW` so migrated comments keep
/// working in place).
pub const ORDERING_WINDOW: u32 = 6;

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Roles whose only consistent ordering is `Relaxed`.
const RELAXED_ROLES: &[&str] = &[
    "counter", "gauge", "cursor", "config", "sample", "id", "latch",
];

/// role → allowed orderings (`None` = unknown role).
fn allowed(role: &str) -> Option<&'static [&'static str]> {
    match role {
        _ if RELAXED_ROLES.contains(&role) => Some(&["Relaxed"]),
        "acquire" => Some(&["Acquire"]),
        "release" => Some(&["Release"]),
        "acqrel" => Some(&["AcqRel"]),
        "handoff" => Some(&["Acquire", "Release", "AcqRel"]),
        "seqcst" => Some(&["SeqCst"]),
        _ => None,
    }
}

/// Which side of a publication pair a site is on.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Side {
    Load,
    Store,
    Rmw,
    Unknown,
}

fn side_of(method: &str) -> Side {
    match method {
        "load" => Side::Load,
        "store" => Side::Store,
        m if m.starts_with("fetch_") || m == "swap" || m.starts_with("compare_exchange") => {
            Side::Rmw
        }
        _ => Side::Unknown,
    }
}

#[derive(Debug)]
struct Site {
    file: usize,
    line: u32,
    ordering: String,
    /// `crate:field` when the receiver could be named.
    field: Option<String>,
    side: Side,
}

/// Walks back from the ordering literal to the enclosing call's method
/// name and receiver field: `self.seq.load(Ordering::Acquire)` →
/// (`load`, `seq`).
fn enclosing_call(
    file: &SourceFile,
    code: &[usize],
    ord_pos: usize,
) -> (Option<String>, Option<String>) {
    // find the unbalanced `(` that opened the argument list
    let mut depth = 0i32;
    let mut j = ord_pos;
    let open = loop {
        if j == 0 {
            return (None, None);
        }
        j -= 1;
        match file.text(code[j]) {
            ")" | "]" => depth += 1,
            "(" | "[" if depth > 0 => depth -= 1,
            "(" => break j,
            "{" | "}" | ";" => return (None, None),
            _ => {}
        }
    };
    if open == 0 || file.tokens[code[open - 1]].kind != TokKind::Ident {
        return (None, None);
    }
    let method = file.text(code[open - 1]).to_string();
    // receiver: last identifier before the `.` preceding the method
    let mut field = None;
    if open >= 2 && file.text(code[open - 2]) == "." {
        let mut r = open - 2;
        let mut indexed = false;
        while r > 0 {
            r -= 1;
            match file.text(code[r]) {
                "]" => {
                    indexed = true;
                    let mut d = 1;
                    while r > 0 && d > 0 {
                        r -= 1;
                        match file.text(code[r]) {
                            "]" => d += 1,
                            "[" => d -= 1,
                            _ => {}
                        }
                    }
                }
                _ if file.tokens[code[r]].kind == TokKind::Ident => {
                    let _ = indexed; // indexed elements still share one field's protocol
                    field = Some(file.text(code[r]).to_string());
                    break;
                }
                _ => break,
            }
        }
    }
    (Some(method), field)
}

/// Runs the audit over `files`.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut sites: Vec<Site> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        let code: Vec<usize> = crate::lexer::code_tokens(&file.tokens)
            .map(|(i, _)| i)
            .collect();
        for k in 0..code.len() {
            if file.text(code[k]) != "Ordering" {
                continue;
            }
            // `Ordering :: X` — `::` lexes as two `:` puncts
            let is_path = k + 3 < code.len()
                && file.text(code[k + 1]) == ":"
                && file.text(code[k + 2]) == ":";
            if !is_path {
                continue;
            }
            let variant = file.text(code[k + 3]);
            if !ATOMIC_ORDERINGS.contains(&variant) {
                continue; // `cmp::Ordering::{Less,Equal,Greater}` et al.
            }
            if file.in_tests(code[k]) {
                continue;
            }
            let line = file.tokens[code[k]].line;
            let (method, field) = enclosing_call(file, &code, k);
            let side = method.as_deref().map_or(Side::Unknown, side_of);
            let field_id = field.map(|f| format!("{}:{}", file.crate_name, f));

            match file.annotation_text(line, ORDERING_WINDOW, "ORDERING:") {
                None => findings.push(Finding {
                    file: file.rel_path.clone(),
                    line,
                    rule: "atomic-ordering",
                    message: format!(
                        "`Ordering::{variant}` without an `// ORDERING: <role>` annotation within {ORDERING_WINDOW} lines"
                    ),
                }),
                Some(text) => {
                    let role = text
                        .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                        .next()
                        .unwrap_or("")
                        .to_string();
                    match allowed(&role) {
                        None => findings.push(Finding {
                            file: file.rel_path.clone(),
                            line,
                            rule: "atomic-ordering",
                            message: format!(
                                "unknown ORDERING role `{role}` (expected one of: {}, acquire, release, acqrel, handoff, seqcst)",
                                RELAXED_ROLES.join(", ")
                            ),
                        }),
                        Some(ok) if !ok.contains(&variant) => findings.push(Finding {
                            file: file.rel_path.clone(),
                            line,
                            rule: "atomic-ordering",
                            message: format!(
                                "role `{role}` is inconsistent with `Ordering::{variant}` (allowed: {})",
                                ok.join(", ")
                            ),
                        }),
                        Some(_) => {}
                    }
                }
            }

            sites.push(Site {
                file: fi,
                line,
                ordering: variant.to_string(),
                field: field_id,
                side,
            });
        }
    }

    // per-field pairing: Release-side writes need Acquire-side reads and
    // vice versa; mixing a synchronized side with Relaxed on the opposite
    // side is a relaxed hand-off
    let mut by_field: BTreeMap<&String, Vec<&Site>> = BTreeMap::new();
    for s in &sites {
        if let Some(f) = &s.field {
            by_field.entry(f).or_default().push(s);
        }
    }
    for (field, sites) in by_field {
        let release_write = sites.iter().find(|s| {
            matches!(s.side, Side::Store | Side::Rmw)
                && matches!(s.ordering.as_str(), "Release" | "AcqRel" | "SeqCst")
        });
        let acquire_read = sites.iter().find(|s| {
            matches!(s.side, Side::Load | Side::Rmw)
                && matches!(s.ordering.as_str(), "Acquire" | "AcqRel" | "SeqCst")
        });
        let relaxed_read = sites
            .iter()
            .find(|s| matches!(s.side, Side::Load | Side::Rmw) && s.ordering == "Relaxed");
        let relaxed_write = sites
            .iter()
            .find(|s| matches!(s.side, Side::Store | Side::Rmw) && s.ordering == "Relaxed");

        if let (Some(w), None) = (release_write, acquire_read) {
            let (file, detail) = (&files[w.file], match relaxed_read {
                Some(r) => format!(
                    "relaxed hand-off on `{field}`: Release-side write at line {} but the load at {}:{} is `Relaxed` — the consumer reads published data without synchronization",
                    w.line, files[r.file].rel_path, r.line
                ),
                None => format!(
                    "mis-paired `Release` on `{field}`: Release-side write at line {} has no Acquire-side load anywhere in the crate",
                    w.line
                ),
            });
            findings.push(Finding {
                file: file.rel_path.clone(),
                line: w.line,
                rule: "atomic-ordering",
                message: detail,
            });
        }
        if let (None, Some(r)) = (release_write, acquire_read) {
            let (file, detail) = (&files[r.file], match relaxed_write {
                Some(w) => format!(
                    "relaxed hand-off on `{field}`: Acquire-side load at line {} but the store at {}:{} is `Relaxed` — the publisher gives the consumer nothing to synchronize with",
                    r.line, files[w.file].rel_path, w.line
                ),
                None => format!(
                    "mis-paired `Acquire` on `{field}`: Acquire-side load at line {} has no Release-side store anywhere in the crate",
                    r.line
                ),
            });
            findings.push(Finding {
                file: file.rel_path.clone(),
                line: r.line,
                rule: "atomic-ordering",
                message: detail,
            });
        }
    }

    findings.sort_by(|x, y| (&x.file, x.line).cmp(&(&y.file, y.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::scan("crates/demo/src/lib.rs", src)];
        check(&files)
    }

    #[test]
    fn paired_publication_with_roles_is_clean() {
        let src = r#"
            use std::sync::atomic::{AtomicUsize, Ordering};
            pub struct S { seq: AtomicUsize }
            impl S {
                pub fn publish(&self, v: usize) {
                    // ORDERING: release — slot contents written before this
                    self.seq.store(v, Ordering::Release);
                }
                pub fn consume(&self) -> usize {
                    // ORDERING: acquire — pairs with the Release in publish
                    self.seq.load(Ordering::Acquire)
                }
            }
        "#;
        assert!(analyze(src).is_empty(), "{:?}", analyze(src));
    }

    #[test]
    fn unannotated_ordering_is_flagged() {
        let src = r#"
            use std::sync::atomic::{AtomicUsize, Ordering};
            pub fn f(x: &AtomicUsize) -> usize { x.load(Ordering::Relaxed) }
        "#;
        let f = analyze(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("without an `// ORDERING:"));
    }

    #[test]
    fn role_ordering_mismatch_is_flagged() {
        let src = r#"
            use std::sync::atomic::{AtomicUsize, Ordering};
            pub fn f(x: &AtomicUsize) -> usize {
                // ORDERING: counter — per-query statistic
                x.load(Ordering::Acquire)
            }
            pub fn g(x: &AtomicUsize) {
                // ORDERING: release — pairs with the load in f
                x.store(1, Ordering::Release);
            }
        "#;
        let f = analyze(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message
                .contains("inconsistent with `Ordering::Acquire`"),
            "{f:?}"
        );
    }

    #[test]
    fn unknown_role_is_flagged() {
        let src = r#"
            use std::sync::atomic::{AtomicUsize, Ordering};
            pub fn f(x: &AtomicUsize) -> usize {
                // ORDERING: vibes
                x.load(Ordering::Relaxed)
            }
        "#;
        let f = analyze(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unknown ORDERING role `vibes`"));
    }

    #[test]
    fn mispaired_release_is_flagged() {
        let src = r#"
            use std::sync::atomic::{AtomicUsize, Ordering};
            pub struct S { flag: AtomicUsize }
            impl S {
                pub fn publish(&self) {
                    // ORDERING: release — payload written before this
                    self.flag.store(1, Ordering::Release);
                }
            }
        "#;
        let f = analyze(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("mis-paired `Release`"), "{f:?}");
    }

    #[test]
    fn relaxed_handoff_is_flagged() {
        let src = r#"
            use std::sync::atomic::{AtomicUsize, Ordering};
            pub struct S { flag: AtomicUsize }
            impl S {
                pub fn publish(&self) {
                    // ORDERING: release — payload written before this
                    self.flag.store(1, Ordering::Release);
                }
                pub fn peek(&self) -> usize {
                    // ORDERING: counter — reporting only (wrong: gates a read of the payload)
                    self.flag.load(Ordering::Relaxed)
                }
            }
        "#;
        let f = analyze(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("relaxed hand-off on `demo:flag`"),
            "{f:?}"
        );
    }

    #[test]
    fn cmp_ordering_and_tests_are_exempt() {
        let src = r#"
            pub fn f(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }
            pub fn g(a: u32) -> bool { matches!(a.cmp(&1), std::cmp::Ordering::Less) }
            #[cfg(test)]
            mod tests {
                use std::sync::atomic::{AtomicUsize, Ordering};
                fn t(x: &AtomicUsize) -> usize { x.load(Ordering::Relaxed) }
            }
        "#;
        assert!(analyze(src).is_empty());
    }

    #[test]
    fn rmw_acqrel_counts_for_both_sides() {
        let src = r#"
            use std::sync::atomic::{AtomicUsize, Ordering};
            pub struct S { epoch: AtomicUsize }
            impl S {
                pub fn bump(&self) -> usize {
                    // ORDERING: acqrel — closes the old epoch, opens the new
                    self.epoch.fetch_add(1, Ordering::AcqRel)
                }
            }
        "#;
        assert!(analyze(src).is_empty(), "{:?}", analyze(src));
    }
}
