//! `cargo xtask diagcheck <dir>` — validate a diagnostics bundle as
//! written by `Database::diagnostics` / `repro --diag`.
//!
//! Checks, per artifact:
//!
//! * every required file is present and readable;
//! * `metrics.prom` passes the dep-free Prometheus linter;
//! * every `*.json` artifact parses as exactly one well-formed JSON value
//!   (a dep-free recursive-descent validator — no serde in this repo);
//! * `events.jsonl` parses line by line, one JSON object per event;
//! * `profile.collapsed` is well-formed collapsed-stack output
//!   (`frame;frame <u64>` per line);
//! * `manifest.json` carries the provenance keys downstream tooling
//!   relies on.
//!
//! Returns findings rather than failing fast, so CI reports everything
//! wrong with a bundle at once.

use std::path::Path;

/// Artifacts every bundle must contain.
const REQUIRED: &[&str] = &[
    "metrics.prom",
    "metrics.json",
    "stats.txt",
    "workload.json",
    "heap.json",
    "traces_recent.json",
    "traces_slow.json",
    "events.jsonl",
    "profile.collapsed",
    "manifest.json",
];

/// Validates the bundle at `dir`; an empty vec means clean.
pub fn check_bundle(dir: &Path) -> Vec<String> {
    let mut findings = Vec::new();
    for name in REQUIRED {
        let path = dir.join(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                findings.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        match *name {
            "metrics.prom" => {
                for f in xseq_telemetry::lint_prometheus(&text) {
                    findings.push(format!("{name}: {f}"));
                }
            }
            "stats.txt" => {
                if !text.starts_with("database:") {
                    findings.push(format!("{name}: missing the stats header line"));
                } else if !text.contains("shard(s)") {
                    findings.push(format!("{name}: header missing the shard count"));
                }
            }
            "events.jsonl" => {
                for (no, line) in text.lines().enumerate() {
                    if !line.starts_with('{') {
                        findings.push(format!("{name}:{}: event is not a JSON object", no + 1));
                    } else if let Err(e) = validate_json(line) {
                        findings.push(format!("{name}:{}: {e}", no + 1));
                    }
                }
            }
            "profile.collapsed" => {
                for (no, line) in text.lines().enumerate() {
                    if let Err(e) = check_collapsed_line(line) {
                        findings.push(format!("{name}:{}: {e}", no + 1));
                    }
                }
            }
            "manifest.json" => match validate_json(&text) {
                Err(e) => findings.push(format!("{name}: {e}")),
                Ok(()) => {
                    for key in ["\"version\"", "\"sequencing\"", "\"shards\"", "\"files\""] {
                        if !text.contains(key) {
                            findings.push(format!("{name}: missing the {key} key"));
                        }
                    }
                }
            },
            "heap.json" => match validate_json(&text) {
                Err(e) => findings.push(format!("{name}: {e}")),
                Ok(()) => {
                    if !text.contains("\"shards\"") {
                        findings.push(format!("{name}: missing the per-shard breakdown"));
                    }
                }
            },
            _ => {
                if let Err(e) = validate_json(&text) {
                    findings.push(format!("{name}: {e}"));
                }
            }
        }
    }
    findings
}

/// One collapsed-stack line: `frame(;frame)* <u64>`.
fn check_collapsed_line(line: &str) -> Result<(), String> {
    let Some((stack, value)) = line.rsplit_once(' ') else {
        return Err("missing the ` <value>` tail".into());
    };
    if value.parse::<u64>().is_err() {
        return Err(format!("value `{value}` is not a u64"));
    }
    if stack.is_empty() || stack.split(';').any(|f| f.trim().is_empty()) {
        return Err(format!("malformed frame stack `{stack}`"));
    }
    Ok(())
}

/// Validates that `text` is exactly one well-formed JSON value — a
/// dep-free recursive-descent pass that keeps nothing but a cursor.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > 64 {
            return Err("nesting deeper than 64 levels".into());
        }
        match self.b.get(self.i) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, self.i)),
            None => Err(format!("unexpected end of input at byte {}", self.i)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.i += 1; // the `{` the caller saw
        self.ws();
        if self.eat(b'}') {
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            if !self.eat(b':') {
                return Err(format!("expected `:` at byte {}", self.i));
            }
            self.ws();
            self.value(depth + 1)?;
            self.ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(());
            }
            return Err(format!("expected `,` or `}}` at byte {}", self.i));
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.i += 1; // the `[` the caller saw
        self.ws();
        if self.eat(b']') {
            return Ok(());
        }
        loop {
            self.ws();
            self.value(depth + 1)?;
            self.ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(());
            }
            return Err(format!("expected `,` or `]` at byte {}", self.i));
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if !self.eat(b'"') {
            return Err(format!("expected a string at byte {}", self.i));
        }
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => match self.b.get(self.i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.i += 1,
                    Some(b'u') => {
                        self.i += 1;
                        for _ in 0..4 {
                            match self.b.get(self.i) {
                                Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", self.i)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.i)),
                },
                0x00..=0x1f => return Err(format!("raw control byte in string at {}", self.i - 1)),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        let _ = self.eat(b'-');
        if self.digits() == 0 {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.eat(b'.') && self.digits() == 0 {
            return Err(format!("malformed number at byte {start}"));
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if self.digits() == 0 {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        Ok(())
    }

    fn digits(&mut self) -> usize {
        let start = self.i;
        while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        self.i - start
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_well_formed_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "\"a \\\"quoted\\\" string with \\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"d\"}",
            " { \"spaced\" : [ 1 , 2 ] } ",
        ] {
            assert_eq!(validate_json(ok), Ok(()), "rejected {ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
            "{'single':1}",
            "{\"raw\ncontrol\":1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn collapsed_lines_are_checked_per_field() {
        assert_eq!(check_collapsed_line("ingest;xml.parse 12345"), Ok(()));
        assert_eq!(check_collapsed_line("query 0"), Ok(()));
        assert!(check_collapsed_line("no-value-tail").is_err());
        assert!(check_collapsed_line("stack not_a_number").is_err());
        assert!(check_collapsed_line("bad;;stack 5").is_err());
        assert!(check_collapsed_line(" 5").is_err());
    }

    #[test]
    fn bundle_check_reports_missing_and_malformed_artifacts() {
        let dir = std::env::temp_dir().join(format!("xseq-diagcheck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A minimal, fully valid bundle…
        let valid: &[(&str, &str)] = &[
            ("metrics.prom", ""),
            ("metrics.json", "{\"metrics\":{}}"),
            ("stats.txt", "database: 1 docs | 2 paths | 1 shard(s)\n"),
            ("workload.json", "{\"queries\":0}"),
            (
                "heap.json",
                "{\"corpus_bytes\":1,\"index_bytes\":2,\"total_bytes\":3,\"shards\":[{\"shard\":0,\"docs\":1,\"corpus_bytes\":1,\"index_bytes\":2,\"total_bytes\":3}]}",
            ),
            ("traces_recent.json", "[]"),
            ("traces_slow.json", "[]"),
            ("events.jsonl", "{\"seq\":1,\"name\":\"ingest.build\"}\n"),
            ("profile.collapsed", "ingest;xml.parse 10\n"),
            (
                "manifest.json",
                "{\"version\":\"0.1.0\",\"sequencing\":\"probability\",\"shards\":1,\"files\":[]}",
            ),
        ];
        for (name, contents) in valid {
            std::fs::write(dir.join(name), contents).unwrap();
        }
        assert_eq!(check_bundle(&dir), Vec::<String>::new());
        // …then break three artifacts three different ways.
        std::fs::write(dir.join("heap.json"), "{broken").unwrap();
        std::fs::write(dir.join("profile.collapsed"), "no tail here x\n").unwrap();
        std::fs::remove_file(dir.join("events.jsonl")).unwrap();
        let findings = check_bundle(&dir);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().any(|f| f.starts_with("heap.json:")));
        assert!(findings.iter().any(|f| f.starts_with("events.jsonl:")));
        assert!(findings
            .iter()
            .any(|f| f.starts_with("profile.collapsed:1:")));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
