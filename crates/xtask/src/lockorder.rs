//! Lock-order deadlock detection (`cargo xtask analyze`, rule
//! `lock-order`).
//!
//! The pass is lexical but scope-aware:
//!
//! 1. **Registry** — every declaration of the shape `name: Mutex<…>` /
//!    `name: RwLock<…>` (struct field, static, local, or parameter)
//!    registers the lock `crate:name`.  Identity is the declared name
//!    scoped by crate: two fields with one name in one crate merge, which
//!    over-approximates (may report an impossible interleaving) but never
//!    under-approximates.
//! 2. **Acquisitions** — `recv.lock()`, `recv.read()`, `recv.write()`
//!    where `recv`'s last identifier is a registered lock.  A guard is
//!    held to the end of its `let` statement's enclosing block, or to the
//!    end of the statement for borrow-and-drop temporaries — the same
//!    approximation a reviewer applies reading the code.
//! 3. **Propagation** — while a guard is held, every call resolved by
//!    [`FunctionIndex`] contributes the callee's transitive lock set, so
//!    `a.lock(); helper()` sees the locks `helper` takes.
//! 4. **Digraph** — edge `A → B` when `B` is acquired while `A` is held,
//!    each edge carrying a *witness*: the acquisition path (file:line of
//!    the held acquisition, the call chain if any, file:line of the inner
//!    acquisition).  Cycles fail the build, reporting every edge's
//!    witness — for the classic AB/BA deadlock that is exactly the two
//!    acquisition paths.
//! 5. **Canonical order** — edges between locks named in
//!    [`CANONICAL_LOCK_ORDER`] must agree with the declared order
//!    (DESIGN.md §14.2), so a violation is caught even before a full
//!    cycle exists in the code.
//!
//! Per-element lock vectors (`slots[i].lock()`) are registered but exempt
//! from *self*-cycle reporting: two acquisitions of `slots[i]`/`slots[j]`
//! are distinct instances.

use crate::graph::FunctionIndex;
use crate::lexer::TokKind;
use crate::lint::Finding;
use crate::scan::{Function, SourceFile};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The workspace's declared lock hierarchy, outermost first: a thread
/// holding a lock may only acquire locks strictly *later* in this list.
/// Locks absent from the list are leaves (they may be acquired under any
/// listed lock but must not wrap one).
pub const CANONICAL_LOCK_ORDER: &[&str] = &[
    "storage:pool",          // buffer pool — held across page faults in the descent
    "schema:inner",          // workload recorder — one flush per query, after search
    "telemetry:workers",     // watchdog roster
    "telemetry:last",        // metrics journal snapshot cell
    "telemetry:state",       // anomaly detector state
    "telemetry:recent_read", // trace ring drain buffer (recent)
    "telemetry:slow_read",   // trace ring drain buffer (slow log)
    "telemetry:read",        // flight-recorder drain buffer
];

#[derive(Debug, Clone)]
struct Acquisition {
    lock: String,
    /// Raw token index of the receiver's `.`.
    pos: usize,
    /// Raw token index at which the guard is (approximately) dropped.
    hold_end: usize,
    line: u32,
    indexed: bool,
}

/// `crate:name` sets declared as `Mutex<…>`/`RwLock<…>`.
fn lock_registry(files: &[SourceFile]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in files {
        let code: Vec<usize> = crate::lexer::code_tokens(&file.tokens)
            .map(|(i, _)| i)
            .collect();
        for (k, &ix) in code.iter().enumerate() {
            let text = file.text(ix);
            if text != "Mutex" && text != "RwLock" {
                continue;
            }
            // must open a type: `Mutex<` (skip `Mutex::new`, `use … Mutex`)
            if code.get(k + 1).is_none_or(|&nx| file.text(nx) != "<") {
                continue;
            }
            // walk back over type-path tokens to the `name :` that declares
            // it; stop at statement/scope punctuation
            let mut j = k;
            let mut hops = 0;
            while j > 0 && hops < 8 {
                j -= 1;
                hops += 1;
                let t = file.text(code[j]);
                match t {
                    "<" | ">" | "&" | "," | "'" => continue,
                    ":" => {
                        // `::` path separator vs declaration colon
                        if j > 0 && file.text(code[j - 1]) == ":" {
                            j -= 1;
                            continue;
                        }
                        if j > 0 && file.tokens[code[j - 1]].kind == TokKind::Ident {
                            let name = file.text(code[j - 1]);
                            out.insert(format!("{}:{}", file.crate_name, name));
                        }
                        break;
                    }
                    _ if file.tokens[code[j]].kind == TokKind::Ident => continue,
                    _ => break,
                }
            }
        }
    }
    out
}

/// Brace depth and paren/bracket depth per body position.
fn depths(file: &SourceFile, body: &[usize]) -> (Vec<i32>, Vec<i32>) {
    let mut brace = Vec::with_capacity(body.len());
    let mut group = Vec::with_capacity(body.len());
    let (mut b, mut g) = (0i32, 0i32);
    for &ix in body {
        match file.text(ix) {
            "{" => {
                brace.push(b);
                group.push(g);
                b += 1;
            }
            "}" => {
                b -= 1;
                brace.push(b);
                group.push(g);
            }
            "(" | "[" => {
                brace.push(b);
                group.push(g);
                g += 1;
            }
            ")" | "]" => {
                g -= 1;
                brace.push(b);
                group.push(g);
            }
            _ => {
                brace.push(b);
                group.push(g);
            }
        }
    }
    (brace, group)
}

/// The receiver's last identifier before the `.` at body position `dot`,
/// plus whether an index expression was skipped on the way.
fn receiver(file: &SourceFile, body: &[usize], dot: usize) -> Option<(String, bool)> {
    let mut j = dot;
    let mut indexed = false;
    while j > 0 {
        j -= 1;
        let text = file.text(body[j]);
        match text {
            "]" => {
                indexed = true;
                let mut depth = 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match file.text(body[j]) {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
            }
            _ if file.tokens[body[j]].kind == TokKind::Ident => {
                return Some((text.to_string(), indexed));
            }
            _ => return None,
        }
    }
    None
}

/// Lock acquisitions in `f`'s body, with hold ranges.
fn acquisitions(file: &SourceFile, f: &Function, registry: &BTreeSet<String>) -> Vec<Acquisition> {
    let body: Vec<usize> = file
        .body_tokens_of(f)
        .filter(|&ix| !file.tokens[ix].is_comment())
        .collect();
    let (brace, group) = depths(file, &body);
    let mut out = Vec::new();
    for k in 0..body.len() {
        if file.text(body[k]) != "." {
            continue;
        }
        let is_acquire = matches!(file.text(body[k + 1]), "lock" | "read" | "write")
            && k + 3 < body.len()
            && file.text(body[k + 2]) == "("
            && file.text(body[k + 3]) == ")";
        if k + 3 >= body.len() || !is_acquire {
            continue;
        }
        let Some((name, indexed)) = receiver(file, &body, k) else {
            continue;
        };
        let lock = format!("{}:{}", file.crate_name, name);
        if !registry.contains(&lock) {
            continue;
        }
        let db = brace[k];
        // statement start: nearest earlier `;`/`{`/`}` at this brace depth
        // outside any group
        let stmt_start = (0..k)
            .rev()
            .find(|&p| {
                brace[p] == db && group[p] == 0 && matches!(file.text(body[p]), ";" | "{" | "}")
            })
            .map_or(0, |p| p + 1);
        let stmt_text = |p: usize| file.text(body[p]);
        let let_at = (stmt_start..k)
            .find(|&p| file.tokens[body[p]].kind == TokKind::Ident && stmt_text(p) == "let");
        // `if let`/`while let`/`match` scrutinee temporaries live to the
        // end of the construct (its block, plus any `else` chain) — not
        // to the enclosing block, and not just to a `;`.
        let scrutinee = (stmt_start..k).any(|p| {
            file.tokens[body[p]].kind == TokKind::Ident
                && match stmt_text(p) {
                    "if" | "while" => let_at.is_some_and(|l| l > p),
                    "match" | "for" => true,
                    _ => false,
                }
        });
        let block_close = (k..body.len())
            .find(|&q| brace[q] < db)
            .unwrap_or(body.len() - 1);
        let hold_end = if scrutinee {
            // first block of the construct, then follow `else` chains
            let mut close = (k..body.len())
                .find(|&q| brace[q] == db && stmt_text(q) == "}")
                .unwrap_or(block_close);
            while body.get(close + 1).is_some() && stmt_text(close + 1) == "else" {
                close = (close + 1..body.len())
                    .find(|&q| brace[q] == db && stmt_text(q) == "}")
                    .unwrap_or(block_close);
            }
            close
        } else if let_at.is_some() {
            block_close
        } else {
            (k..body.len())
                .find(|&q| brace[q] == db && group[q] == 0 && stmt_text(q) == ";")
                .unwrap_or(block_close)
        };
        out.push(Acquisition {
            lock,
            pos: body[k],
            hold_end: body[hold_end],
            line: file.tokens[body[k]].line,
            indexed,
        });
    }
    out
}

/// Runs the analysis over `files`, reporting cycle and canonical-order
/// findings.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let registry = lock_registry(files);
    let index = FunctionIndex::build(files);

    // per-function direct acquisitions and call sites
    type Trace = Vec<String>;
    let mut direct: HashMap<(usize, usize), Vec<Acquisition>> = HashMap::new();
    let mut lock_sets: HashMap<(usize, usize), BTreeMap<String, Trace>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if f.in_tests {
                continue;
            }
            let acqs = acquisitions(file, f, &registry);
            let mut set = BTreeMap::new();
            for a in &acqs {
                set.entry(a.lock.clone()).or_insert_with(|| {
                    vec![format!(
                        "{}:{}: `{}` acquired in {}",
                        file.rel_path,
                        a.line,
                        a.lock,
                        index.label((fi, gi))
                    )]
                });
            }
            direct.insert((fi, gi), acqs);
            lock_sets.insert((fi, gi), set);
        }
    }

    // fixpoint: fold callees' lock sets into callers'
    let mut calls: HashMap<(usize, usize), Vec<crate::graph::CallSite>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if f.in_tests {
                continue;
            }
            calls.insert((fi, gi), index.calls_in(fi, f));
        }
    }
    loop {
        let mut changed = false;
        let ids: Vec<(usize, usize)> = lock_sets.keys().copied().collect();
        for id in ids {
            let mut additions: Vec<(String, Trace)> = Vec::new();
            for c in &calls[&id] {
                for &t in &c.targets {
                    let Some(callee_set) = lock_sets.get(&t) else {
                        continue;
                    };
                    for (lock, trace) in callee_set {
                        if !lock_sets[&id].contains_key(lock)
                            && !additions.iter().any(|(l, _)| l == lock)
                        {
                            let mut tr = vec![format!(
                                "{}:{}: {} calls {}",
                                files[id.0].rel_path,
                                c.line,
                                index.label(id),
                                index.label(t)
                            )];
                            tr.extend(trace.iter().cloned());
                            additions.push((lock.clone(), tr));
                        }
                    }
                }
            }
            if !additions.is_empty() {
                let set = lock_sets.get_mut(&id).expect("id came from lock_sets");
                for (lock, tr) in additions {
                    set.insert(lock, tr);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // edges with witnesses
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), Trace> = BTreeMap::new();
    for (&id, acqs) in &direct {
        let file = &files[id.0];
        for (i, a) in acqs.iter().enumerate() {
            let held_from = vec![format!(
                "{}:{}: `{}` acquired in {}",
                file.rel_path,
                a.line,
                a.lock,
                index.label(id)
            )];
            // direct nesting inside the same function
            for b in acqs.iter().skip(i + 1) {
                if b.pos > a.hold_end {
                    continue;
                }
                if a.lock == b.lock {
                    if !a.indexed && !b.indexed {
                        findings.push(Finding {
                            file: file.rel_path.clone(),
                            line: b.line,
                            rule: "lock-order",
                            message: format!(
                                "self-deadlock: `{}` re-acquired while already held\n  {}\n  {}:{}: `{}` acquired again (still held)",
                                a.lock, held_from[0], file.rel_path, b.line, b.lock
                            ),
                        });
                    }
                    continue;
                }
                let mut w = held_from.clone();
                w.push(format!(
                    "{}:{}: `{}` acquired while `{}` held",
                    file.rel_path, b.line, b.lock, a.lock
                ));
                edges.entry((a.lock.clone(), b.lock.clone())).or_insert(w);
            }
            // locks taken by calls made while the guard is held
            for c in &calls[&id] {
                if c.tok <= a.pos || c.tok > a.hold_end {
                    continue;
                }
                for &t in &c.targets {
                    let Some(callee_set) = lock_sets.get(&t) else {
                        continue;
                    };
                    for (lock, trace) in callee_set {
                        if *lock == a.lock {
                            continue; // same instance re-entry is reported
                                      // by the callee's own self check
                        }
                        let mut w = held_from.clone();
                        w.push(format!(
                            "{}:{}: {} calls {} (guard `{}` still held)",
                            file.rel_path,
                            c.line,
                            index.label(id),
                            index.label(t),
                            a.lock
                        ));
                        w.extend(trace.iter().cloned());
                        edges.entry((a.lock.clone(), lock.clone())).or_insert(w);
                    }
                }
            }
        }
    }

    // canonical-order conformance
    for ((a, b), witness) in &edges {
        let (pa, pb) = (
            CANONICAL_LOCK_ORDER.iter().position(|l| l == a),
            CANONICAL_LOCK_ORDER.iter().position(|l| l == b),
        );
        if let (Some(pa), Some(pb)) = (pa, pb) {
            if pa >= pb {
                findings.push(finding_at(witness, "lock-order", format!(
                    "canonical-order violation: `{b}` (rank {pb}) acquired under `{a}` (rank {pa}); the declared hierarchy is {}\n{}",
                    CANONICAL_LOCK_ORDER.join(" < "),
                    witness.join("\n  ")
                )));
            }
        } else if pa.is_none() && pb.is_some() {
            findings.push(finding_at(witness, "lock-order", format!(
                "canonical-order violation: hierarchy lock `{b}` acquired under leaf lock `{a}` (leaves must not wrap hierarchy locks)\n{}",
                witness.join("\n  ")
            )));
        }
    }

    // cycles: DFS over the digraph, reporting each cycle once with every
    // edge's witness path
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in &nodes {
        let mut stack = vec![(*start, vec![(*start).clone()])];
        while let Some((node, path)) = stack.pop() {
            for ((a, b), _) in edges.range((node.clone(), String::new())..) {
                if a != node {
                    break;
                }
                if b == *start {
                    // canonical form: rotate so the smallest lock leads
                    let mut cyc = path.clone();
                    let min = cyc
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.as_str())
                        .map_or(0, |(i, _)| i);
                    cyc.rotate_left(min);
                    if reported.insert(cyc.clone()) {
                        let mut msg = format!("deadlock cycle: {} -> {}", path.join(" -> "), start);
                        for w in 0..path.len() {
                            let from = &path[w];
                            let to = if w + 1 < path.len() {
                                &path[w + 1]
                            } else {
                                start
                            };
                            if let Some(witness) = edges.get(&(from.clone(), to.clone())) {
                                msg.push_str(&format!(
                                    "\n  witness {from} -> {to}:\n    {}",
                                    witness.join("\n    ")
                                ));
                            }
                        }
                        let first = edges
                            .get(&(path[0].clone(), path.get(1).unwrap_or(start).clone()))
                            .cloned()
                            .unwrap_or_default();
                        findings.push(finding_at(&first, "lock-order", msg));
                    }
                } else if !path.contains(b) {
                    let mut p = path.clone();
                    p.push(b.clone());
                    stack.push((b, p));
                }
            }
        }
    }

    findings.sort_by(|x, y| (&x.file, x.line).cmp(&(&y.file, y.line)));
    findings.dedup();
    findings
}

/// Anchors a finding at the first witness line's `file:line`.
fn finding_at(witness: &[String], rule: &'static str, message: String) -> Finding {
    let (file, line) = witness
        .first()
        .and_then(|w| {
            let mut it = w.splitn(3, ':');
            let f = it.next()?.to_string();
            let l = it.next()?.parse().ok()?;
            Some((f, l))
        })
        .unwrap_or_else(|| ("<unknown>".to_string(), 0));
    Finding {
        file,
        line,
        rule,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::scan(p, s)).collect();
        check(&files)
    }

    const DEADLOCK: &str = r#"
        use std::sync::Mutex;
        pub struct S { a: Mutex<u32>, b: Mutex<u32> }
        impl S {
            pub fn ab(&self) -> u32 {
                let ga = self.a.lock().expect("a");
                let gb = self.b.lock().expect("b");
                *ga + *gb
            }
            pub fn ba(&self) -> u32 {
                let gb = self.b.lock().expect("b");
                let ga = self.a.lock().expect("a");
                *ga + *gb
            }
        }
    "#;

    #[test]
    fn ab_ba_cycle_reports_both_witness_paths() {
        let f = analyze(&[("crates/demo/src/lib.rs", DEADLOCK)]);
        let cycles: Vec<_> = f
            .iter()
            .filter(|f| f.message.starts_with("deadlock cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "{f:?}");
        let msg = &cycles[0].message;
        assert!(msg.contains("witness demo:a -> demo:b"), "{msg}");
        assert!(msg.contains("witness demo:b -> demo:a"), "{msg}");
        assert!(
            msg.contains("`demo:b` acquired while `demo:a` held"),
            "{msg}"
        );
        assert!(
            msg.contains("`demo:a` acquired while `demo:b` held"),
            "{msg}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
            use std::sync::Mutex;
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                pub fn ab(&self) -> u32 {
                    let ga = self.a.lock().expect("a");
                    let gb = self.b.lock().expect("b");
                    *ga + *gb
                }
                pub fn ab_again(&self) -> u32 {
                    let ga = self.a.lock().expect("a");
                    let gb = self.b.lock().expect("b");
                    *ga - *gb
                }
            }
        "#;
        assert!(analyze(&[("crates/demo/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn statement_temporaries_do_not_hold() {
        // guard dies at the `;` — the second lock is not nested
        let src = r#"
            use std::sync::Mutex;
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                pub fn seq(&self) {
                    *self.a.lock().expect("a") += 1;
                    *self.b.lock().expect("b") += 1;
                }
                pub fn seq_rev(&self) {
                    *self.b.lock().expect("b") += 1;
                    *self.a.lock().expect("a") += 1;
                }
            }
        "#;
        assert!(analyze(&[("crates/demo/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn cross_function_cycle_via_calls() {
        let src = r#"
            use std::sync::Mutex;
            pub struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn take_b(&self) -> u32 { *self.b.lock().expect("b") }
                fn take_a(&self) -> u32 { *self.a.lock().expect("a") }
                pub fn ab(&self) -> u32 {
                    let ga = self.a.lock().expect("a");
                    *ga + self.take_b()
                }
                pub fn ba(&self) -> u32 {
                    let gb = self.b.lock().expect("b");
                    *gb + self.take_a()
                }
            }
        "#;
        let f = analyze(&[("crates/demo/src/lib.rs", src)]);
        let cycle = f
            .iter()
            .find(|f| f.message.starts_with("deadlock cycle"))
            .expect("cycle found");
        assert!(
            cycle.message.contains("calls demo::S::take_b"),
            "{}",
            cycle.message
        );
    }

    #[test]
    fn self_deadlock_and_indexed_exemption() {
        let src = r#"
            use std::sync::Mutex;
            pub struct S { a: Mutex<u32> }
            impl S {
                pub fn nested(&self) -> u32 {
                    let g1 = self.a.lock().expect("a");
                    let g2 = self.a.lock().expect("a again");
                    *g1 + *g2
                }
            }
            pub fn per_element(v: &[Mutex<u32>]) -> u32 {
                let g1 = v[0].lock().expect("0");
                let g2 = v[1].lock().expect("1");
                *g1 + *g2
            }
        "#;
        let f = analyze(&[("crates/demo/src/lib.rs", src)]);
        let selfs: Vec<_> = f
            .iter()
            .filter(|f| f.message.starts_with("self-deadlock"))
            .collect();
        assert_eq!(
            selfs.len(),
            1,
            "indexed locks exempt, field locks not: {f:?}"
        );
    }

    #[test]
    fn canonical_order_violation_is_reported_without_a_cycle() {
        // schema:inner wrapping storage:pool inverts the declared hierarchy
        let schema = r#"
            use std::sync::Mutex;
            pub struct R { inner: Mutex<u32> }
            impl R {
                pub fn record(&self, p: &xseq_storage::P) {
                    let g = self.inner.lock().expect("inner");
                    p.touch();
                    let _ = *g;
                }
            }
        "#;
        let storage = r#"
            use std::sync::Mutex;
            pub struct P { pool: Mutex<u32> }
            impl P {
                pub fn touch(&self) { *self.pool.lock().expect("pool") += 1; }
            }
        "#;
        let f = analyze(&[
            ("crates/schema/src/lib.rs", schema),
            ("crates/storage/src/lib.rs", storage),
        ]);
        assert!(
            f.iter()
                .any(|f| f.message.contains("canonical-order violation")),
            "{f:?}"
        );
    }

    #[test]
    fn if_let_scrutinee_guard_dies_with_the_construct() {
        // the read guard in the `if let` scrutinee is dropped when the
        // construct ends (Rust 2021 temporary rules), so the write that
        // follows is NOT a self-deadlock — the classic read-then-upgrade
        // registry shape must stay clean
        let src = r#"
            use std::sync::RwLock;
            pub struct S { inner: RwLock<u32> }
            impl S {
                pub fn get_or_insert(&self) -> u32 {
                    if let Some(v) = self.inner.read().ok().map(|g| *g).filter(|v| *v != 0) {
                        return v;
                    }
                    let mut w = self.inner.write().expect("inner");
                    *w += 1;
                    *w
                }
            }
        "#;
        assert!(analyze(&[("crates/demo/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn sync_primitive_methods_do_not_resolve_into_the_call_graph() {
        // `recorder` here is a std Mutex — its `.lock()` must not resolve
        // to demo::Recorder::lock (a real method that takes demo:inner),
        // which would fabricate a demo:leaf -> demo:inner edge
        let src = r#"
            use std::sync::Mutex;
            pub struct Recorder { inner: Mutex<u32> }
            impl Recorder {
                pub fn lock(&self) -> u32 { *self.inner.lock().expect("inner") }
            }
            pub struct S { leaf: Mutex<u32>, recorder: Mutex<u32> }
            impl S {
                pub fn tick(&self) -> u32 {
                    let g = self.leaf.lock().expect("leaf");
                    *g + *self.recorder.lock().expect("recorder")
                }
            }
        "#;
        let f = analyze(&[("crates/demo/src/lib.rs", src)]);
        assert!(
            !f.iter().any(|f| f.message.contains("Recorder::lock")),
            "{f:?}"
        );
    }

    #[test]
    fn registry_finds_fields_locals_params_and_statics() {
        let src = r#"
            use std::sync::{Mutex, RwLock};
            static GLOBAL: Mutex<u32> = Mutex::new(0);
            pub struct S { field: RwLock<u32> }
            pub fn f(param: &Mutex<u8>) {
                let local: Vec<Mutex<u8>> = Vec::new();
                let _ = (param, local);
            }
        "#;
        let files = vec![SourceFile::scan("crates/demo/src/lib.rs", src)];
        let reg = lock_registry(&files);
        for name in ["demo:GLOBAL", "demo:field", "demo:param", "demo:local"] {
            assert!(reg.contains(name), "{name} in {reg:?}");
        }
    }
}
