//! The `xseq-check` repo lint pass: mechanical rules the compiler does not
//! enforce, run as `cargo xtask lint` (and in CI, plus as the first rule
//! group of `cargo xtask analyze`).
//!
//! Rules:
//!
//! 1. **unsafe-allowlist** — the `unsafe` keyword may appear only in the
//!    allowlisted modules ([`UNSAFE_ALLOWLIST`]); every other crate root
//!    must carry `#![forbid(unsafe_code)]`.
//! 2. **safety-comment** — every `unsafe` site (block or impl), even in
//!    allowlisted modules, must be preceded by a `SAFETY:` comment within
//!    the three lines above it (or carry one on the same line).
//! 3. **no-bare-unwrap** — no `.unwrap()` and no empty-message
//!    `.expect("")` outside `#[cfg(test)]` regions: library code must
//!    either propagate errors or document the panic with a message.
//! 4. **span-name-grammar** — string literals registered as telemetry
//!    names (`start_span`, `event`, `histogram`, `counter`, `gauge`) must
//!    match the `phase.name` grammar: dot-separated segments of
//!    `[a-z][a-z0-9_]*`.
//! 5. **no-thread-spawn** — `thread::spawn(` may appear only under
//!    `crates/exec/`: every other crate expresses parallelism through the
//!    `xseq-exec::Pool`, which keeps thread counts, scoping and the
//!    sequential fall-back in one audited place.  (Scoped spawns via
//!    `thread::scope` + `s.spawn` don't match and stay legal — they
//!    cannot leak past their scope.)
//! 6. **metric-family** — registry metric literals (`histogram`,
//!    `counter`, `gauge`) must additionally open with a family from
//!    [`METRIC_FAMILIES`], so the exported namespace (`memory.*`,
//!    `health.*`, `workload.*`, …) grows deliberately instead of one
//!    ad-hoc prefix per call site.  Span and event names are exempt —
//!    they never reach the Prometheus surface.
//! 7. **event-name-grammar** — flight-recorder event literals
//!    (`Event::new("…")`) follow the same `seg(.seg)*` grammar as span
//!    names, keeping the event taxonomy of DESIGN.md §13 mechanical.
//!
//! PR 3's `relaxed-annotation` rule graduated into the full
//! atomic-ordering audit ([`crate::atomics`], `cargo xtask analyze`),
//! which checks every ordering — not just `Relaxed` — against a declared
//! role.
//!
//! Since PR 8 the linter runs on the real token stream
//! ([`crate::lexer`] + [`crate::scan`]) instead of masked lines: rule
//! needles are token patterns, so string/comment contents can never match
//! by construction, and test-region exemption is the scanner's
//! `#[cfg(test)]`-to-EOF region.  Only the crate-root
//! `#![forbid(unsafe_code)]` check stays textual — it is an
//! exact-attribute presence test.

use crate::lexer::TokKind;
use crate::scan::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// Modules allowed to contain `unsafe` (each site still needs `SAFETY:`).
pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/telemetry/src/ring.rs"];

/// Crates whose roots may omit `#![forbid(unsafe_code)]` because an
/// allowlisted module inside them uses `unsafe`.
pub const UNSAFE_CRATES: &[&str] = &["telemetry"];

/// How many lines above an `unsafe` site a `SAFETY:` comment may sit.
const SAFETY_WINDOW: u32 = 3;

/// The only directory allowed to call `thread::spawn` — the worker pool.
pub const THREAD_SPAWN_PREFIX: &str = "crates/exec/";

/// Registered metric families: the first dot-segment of every registry
/// metric literal must be one of these.  Extending the exported namespace
/// means extending this list in the same change — which is the point.
pub const METRIC_FAMILIES: &[&str] = &[
    "anomaly", "health", "index", "ingest", "memory", "query", "sequence", "storage", "update",
    "workload", "xml",
];

/// True when a registry metric name opens with a registered family.
fn metric_family_ok(name: &str) -> bool {
    name.split('.')
        .next()
        .is_some_and(|fam| METRIC_FAMILIES.contains(&fam))
}

/// One lint/analysis violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier (e.g. `no-bare-unwrap`).
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// True when `name` matches the telemetry grammar `seg(.seg)*` with
/// `seg = [a-z][a-z0-9_]*`.
fn valid_span_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            let mut chars = seg.chars();
            matches!(chars.next(), Some('a'..='z'))
                && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
        })
}

/// The contents of a plain `"…"` literal token, if it is one.
fn str_contents(file: &SourceFile, ix: usize) -> Option<&str> {
    if file.tokens[ix].kind != TokKind::Str {
        return None;
    }
    let text = file.text(ix);
    text.strip_prefix('"').and_then(|t| t.strip_suffix('"'))
}

/// Lints one file's source.  `rel_path` is the repo-relative path used in
/// findings and for allowlist decisions.  Test-facing convenience over
/// [`lint_source`].
#[cfg_attr(not(test), allow(dead_code))]
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Finding> {
    lint_source(&SourceFile::scan(rel_path, source))
}

/// Token-stream lint over an already-scanned file.
pub fn lint_source(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let code: Vec<usize> = crate::lexer::code_tokens(&file.tokens)
        .map(|(i, _)| i)
        .collect();
    let unsafe_allowed = UNSAFE_ALLOWLIST.contains(&file.rel_path.as_str());

    // (method, is a registry metric — spans/events skip the family rule,
    //  needs a leading dot — `event` is too generic for a bare match)
    let name_sinks: &[(&str, bool, bool)] = &[
        ("start_span", false, false),
        ("event", false, true),
        ("histogram", true, false),
        ("counter", true, false),
        ("gauge", true, false),
    ];

    for (k, &ix) in code.iter().enumerate() {
        let text = file.text(ix);
        let line = file.tokens[ix].line;
        let in_tests = file.in_tests(ix);
        let push = |findings: &mut Vec<Finding>, rule: &'static str, message: String| {
            findings.push(Finding {
                file: file.rel_path.clone(),
                line,
                rule,
                message,
            });
        };

        // Rules 1 + 2: unsafe allowlist and SAFETY: comments (tests too —
        // unsound test code is still unsound).
        if text == "unsafe" && file.tokens[ix].kind == TokKind::Ident {
            if !unsafe_allowed {
                push(
                    &mut findings,
                    "unsafe-allowlist",
                    format!(
                        "`unsafe` outside the allowlisted modules ({})",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                );
            }
            if !file.has_annotation(line, SAFETY_WINDOW, "SAFETY:") {
                push(
                    &mut findings,
                    "safety-comment",
                    format!("`unsafe` without a SAFETY: comment within {SAFETY_WINDOW} lines"),
                );
            }
        }

        if in_tests {
            continue;
        }

        // Rule 3: bare unwrap / empty expect.
        if text == "."
            && code.get(k + 2).is_some_and(|&p| file.text(p) == "(")
            && file.text(code[k + 1]) == "unwrap"
            && code.get(k + 3).is_some_and(|&p| file.text(p) == ")")
        {
            push(
                &mut findings,
                "no-bare-unwrap",
                ".unwrap() outside #[cfg(test)]; propagate or .expect(\"why\")".into(),
            );
        }
        if text == "."
            && code.get(k + 2).is_some_and(|&p| file.text(p) == "(")
            && file.text(code[k + 1]) == "expect"
            && code
                .get(k + 3)
                .and_then(|&p| str_contents(file, p))
                .is_some_and(str::is_empty)
        {
            push(
                &mut findings,
                "no-bare-unwrap",
                "empty .expect(\"\") outside #[cfg(test)]; say why it cannot fail".into(),
            );
        }

        // Rules 4 + 6: telemetry name grammar and metric families.
        if file.tokens[ix].kind == TokKind::Ident {
            if let Some(&(_, is_metric, needs_dot)) = name_sinks.iter().find(|(m, _, _)| *m == text)
            {
                let dotted = k > 0 && file.text(code[k - 1]) == ".";
                let name = (!needs_dot || dotted)
                    .then(|| code.get(k + 1).zip(code.get(k + 2)))
                    .flatten()
                    .filter(|(&p, _)| file.text(p) == "(")
                    .and_then(|(_, &a)| str_contents(file, a));
                if let Some(name) = name {
                    if !valid_span_name(name) {
                        push(
                            &mut findings,
                            "span-name-grammar",
                            format!(
                                "telemetry name {name:?} violates `seg(.seg)*` with \
                                 seg = [a-z][a-z0-9_]*"
                            ),
                        );
                    } else if is_metric && !metric_family_ok(name) {
                        push(
                            &mut findings,
                            "metric-family",
                            format!(
                                "metric name {name:?} opens a family outside the registered \
                                 set ({}); extend METRIC_FAMILIES deliberately",
                                METRIC_FAMILIES.join(", ")
                            ),
                        );
                    }
                }
            }
        }

        // Rule 7: flight-recorder event literals follow the span grammar.
        if text == "Event"
            && k + 5 < code.len()
            && file.text(code[k + 1]) == ":"
            && file.text(code[k + 2]) == ":"
            && file.text(code[k + 3]) == "new"
            && file.text(code[k + 4]) == "("
        {
            if let Some(name) = str_contents(file, code[k + 5]) {
                if !valid_span_name(name) {
                    push(
                        &mut findings,
                        "event-name-grammar",
                        format!(
                            "event name {name:?} violates `seg(.seg)*` with \
                             seg = [a-z][a-z0-9_]*"
                        ),
                    );
                }
            }
        }

        // Rule 5: threads are spawned only by the exec worker pool.
        if text == "thread"
            && !file.rel_path.starts_with(THREAD_SPAWN_PREFIX)
            && k + 4 < code.len()
            && file.text(code[k + 1]) == ":"
            && file.text(code[k + 2]) == ":"
            && file.text(code[k + 3]) == "spawn"
            && file.text(code[k + 4]) == "("
        {
            push(
                &mut findings,
                "no-thread-spawn",
                format!(
                    "thread::spawn outside {THREAD_SPAWN_PREFIX}; go through \
                     xseq_exec::Pool (or a std::thread::scope) instead"
                ),
            );
        }
    }
    findings
}

/// Walks `crates/*/src` under `root` and scans every `.rs` file — the
/// shared corpus for `lint` and the `analyze` passes.
pub fn scan_repo(root: &Path) -> Result<Vec<SourceFile>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut out = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source =
                std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            out.push(SourceFile::scan(&rel, &source));
        }
    }
    Ok(out)
}

/// Crate-root `#![forbid(unsafe_code)]` presence check over a scanned
/// corpus (textual: it is an exact-attribute test, not a token pattern).
pub fn forbid_findings(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let is_root =
            file.rel_path.ends_with("/src/lib.rs") || file.rel_path.ends_with("/src/main.rs");
        if !is_root || UNSAFE_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        if !file.src.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                file: file.rel_path.clone(),
                line: 1,
                rule: "unsafe-allowlist",
                message: "crate root of an unsafe-free crate must declare \
                          #![forbid(unsafe_code)]"
                    .into(),
            });
        }
    }
    findings
}

/// Lints the whole repo: every `crates/*/src/**.rs` plus the crate-root
/// forbid check.
pub fn lint_repo(root: &Path) -> Result<Vec<Finding>, String> {
    let files = scan_repo(root)?;
    let mut findings: Vec<Finding> = files.iter().flat_map(lint_source).collect();
    findings.extend(forbid_findings(&files));
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BAD_UNSAFE: &str = include_str!("../fixtures/bad_unsafe.rs");
    const BAD_UNWRAP: &str = include_str!("../fixtures/bad_unwrap.rs");
    const BAD_SPAN: &str = include_str!("../fixtures/bad_span_name.rs");
    const BAD_FAMILY: &str = include_str!("../fixtures/bad_metric_family.rs");
    const BAD_EVENT: &str = include_str!("../fixtures/bad_event_name.rs");
    const BAD_SPAWN: &str = include_str!("../fixtures/bad_thread_spawn.rs");
    const GOOD: &str = include_str!("../fixtures/good_clean.rs");

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn bad_unsafe_fixture_fails_both_unsafe_rules() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_UNSAFE);
        assert!(rules(&f).contains(&"unsafe-allowlist"), "{f:?}");
        assert!(rules(&f).contains(&"safety-comment"), "{f:?}");
        // The allowlisted path drops the allowlist finding but still wants
        // the SAFETY: comment.
        let f = lint_file("crates/telemetry/src/ring.rs", BAD_UNSAFE);
        assert!(!rules(&f).contains(&"unsafe-allowlist"), "{f:?}");
        assert!(rules(&f).contains(&"safety-comment"), "{f:?}");
    }

    #[test]
    fn bad_unwrap_fixture_fails_only_outside_tests() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_UNWRAP);
        let unwraps: Vec<_> = f.iter().filter(|f| f.rule == "no-bare-unwrap").collect();
        assert_eq!(unwraps.len(), 2, "{f:?}"); // one .unwrap(), one .expect("")
                                               // fixture's test module contains .unwrap() that must NOT be flagged
        assert!(unwraps.iter().all(|f| f.line < 20), "{f:?}");
    }

    #[test]
    fn bad_span_name_fixture_fails_grammar() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_SPAN);
        let spans: Vec<_> = f.iter().filter(|f| f.rule == "span-name-grammar").collect();
        assert_eq!(spans.len(), 3, "{f:?}");
    }

    #[test]
    fn bad_metric_family_fixture_fails_outside_registered_families() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_FAMILY);
        let fams: Vec<_> = f.iter().filter(|f| f.rule == "metric-family").collect();
        // exactly the off-family counter and gauge: the span name and the
        // workload.* histogram must not fire
        assert_eq!(fams.len(), 2, "{f:?}");
        assert!(!rules(&f).contains(&"span-name-grammar"), "{f:?}");
        // a grammar violation reports once, not once per rule
        let f = lint_file(
            "crates/demo/src/lib.rs",
            "fn f(t: &T) { t.gauge(\"Bad.Name\"); }\n",
        );
        assert_eq!(rules(&f), vec!["span-name-grammar"], "{f:?}");
        // the observability families of DESIGN.md §12 are registered
        for fam in ["memory", "health", "workload"] {
            assert!(METRIC_FAMILIES.contains(&fam), "{fam}");
        }
    }

    #[test]
    fn bad_event_name_fixture_fails_grammar() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_EVENT);
        let events: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "event-name-grammar")
            .collect();
        // exactly the uppercase and empty-segment literals: the good names,
        // the doc comment, the string payload and the test module must not
        // fire
        assert_eq!(events.len(), 2, "{f:?}");
        assert!(events.iter().all(|f| f.line < 10), "{f:?}");
        assert_eq!(rules(&f), vec!["event-name-grammar", "event-name-grammar"]);
    }

    #[test]
    fn bad_thread_spawn_fixture_fails_outside_exec() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_SPAWN);
        let spawns: Vec<_> = f.iter().filter(|f| f.rule == "no-thread-spawn").collect();
        // exactly the detached spawn: the scoped s.spawn, the string, the
        // comment and the test module must not fire
        assert_eq!(spawns.len(), 1, "{f:?}");
        assert_eq!(spawns[0].line, 8, "{f:?}");
        // the worker pool itself is allowed to spawn
        let f = lint_file("crates/exec/src/lib.rs", BAD_SPAWN);
        assert!(!rules(&f).contains(&"no-thread-spawn"), "{f:?}");
    }

    #[test]
    fn good_fixture_is_clean() {
        let f = lint_file("crates/demo/src/lib.rs", GOOD);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn span_name_grammar() {
        for good in [
            "index.search",
            "a",
            "xml.parse",
            "storage.pool.hits",
            "a_b.c9",
        ] {
            assert!(valid_span_name(good), "{good}");
        }
        for bad in ["", "Index.search", "a..b", "a.", ".a", "a-b", "9a", "a.B"] {
            assert!(!valid_span_name(bad), "{bad}");
        }
    }

    #[test]
    fn strings_and_comments_never_match_rule_needles() {
        let src = r##"
fn f() {
    let _ = "contains .unwrap() and unsafe and thread::spawn(";
    // .unwrap() in a comment is fine, as is unsafe
    /* block with .expect("") too */
    let _c = '"'; // a quote char literal must not open a string
    let _ = g(".unwrap()");
    let _raw = r#"unsafe .unwrap() thread::spawn("#;
}
"##;
        assert!(lint_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn delta_module_is_covered_and_obeys_the_rules() {
        // The update overlay (DESIGN.md §11) lives under the normal
        // crates/*/src walk; this pins that the walk actually reaches it,
        // so the telemetry-name-grammar and no-thread-spawn rules keep
        // applying to the delta trie as it grows.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let delta = root.join("crates/index/src/delta.rs");
        let source = std::fs::read_to_string(&delta).expect("delta module exists");
        assert!(lint_file("crates/index/src/delta.rs", &source).is_empty());
        // A grammar violation in it would be reported, not skipped (the
        // poison is prepended — the module ends in `#[cfg(test)]`, where
        // the rules relax).
        let poisoned = format!(
            "fn bad(r: &xseq_telemetry::MetricsRegistry) {{ r.gauge(\"Index.Delta\"); }}\n{source}"
        );
        assert!(lint_file("crates/index/src/delta.rs", &poisoned)
            .iter()
            .any(|f| f.rule == "span-name-grammar"));
        // And a detached spawn would be too (the overlay must express
        // parallelism through the exec pool).
        let spawned = format!("fn worse() {{ std::thread::spawn(|| ()); }}\n{source}");
        assert!(lint_file("crates/index/src/delta.rs", &spawned)
            .iter()
            .any(|f| f.rule == "no-thread-spawn"));
    }

    #[test]
    fn whole_repo_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_repo(&root).expect("repo walk succeeds");
        assert!(
            findings.is_empty(),
            "repo lint must be clean:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
