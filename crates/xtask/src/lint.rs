//! The `xseq-check` repo lint pass: mechanical rules the compiler does not
//! enforce, run as `cargo xtask lint` (and in CI).
//!
//! Rules:
//!
//! 1. **unsafe-allowlist** — the `unsafe` keyword may appear only in the
//!    allowlisted modules ([`UNSAFE_ALLOWLIST`]); every other crate root
//!    must carry `#![forbid(unsafe_code)]`.
//! 2. **safety-comment** — every `unsafe` site (block or impl), even in
//!    allowlisted modules, must be preceded by a `SAFETY:` comment within
//!    the three lines above it (or carry one on the same line).
//! 3. **no-bare-unwrap** — no `.unwrap()` and no empty-message
//!    `.expect("")` outside `#[cfg(test)]` regions: library code must
//!    either propagate errors or document the panic with a message.
//! 4. **span-name-grammar** — string literals registered as telemetry
//!    names (`start_span`, `event`, `histogram`, `counter`, `gauge`) must
//!    match the `phase.name` grammar: dot-separated segments of
//!    `[a-z][a-z0-9_]*`.
//! 5. **relaxed-annotation** — `Ordering::Relaxed` may only appear on
//!    lines annotated (same line or within the six lines above) with a
//!    comment containing `relaxed`, stating why no stronger ordering is
//!    needed.
//! 6. **no-thread-spawn** — `thread::spawn(` may appear only under
//!    `crates/exec/`: every other crate expresses parallelism through the
//!    `xseq-exec::Pool`, which keeps thread counts, scoping and the
//!    sequential fall-back in one audited place.  (Scoped spawns via
//!    `thread::scope` + `s.spawn` don't match and stay legal — they
//!    cannot leak past their scope.)
//! 7. **metric-family** — registry metric literals (`histogram`,
//!    `counter`, `gauge`) must additionally open with a family from
//!    [`METRIC_FAMILIES`], so the exported namespace (`memory.*`,
//!    `health.*`, `workload.*`, …) grows deliberately instead of one
//!    ad-hoc prefix per call site.  Span and event names are exempt —
//!    they never reach the Prometheus surface.
//! 8. **event-name-grammar** — flight-recorder event literals
//!    (`Event::new("…")`) follow the same `seg(.seg)*` grammar as span
//!    names, keeping the event taxonomy of DESIGN.md §13 mechanical.
//!
//! The linter is text-based: each file is masked (string-literal and
//! comment *contents* blanked, delimiters kept, byte offsets preserved) so
//! rule needles never match themselves inside strings or docs.  Test
//! regions — everything from the first `#[cfg(test)]` line to the end of
//! the file — are exempt from rules 3–6.

use std::fmt;
use std::path::{Path, PathBuf};

/// Modules allowed to contain `unsafe` (each site still needs `SAFETY:`).
pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/telemetry/src/ring.rs"];

/// Crates whose roots may omit `#![forbid(unsafe_code)]` because an
/// allowlisted module inside them uses `unsafe`.
pub const UNSAFE_CRATES: &[&str] = &["telemetry"];

/// How many lines above an `unsafe` site a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 3;

/// How many lines above an `Ordering::Relaxed` a `relaxed` comment may sit.
const RELAXED_WINDOW: usize = 6;

/// The only directory allowed to call `thread::spawn` — the worker pool.
pub const THREAD_SPAWN_PREFIX: &str = "crates/exec/";

/// Registered metric families: the first dot-segment of every registry
/// metric literal must be one of these.  Extending the exported namespace
/// means extending this list in the same change — which is the point.
pub const METRIC_FAMILIES: &[&str] = &[
    "anomaly", "health", "index", "ingest", "memory", "query", "sequence", "storage", "update",
    "workload", "xml",
];

/// True when a registry metric name opens with a registered family.
fn metric_family_ok(name: &str) -> bool {
    name.split('.')
        .next()
        .is_some_and(|fam| METRIC_FAMILIES.contains(&fam))
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `no-bare-unwrap`).
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A masked copy of the source: string-literal and comment contents are
/// blanked (delimiters kept), with byte lengths preserved so columns line
/// up with the raw text.  `comment_start[i]` is the byte column where a
/// comment begins on line `i` (`usize::MAX` when none).
struct Masked {
    lines: Vec<String>,
    comment_start: Vec<usize>,
}

fn mask_source(source: &str) -> Masked {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        Str,
        RawStr(usize),
        Block(usize),
        Line,
    }
    let mut st = St::Code;
    let mut lines = Vec::new();
    let mut comment_start = Vec::new();
    for raw in source.lines() {
        let b = raw.as_bytes();
        let mut out = Vec::with_capacity(b.len());
        let mut cstart = usize::MAX;
        if st == St::Line {
            st = St::Code;
        }
        let mut i = 0;
        while i < b.len() {
            match st {
                St::Code => {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                        st = St::Line;
                        cstart = cstart.min(i);
                        out.extend_from_slice(b"//");
                        i += 2;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        st = St::Block(1);
                        cstart = cstart.min(i);
                        out.extend_from_slice(b"/*");
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Str;
                        out.push(b'"');
                        i += 1;
                    } else if b[i] == b'r'
                        && i + 1 < b.len()
                        && (b[i + 1] == b'"' || b[i + 1] == b'#')
                        && !matches!(i.checked_sub(1).map(|p| b[p]), Some(c) if c.is_ascii_alphanumeric() || c == b'_')
                    {
                        // raw string: r"..." or r#"..."# (any # count)
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            st = St::RawStr(hashes);
                            out.resize(out.len() + (j - i + 1), b' ');
                            i = j + 1;
                        } else {
                            out.push(b[i]);
                            i += 1;
                        }
                    } else if b[i] == b'\'' {
                        // char literal ('x', '\n', '\u{..}') vs lifetime
                        let rest = &b[i + 1..];
                        let close = if rest.first() == Some(&b'\\') {
                            rest.iter().skip(1).position(|&c| c == b'\'').map(|p| p + 1)
                        } else if rest.len() >= 2 && rest[1] == b'\'' && rest[0] != b'\'' {
                            Some(1)
                        } else {
                            None
                        };
                        match close {
                            Some(p) => {
                                // blank the contents, keep the quotes
                                out.push(b'\'');
                                out.resize(out.len() + p, b' ');
                                out.push(b'\'');
                                i += p + 2;
                            }
                            None => {
                                out.push(b'\'');
                                i += 1;
                            }
                        }
                    } else {
                        out.push(b[i]);
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Code;
                        out.push(b'"');
                        i += 1;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if b[i] == b'"'
                        && b[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes
                    {
                        st = St::Code;
                        out.resize(out.len() + hashes + 1, b' ');
                        i += hashes + 1;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                St::Block(depth) => {
                    cstart = cstart.min(i);
                    if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        st = St::Block(depth + 1);
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                St::Line => {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
        if matches!(st, St::Block(_)) && cstart == usize::MAX {
            cstart = 0;
        }
        // Unterminated single-line strings cannot occur in valid Rust;
        // reset to avoid poisoning the rest of the file.
        if st == St::Str {
            st = St::Code;
        }
        lines.push(String::from_utf8(out).expect("mask preserves utf-8 boundaries"));
        comment_start.push(cstart);
    }
    Masked {
        lines,
        comment_start,
    }
}

/// True when `name` matches the telemetry grammar `seg(.seg)*` with
/// `seg = [a-z][a-z0-9_]*`.
fn valid_span_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            let mut chars = seg.chars();
            matches!(chars.next(), Some('a'..='z'))
                && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
        })
}

/// True when the masked line has a code-position occurrence of `unsafe`.
fn has_unsafe_token(masked: &str) -> bool {
    let b = masked.as_bytes();
    let mut from = 0;
    while let Some(p) = masked[from..].find("unsafe") {
        let at = from + p;
        let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let end = at + "unsafe".len();
        let after_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Lints one file's source.  `rel_path` is the repo-relative path used in
/// findings and for allowlist decisions.
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let masked = mask_source(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let unsafe_allowed = UNSAFE_ALLOWLIST.contains(&rel_path);
    let test_start = raw_lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(raw_lines.len());

    // (needle, is a registry metric — spans/events skip the family rule)
    let span_needles = [
        ("start_span(\"", false),
        (".event(\"", false),
        ("histogram(\"", true),
        ("counter(\"", true),
        ("gauge(\"", true),
    ];

    for (i, m) in masked.lines.iter().enumerate() {
        let raw = raw_lines[i];
        let lineno = i + 1;
        let in_tests = i >= test_start;
        let code = match masked.comment_start[i] {
            usize::MAX => m.as_str(),
            c => &m[..c],
        };

        // Rule 1 + 2: unsafe allowlist and SAFETY: comments.
        if has_unsafe_token(code) {
            if !unsafe_allowed {
                findings.push(Finding {
                    file: rel_path.into(),
                    line: lineno,
                    rule: "unsafe-allowlist",
                    message: format!(
                        "`unsafe` outside the allowlisted modules ({})",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                });
            }
            let documented =
                (i.saturating_sub(SAFETY_WINDOW)..=i).any(|j| raw_lines[j].contains("SAFETY:"));
            if !documented {
                findings.push(Finding {
                    file: rel_path.into(),
                    line: lineno,
                    rule: "safety-comment",
                    message: format!(
                        "`unsafe` without a SAFETY: comment within {SAFETY_WINDOW} lines"
                    ),
                });
            }
        }

        if in_tests {
            continue;
        }

        // Rule 3: bare unwrap / empty expect.
        if code.contains(".unwrap()") {
            findings.push(Finding {
                file: rel_path.into(),
                line: lineno,
                rule: "no-bare-unwrap",
                message: ".unwrap() outside #[cfg(test)]; propagate or .expect(\"why\")".into(),
            });
        }
        if code.contains(".expect(\"\")") {
            findings.push(Finding {
                file: rel_path.into(),
                line: lineno,
                rule: "no-bare-unwrap",
                message: "empty .expect(\"\") outside #[cfg(test)]; say why it cannot fail".into(),
            });
        }

        // Rule 4: telemetry name grammar.  The masked line keeps the
        // delimiters and byte offsets, so the literal can be read back out
        // of the raw line at the same positions.
        for (needle, is_metric) in span_needles {
            let mut from = 0;
            while let Some(p) = code[from..].find(needle) {
                let open = from + p + needle.len() - 1; // the opening quote
                if let Some(q) = m[open + 1..].find('"') {
                    let close = open + 1 + q;
                    let name = &raw[open + 1..close];
                    if !valid_span_name(name) {
                        findings.push(Finding {
                            file: rel_path.into(),
                            line: lineno,
                            rule: "span-name-grammar",
                            message: format!(
                                "telemetry name {name:?} violates `seg(.seg)*` with \
                                 seg = [a-z][a-z0-9_]*"
                            ),
                        });
                    } else if is_metric && !metric_family_ok(name) {
                        findings.push(Finding {
                            file: rel_path.into(),
                            line: lineno,
                            rule: "metric-family",
                            message: format!(
                                "metric name {name:?} opens a family outside the registered \
                                 set ({}); extend METRIC_FAMILIES deliberately",
                                METRIC_FAMILIES.join(", ")
                            ),
                        });
                    }
                    from = close;
                } else {
                    break;
                }
            }
        }

        // Rule 8: flight-recorder event literals follow the span grammar.
        {
            let needle = "Event::new(\"";
            let mut from = 0;
            while let Some(p) = code[from..].find(needle) {
                let open = from + p + needle.len() - 1; // the opening quote
                if let Some(q) = m[open + 1..].find('"') {
                    let close = open + 1 + q;
                    let name = &raw[open + 1..close];
                    if !valid_span_name(name) {
                        findings.push(Finding {
                            file: rel_path.into(),
                            line: lineno,
                            rule: "event-name-grammar",
                            message: format!(
                                "event name {name:?} violates `seg(.seg)*` with \
                                 seg = [a-z][a-z0-9_]*"
                            ),
                        });
                    }
                    from = close;
                } else {
                    break;
                }
            }
        }

        // Rule 5: Relaxed ordering must be annotated.
        if code.contains("Ordering::Relaxed") {
            let annotated = (i.saturating_sub(RELAXED_WINDOW)..=i).any(|j| {
                let l = raw_lines[j];
                match l.find("//") {
                    Some(c) => l[c..].to_ascii_lowercase().contains("relaxed"),
                    None => false,
                }
            });
            if !annotated {
                findings.push(Finding {
                    file: rel_path.into(),
                    line: lineno,
                    rule: "relaxed-annotation",
                    message: format!(
                        "Ordering::Relaxed without a `relaxed` comment within \
                         {RELAXED_WINDOW} lines explaining why it suffices"
                    ),
                });
            }
        }

        // Rule 6: threads are spawned only by the exec worker pool.
        if code.contains("thread::spawn(") && !rel_path.starts_with(THREAD_SPAWN_PREFIX) {
            findings.push(Finding {
                file: rel_path.into(),
                line: lineno,
                rule: "no-thread-spawn",
                message: format!(
                    "thread::spawn outside {THREAD_SPAWN_PREFIX}; go through \
                     xseq_exec::Pool (or a std::thread::scope) instead"
                ),
            });
        }
    }
    findings
}

/// Walks `crates/*/src` under `root`, linting every `.rs` file, and checks
/// each crate root for `#![forbid(unsafe_code)]` (unless the crate is in
/// [`UNSAFE_CRATES`]).
pub fn lint_repo(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source =
                std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            findings.extend(lint_file(&rel, &source));
        }
        // Crate-root forbid check.
        if !UNSAFE_CRATES.contains(&crate_name.as_str()) {
            for root_file in ["lib.rs", "main.rs"] {
                let path = src.join(root_file);
                if let Ok(source) = std::fs::read_to_string(&path) {
                    if !source.contains("#![forbid(unsafe_code)]") {
                        let rel = path
                            .strip_prefix(root)
                            .unwrap_or(&path)
                            .to_string_lossy()
                            .replace('\\', "/");
                        findings.push(Finding {
                            file: rel,
                            line: 1,
                            rule: "unsafe-allowlist",
                            message: "crate root of an unsafe-free crate must declare \
                                      #![forbid(unsafe_code)]"
                                .into(),
                        });
                    }
                }
            }
        }
    }
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BAD_UNSAFE: &str = include_str!("../fixtures/bad_unsafe.rs");
    const BAD_UNWRAP: &str = include_str!("../fixtures/bad_unwrap.rs");
    const BAD_SPAN: &str = include_str!("../fixtures/bad_span_name.rs");
    const BAD_FAMILY: &str = include_str!("../fixtures/bad_metric_family.rs");
    const BAD_RELAXED: &str = include_str!("../fixtures/bad_relaxed.rs");
    const BAD_EVENT: &str = include_str!("../fixtures/bad_event_name.rs");
    const BAD_SPAWN: &str = include_str!("../fixtures/bad_thread_spawn.rs");
    const GOOD: &str = include_str!("../fixtures/good_clean.rs");

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn bad_unsafe_fixture_fails_both_unsafe_rules() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_UNSAFE);
        assert!(rules(&f).contains(&"unsafe-allowlist"), "{f:?}");
        assert!(rules(&f).contains(&"safety-comment"), "{f:?}");
        // The allowlisted path drops the allowlist finding but still wants
        // the SAFETY: comment.
        let f = lint_file("crates/telemetry/src/ring.rs", BAD_UNSAFE);
        assert!(!rules(&f).contains(&"unsafe-allowlist"), "{f:?}");
        assert!(rules(&f).contains(&"safety-comment"), "{f:?}");
    }

    #[test]
    fn bad_unwrap_fixture_fails_only_outside_tests() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_UNWRAP);
        let unwraps: Vec<_> = f.iter().filter(|f| f.rule == "no-bare-unwrap").collect();
        assert_eq!(unwraps.len(), 2, "{f:?}"); // one .unwrap(), one .expect("")
                                               // fixture's test module contains .unwrap() that must NOT be flagged
        assert!(unwraps.iter().all(|f| f.line < 20), "{f:?}");
    }

    #[test]
    fn bad_span_name_fixture_fails_grammar() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_SPAN);
        let spans: Vec<_> = f.iter().filter(|f| f.rule == "span-name-grammar").collect();
        assert_eq!(spans.len(), 3, "{f:?}");
    }

    #[test]
    fn bad_metric_family_fixture_fails_outside_registered_families() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_FAMILY);
        let fams: Vec<_> = f.iter().filter(|f| f.rule == "metric-family").collect();
        // exactly the off-family counter and gauge: the span name and the
        // workload.* histogram must not fire
        assert_eq!(fams.len(), 2, "{f:?}");
        assert!(!rules(&f).contains(&"span-name-grammar"), "{f:?}");
        // a grammar violation reports once, not once per rule
        let f = lint_file(
            "crates/demo/src/lib.rs",
            "fn f(t: &T) { t.gauge(\"Bad.Name\"); }\n",
        );
        assert_eq!(rules(&f), vec!["span-name-grammar"], "{f:?}");
        // the observability families of DESIGN.md §12 are registered
        for fam in ["memory", "health", "workload"] {
            assert!(METRIC_FAMILIES.contains(&fam), "{fam}");
        }
    }

    #[test]
    fn bad_event_name_fixture_fails_grammar() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_EVENT);
        let events: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "event-name-grammar")
            .collect();
        // exactly the uppercase and empty-segment literals: the good names,
        // the doc comment, the string payload and the test module must not
        // fire
        assert_eq!(events.len(), 2, "{f:?}");
        assert!(events.iter().all(|f| f.line < 10), "{f:?}");
        assert_eq!(rules(&f), vec!["event-name-grammar", "event-name-grammar"]);
    }

    #[test]
    fn bad_relaxed_fixture_fails_annotation() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_RELAXED);
        assert_eq!(rules(&f), vec!["relaxed-annotation"], "{f:?}");
    }

    #[test]
    fn bad_thread_spawn_fixture_fails_outside_exec() {
        let f = lint_file("crates/demo/src/lib.rs", BAD_SPAWN);
        let spawns: Vec<_> = f.iter().filter(|f| f.rule == "no-thread-spawn").collect();
        // exactly the detached spawn: the scoped s.spawn, the string, the
        // comment and the test module must not fire
        assert_eq!(spawns.len(), 1, "{f:?}");
        assert_eq!(spawns[0].line, 8, "{f:?}");
        // the worker pool itself is allowed to spawn
        let f = lint_file("crates/exec/src/lib.rs", BAD_SPAWN);
        assert!(!rules(&f).contains(&"no-thread-spawn"), "{f:?}");
    }

    #[test]
    fn good_fixture_is_clean() {
        let f = lint_file("crates/demo/src/lib.rs", GOOD);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn span_name_grammar() {
        for good in [
            "index.search",
            "a",
            "xml.parse",
            "storage.pool.hits",
            "a_b.c9",
        ] {
            assert!(valid_span_name(good), "{good}");
        }
        for bad in ["", "Index.search", "a..b", "a.", ".a", "a-b", "9a", "a.B"] {
            assert!(!valid_span_name(bad), "{bad}");
        }
    }

    #[test]
    fn masking_ignores_strings_and_comments() {
        let src = r#"
fn f() {
    let _ = "contains .unwrap() and unsafe and Ordering::Relaxed";
    // .unwrap() in a comment is fine, as is unsafe
    /* block with .expect("") too */
    let _c = '"'; // a quote char literal must not open a string
    let _ = g(".unwrap()");
}
"#;
        assert!(lint_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn delta_module_is_covered_and_obeys_the_rules() {
        // The update overlay (DESIGN.md §11) lives under the normal
        // crates/*/src walk; this pins that the walk actually reaches it,
        // so the telemetry-name-grammar and no-thread-spawn rules keep
        // applying to the delta trie as it grows.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let delta = root.join("crates/index/src/delta.rs");
        let source = std::fs::read_to_string(&delta).expect("delta module exists");
        assert!(lint_file("crates/index/src/delta.rs", &source).is_empty());
        // A grammar violation in it would be reported, not skipped (the
        // poison is prepended — the module ends in `#[cfg(test)]`, where
        // the rules relax).
        let poisoned = format!(
            "fn bad(r: &xseq_telemetry::MetricsRegistry) {{ r.gauge(\"Index.Delta\"); }}\n{source}"
        );
        assert!(lint_file("crates/index/src/delta.rs", &poisoned)
            .iter()
            .any(|f| f.rule == "span-name-grammar"));
        // And a detached spawn would be too (the overlay must express
        // parallelism through the exec pool).
        let spawned = format!("fn worse() {{ std::thread::spawn(|| ()); }}\n{source}");
        assert!(lint_file("crates/index/src/delta.rs", &spawned)
            .iter()
            .any(|f| f.rule == "no-thread-spawn"));
    }

    #[test]
    fn whole_repo_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_repo(&root).expect("repo walk succeeds");
        assert!(
            findings.is_empty(),
            "repo lint must be clean:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
