//! Hot-path panic-freedom (`cargo xtask analyze`, rule `hot-path-panic`).
//!
//! The read path must not abort the process: a panic inside
//! `query_batch` takes down every in-flight query sharing the pool, and a
//! panic while a buffer-pool or recorder guard is held poisons the lock
//! for the rest of the process.  This pass closes the seed set from the
//! checked-in manifest (`crates/xtask/hotpath.txt`) over the
//! [`FunctionIndex`](crate::graph::FunctionIndex) call graph and flags, in
//! every reachable function:
//!
//! * `.unwrap()` / `.expect(…)`,
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` and the
//!   non-debug `assert*!` family (`debug_assert*!` compiles out of release
//!   builds and stays allowed),
//! * slice/array indexing `x[…]` (including range slicing),
//! * `/` and `%` with a non-literal divisor (integer division by zero).
//!
//! Each finding carries the *reachability path* from the seed, so the fix
//! site is obvious even when the panic lives three calls deep.  The escape
//! hatch is `// PANIC-FREE: <proof>` within [`PANIC_FREE_WINDOW`] lines of
//! the site (or of the `fn` line, which exempts the whole function); the
//! proof obligation is a one-line argument why the operation cannot fail —
//! e.g. "bucket_of() returns ≤ 64 and BUCKETS = 65".
//!
//! Resolution over-approximates (any same-named method may be the callee),
//! so the audited set is a superset of the truly reachable code — the safe
//! direction.  Harness crates ([`HARNESS_CRATES`]) are outside the audit:
//! they drive the engine from `main`, never from the query path.

use crate::graph::{FnId, FunctionIndex};
use crate::lexer::TokKind;
use crate::lint::Finding;
use crate::scan::SourceFile;
use std::collections::{HashMap, VecDeque};

/// Lines above a panic site (or `fn`) searched for `// PANIC-FREE:`.
pub const PANIC_FREE_WINDOW: u32 = 3;

/// Crates outside the hot-path audit: CLI/benchmark harnesses and this
/// analysis itself.
pub const HARNESS_CRATES: &[&str] = &["baselines", "bench", "datagen", "xtask"];

/// Repo-relative path of the seed manifest.
pub const HOTPATH_MANIFEST: &str = "crates/xtask/hotpath.txt";

/// Parses the manifest: one seed function name per line, `#` comments and
/// blank lines ignored.
pub fn parse_manifest(text: &str) -> Vec<String> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect()
}

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Runs the analysis: closes `seeds` over the call graph, then audits
/// every reachable function body.
pub fn check(files: &[SourceFile], seeds: &[String]) -> Vec<Finding> {
    let index = FunctionIndex::build(files);
    let audited = |id: FnId| {
        let file = index.file(id);
        !index.function(id).in_tests && !HARNESS_CRATES.contains(&file.crate_name.as_str())
    };

    let mut findings = Vec::new();

    // seed resolution (a stale manifest is itself a finding)
    let mut queue: VecDeque<FnId> = VecDeque::new();
    let mut parent: HashMap<FnId, Option<FnId>> = HashMap::new();
    for seed in seeds {
        let mut hits = index.candidates(seed, None);
        hits.retain(|&id| audited(id));
        if hits.is_empty() {
            findings.push(Finding {
                file: HOTPATH_MANIFEST.to_string(),
                line: 0,
                rule: "hot-path-panic",
                message: format!(
                    "hot-path seed `{seed}` matches no function in the workspace — update {HOTPATH_MANIFEST}"
                ),
            });
        }
        for id in hits {
            if parent.insert(id, None).is_none() {
                queue.push_back(id);
            }
        }
    }

    // BFS closure with parent pointers for diagnostics
    while let Some(id) = queue.pop_front() {
        for call in index.calls_in(id.0, index.function(id)) {
            for &t in &call.targets {
                if !audited(t) || parent.contains_key(&t) {
                    continue;
                }
                parent.insert(t, Some(id));
                queue.push_back(t);
            }
        }
    }

    let path_to = |mut id: FnId| -> String {
        let mut labels = vec![index.label(id)];
        while let Some(Some(p)) = parent.get(&id) {
            labels.push(index.label(*p));
            id = *p;
        }
        labels.reverse();
        labels.join(" -> ")
    };

    let mut reachable: Vec<FnId> = parent.keys().copied().collect();
    reachable.sort();
    for id in reachable {
        let file = index.file(id);
        let f = index.function(id);
        if file.has_annotation(f.line, PANIC_FREE_WINDOW, "PANIC-FREE:") {
            continue;
        }
        let body: Vec<usize> = file
            .body_tokens_of(f)
            .filter(|&ix| !file.tokens[ix].is_comment())
            .collect();
        let mut sites: Vec<(u32, String)> = Vec::new();
        for k in 0..body.len() {
            let text = file.text(body[k]);
            let line = file.tokens[body[k]].line;
            match text {
                "." if k + 2 < body.len()
                    && matches!(file.text(body[k + 1]), "unwrap" | "expect")
                    && file.text(body[k + 2]) == "(" =>
                {
                    sites.push((line, format!("`.{}(…)`", file.text(body[k + 1]))));
                }
                m if file.tokens[body[k]].kind == TokKind::Ident
                    && PANIC_MACROS.contains(&m)
                    && body.get(k + 1).is_some_and(|&nx| file.text(nx) == "!") =>
                {
                    sites.push((line, format!("`{m}!`")));
                }
                "[" if k > 0
                    && (file.tokens[body[k - 1]].kind == TokKind::Ident
                        || matches!(file.text(body[k - 1]), ")" | "]")) =>
                {
                    sites.push((line, "slice indexing `[…]`".to_string()));
                }
                "/" | "%"
                    if k > 0
                        && is_value_end(file, body[k - 1])
                        && !body.get(k + 1).is_some_and(|&nx| {
                            file.tokens[nx].kind == TokKind::Num
                                && file
                                    .text(nx)
                                    .chars()
                                    .any(|c| c.is_ascii_digit() && c != '0')
                        }) =>
                {
                    sites.push((line, format!("`{text}` with a non-literal divisor")));
                }
                _ => {}
            }
        }
        for (line, what) in sites {
            if file.has_annotation(line, PANIC_FREE_WINDOW, "PANIC-FREE:") {
                continue;
            }
            findings.push(Finding {
                file: file.rel_path.clone(),
                line,
                rule: "hot-path-panic",
                message: format!(
                    "{what} on the hot path (reachable via {}); use a checked alternative or annotate `// PANIC-FREE: <proof>`",
                    path_to(id)
                ),
            });
        }
    }

    findings.sort_by(|x, y| (&x.file, x.line).cmp(&(&y.file, y.line)));
    findings.dedup();
    findings
}

/// True when the token can end a value expression — the left operand of a
/// real division, as opposed to `&x / generic punctuation soup`.
fn is_value_end(file: &SourceFile, ix: usize) -> bool {
    match file.tokens[ix].kind {
        TokKind::Ident | TokKind::Num => true,
        TokKind::Punct => matches!(file.text(ix), ")" | "]"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str, seeds: &[&str]) -> Vec<Finding> {
        let files = vec![SourceFile::scan("crates/demo/src/lib.rs", src)];
        let seeds: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
        check(&files, &seeds)
    }

    #[test]
    fn unwrap_reachable_from_seed_is_flagged_with_path() {
        let src = r#"
            pub fn entry(v: &[u32]) -> u32 { middle(v) }
            fn middle(v: &[u32]) -> u32 { inner(v) }
            fn inner(v: &[u32]) -> u32 { *v.first().unwrap() }
        "#;
        let f = analyze(src, &["entry"]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message
                .contains("demo::entry -> demo::middle -> demo::inner"),
            "{f:?}"
        );
        assert_eq!(f[0].rule, "hot-path-panic");
    }

    #[test]
    fn unreachable_function_is_exempt() {
        let src = r#"
            pub fn entry(v: &[u32]) -> u32 { v.len() as u32 }
            pub fn cold(v: &[u32]) -> u32 { v[0] }
        "#;
        assert!(analyze(src, &["entry"]).is_empty());
    }

    #[test]
    fn annotations_exempt_site_and_function() {
        let src = r#"
            pub fn entry(v: &[u32]) -> u32 {
                // PANIC-FREE: caller guarantees v.len() >= 1 (checked in parse)
                let a = v[0];
                a + whole(v)
            }
            // PANIC-FREE: only called with the fixed-size header slice
            fn whole(v: &[u32]) -> u32 { v[1] + v[2] }
        "#;
        assert!(
            analyze(src, &["entry"]).is_empty(),
            "{:?}",
            analyze(src, &["entry"])
        );
    }

    #[test]
    fn indexing_macros_and_division_are_flagged() {
        let src = r#"
            pub fn entry(v: &[u32], n: u32) -> u32 {
                if v.is_empty() { panic!("empty") }
                let x = v[3];
                let y = x / n;
                let z = x / 2; // literal divisor: fine
                let w = x % 4; // literal divisor: fine
                y + z + w
            }
        "#;
        let f = analyze(src, &["entry"]);
        let whats: Vec<&str> = f
            .iter()
            .map(|f| f.message.split(" on the").next().unwrap())
            .collect();
        assert_eq!(
            whats,
            vec![
                "`panic!`",
                "slice indexing `[…]`",
                "`/` with a non-literal divisor"
            ],
            "{f:?}"
        );
    }

    #[test]
    fn debug_assert_and_attributes_are_not_flagged() {
        let src = r#"
            pub fn entry(v: &[u32]) -> u32 {
                debug_assert!(!v.is_empty());
                #[cfg(feature = "x")]
                let _flagged = ();
                let arr = [1u32, 2];
                let t: [u32; 2] = arr;
                t.iter().sum::<u32>() + v.len() as u32
            }
        "#;
        assert!(
            analyze(src, &["entry"]).is_empty(),
            "{:?}",
            analyze(src, &["entry"])
        );
    }

    #[test]
    fn stale_seed_is_a_finding() {
        let f = analyze("pub fn real() {}", &["ghost"]);
        assert_eq!(f.len(), 1);
        assert!(f[0]
            .message
            .contains("hot-path seed `ghost` matches no function"));
    }

    #[test]
    fn test_region_and_harness_crates_are_exempt() {
        let src = r#"
            pub fn entry(v: &[u32]) -> u32 { v.len() as u32 }
            #[cfg(test)]
            mod tests {
                fn entry_helper(v: &[u32]) -> u32 { v[0] }
            }
        "#;
        let bench = "pub fn entry(v: &[u32]) -> u32 { v[0] }";
        let files = vec![
            SourceFile::scan("crates/demo/src/lib.rs", src),
            SourceFile::scan("crates/bench/src/lib.rs", bench),
        ];
        assert!(check(&files, &["entry".to_string()]).is_empty());
    }

    #[test]
    fn manifest_parser_strips_comments() {
        let seeds = parse_manifest("# seeds\nquery_batch\n  absorb_segment # ingest\n\n");
        assert_eq!(seeds, vec!["query_batch", "absorb_segment"]);
    }
}
