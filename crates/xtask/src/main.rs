//! `cargo xtask` — repo automation (the cargo-xtask pattern: plain Rust
//! instead of shell, wired through the `.cargo/config.toml` alias).
//!
//! Subcommands:
//!
//! * `lint` (default) — the xseq-check lint pass: unsafe allowlist +
//!   SAFETY: comments, no bare `unwrap()`, telemetry-name grammar and
//!   metric families.  See `lint.rs` for the rules.
//! * `analyze [--json <path>]` — the token-aware static-analysis pass
//!   (DESIGN.md §14): the lint rules plus lock-order deadlock detection,
//!   the atomic-ordering audit, and hot-path panic-freedom.  Prints a
//!   per-rule timing table; `--json` writes the findings document CI
//!   uploads as an artifact.
//! * `promlint <file|->` — validate a Prometheus text-format exposition
//!   (as written by `Snapshot::to_prometheus`) with the dep-free linter
//!   from `xseq-telemetry`: TYPE declarations, name grammar, histogram
//!   bucket monotonicity.  CI scrapes the observability example's output
//!   through this.
//! * `diagcheck <dir>` — validate a diagnostics bundle (as written by
//!   `Database::diagnostics` / `repro --diag`): presence of every
//!   artifact, promlint over `metrics.prom`, JSON/JSONL well-formedness,
//!   collapsed-stack format, manifest provenance keys.
#![forbid(unsafe_code)]

mod analyze;
mod atomics;
mod diagcheck;
mod graph;
mod lexer;
mod lint;
mod lockorder;
mod panicfree;
mod scan;

use std::io::Read as _;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("lint") => run_lint(),
        Some("analyze") => run_analyze(&args[1..]),
        Some("promlint") => run_promlint(args.get(1).map(String::as_str)),
        Some("diagcheck") => run_diagcheck(args.get(1).map(String::as_str)),
        Some("help" | "--help" | "-h") => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n");
            usage();
            ExitCode::from(2)
        }
    }
}

fn run_promlint(path: Option<&str>) -> ExitCode {
    let (label, text) = match path {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("xtask promlint: stdin: {e}");
                return ExitCode::from(2);
            }
            ("<stdin>".to_string(), buf)
        }
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => (p.to_string(), t),
            Err(e) => {
                eprintln!("xtask promlint: {p}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let findings = xseq_telemetry::lint_prometheus(&text);
    if findings.is_empty() {
        let series = text
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .count();
        println!("xtask promlint: {label} clean ({series} series)");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        eprintln!("{label}: {f}");
    }
    eprintln!("xtask promlint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}

fn run_diagcheck(dir: Option<&str>) -> ExitCode {
    let Some(dir) = dir else {
        eprintln!("xtask diagcheck: missing bundle directory\n");
        usage();
        return ExitCode::from(2);
    };
    let path = Path::new(dir);
    if !path.is_dir() {
        eprintln!("xtask diagcheck: {dir}: not a directory");
        return ExitCode::from(2);
    }
    let findings = diagcheck::check_bundle(path);
    if findings.is_empty() {
        println!("xtask diagcheck: {dir} clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        eprintln!("{dir}/{f}");
    }
    eprintln!("xtask diagcheck: {} finding(s)", findings.len());
    ExitCode::FAILURE
}

fn run_lint() -> ExitCode {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    match lint::lint_repo(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask lint: {err}");
            ExitCode::from(2)
        }
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    let mut json_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("xtask analyze: --json needs a path\n");
                    usage();
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask analyze: unknown argument `{other}`\n");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = match analyze::analyze_repo(&root) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("xtask analyze: {err}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(path, analyze::to_json(&report)) {
            eprintln!("xtask analyze: {path}: {e}");
            return ExitCode::from(2);
        }
    }
    print!("{}", analyze::render(&report));
    if report.findings.is_empty() {
        println!("xtask analyze: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask analyze: {} finding(s)", report.findings.len());
        ExitCode::FAILURE
    }
}

fn usage() {
    println!(
        "usage: cargo xtask [lint | analyze [--json <path>] | promlint <file|-> | diagcheck <dir>]\n\n\
         subcommands:\n  \
         lint        run the xseq-check lint pass over crates/*/src (default)\n  \
         analyze     token-aware static analysis: lint + lock-order +\n              \
         atomic-ordering + hot-path panic-freedom (--json writes findings)\n  \
         promlint    validate a Prometheus text exposition (file or stdin)\n  \
         diagcheck   validate a diagnostics bundle directory\n  \
         help        show this message\n\n\
         exit codes: 0 clean, 1 findings, 2 usage or I/O error"
    );
}
