//! `cargo xtask` — repo automation (the cargo-xtask pattern: plain Rust
//! instead of shell, wired through the `.cargo/config.toml` alias).
//!
//! Subcommands:
//!
//! * `lint` (default) — the xseq-check lint pass: unsafe allowlist +
//!   SAFETY: comments, no bare `unwrap()`, telemetry-name grammar, and
//!   annotated `Ordering::Relaxed`.  See `lint.rs` for the rules.
#![forbid(unsafe_code)]

mod lint;

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("lint") => run_lint(),
        Some("help" | "--help" | "-h") => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n");
            usage();
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    match lint::lint_repo(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask lint: {err}");
            ExitCode::from(2)
        }
    }
}

fn usage() {
    println!(
        "usage: cargo xtask [lint]\n\n\
         subcommands:\n  \
         lint    run the xseq-check lint pass over crates/*/src (default)\n  \
         help    show this message\n\n\
         exit codes: 0 clean, 1 findings, 2 usage or I/O error"
    );
}
