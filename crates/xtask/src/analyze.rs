//! `cargo xtask analyze` — the token-aware static-analysis pass
//! (DESIGN.md §14).  Orchestrates four rule groups over one shared scan of
//! `crates/*/src`:
//!
//! * **lint** — the PR 3 style rules, ported to the token stream
//!   ([`crate::lint`]);
//! * **lock-order** — deadlock detection over the lock digraph
//!   ([`crate::lockorder`]);
//! * **atomic-ordering** — role annotations + publication pairing
//!   ([`crate::atomics`]);
//! * **hot-path-panic** — panic-freedom of everything reachable from the
//!   seed manifest ([`crate::panicfree`]).
//!
//! Output: a human table (per-rule finding counts and timings — the
//! timings are printed so a cost regression shows up in CI logs; the
//! budget is [`BUDGET_MS`]) and, with `--json`, a machine-readable
//! findings document for the CI artifact.

use crate::lint::{self, Finding};
use crate::scan::SourceFile;
use crate::{atomics, lockorder, panicfree};
use std::path::Path;
use std::time::Instant;

/// The whole pass must finish inside this budget on the repo (ISSUE 8);
/// the table prints actuals so CI logs show drift long before the limit.
pub const BUDGET_MS: f64 = 10_000.0;

/// One rule group's cost and yield.
#[derive(Debug)]
pub struct RuleTiming {
    pub name: &'static str,
    pub millis: f64,
    pub findings: usize,
}

/// The result of an analyze run.
#[derive(Debug)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// All findings, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Per-group timings in run order (`scan` first).
    pub timings: Vec<RuleTiming>,
    pub total_millis: f64,
}

fn millis(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

/// Runs every rule group over an already-scanned corpus — the I/O-free,
/// untimed core used by the fixture tests.
#[cfg_attr(not(test), allow(dead_code))]
pub fn analyze_files(files: &[SourceFile], seeds: &[String]) -> Vec<Finding> {
    let mut findings: Vec<Finding> = files.iter().flat_map(lint::lint_source).collect();
    findings.extend(lint::forbid_findings(files));
    findings.extend(lockorder::check(files));
    findings.extend(atomics::check(files));
    findings.extend(panicfree::check(files, seeds));
    findings.sort_by(|x, y| (&x.file, x.line).cmp(&(&y.file, y.line)));
    findings
}

/// Scans the repo under `root` and runs all rule groups, timed.
pub fn analyze_repo(root: &Path) -> Result<Report, String> {
    let t_total = Instant::now();
    let mut timings = Vec::new();
    let mut findings = Vec::new();

    let t = Instant::now();
    let files = lint::scan_repo(root)?;
    timings.push(RuleTiming {
        name: "scan",
        millis: millis(t),
        findings: 0,
    });

    let manifest_path = root.join(panicfree::HOTPATH_MANIFEST);
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let seeds = panicfree::parse_manifest(&manifest);

    type RuleGroup = (&'static str, Box<dyn Fn(&[SourceFile]) -> Vec<Finding>>);
    let groups: [RuleGroup; 4] = [
        (
            "lint",
            Box::new(|f: &[SourceFile]| {
                let mut v: Vec<Finding> = f.iter().flat_map(lint::lint_source).collect();
                v.extend(lint::forbid_findings(f));
                v
            }),
        ),
        ("lock-order", Box::new(lockorder::check)),
        ("atomic-ordering", Box::new(atomics::check)),
        (
            "hot-path-panic",
            Box::new(move |f: &[SourceFile]| panicfree::check(f, &seeds)),
        ),
    ];
    for (name, run) in groups {
        let t = Instant::now();
        let group = run(&files);
        timings.push(RuleTiming {
            name,
            millis: millis(t),
            findings: group.len(),
        });
        findings.extend(group);
    }

    findings.sort_by(|x, y| (&x.file, x.line).cmp(&(&y.file, y.line)));
    Ok(Report {
        files: files.len(),
        findings,
        timings,
        total_millis: millis(t_total),
    })
}

/// The human-readable table: per-rule counts and timings, then findings.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("rule              findings        ms\n");
    for t in &report.timings {
        out.push_str(&format!(
            "{:<18}{:>8}{:>10.1}\n",
            t.name, t.findings, t.millis
        ));
    }
    out.push_str(&format!(
        "{:<18}{:>8}{:>10.1}  (budget {:.0} ms, {} files)\n",
        "total",
        report.findings.len(),
        report.total_millis,
        BUDGET_MS,
        report.files
    ));
    if !report.findings.is_empty() {
        out.push('\n');
        for f in &report.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable findings document (uploaded as a CI artifact).
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files\": {},\n", report.files));
    out.push_str(&format!("  \"total_ms\": {:.1},\n", report.total_millis));
    out.push_str("  \"rules\": [\n");
    for (i, t) in report.timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ms\": {:.1}, \"findings\": {}}}{}\n",
            t.name,
            t.millis,
            t.findings,
            if i + 1 < report.timings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message),
            if i + 1 < report.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BAD_LOCK: &str = include_str!("../fixtures/bad_lock_cycle.rs");
    const GOOD_LOCK: &str = include_str!("../fixtures/good_lock_nested.rs");
    const BAD_RELEASE: &str = include_str!("../fixtures/bad_release_unpaired.rs");
    const GOOD_HANDOFF: &str = include_str!("../fixtures/good_handoff.rs");
    const BAD_HOTPATH: &str = include_str!("../fixtures/bad_hotpath_unwrap.rs");
    const GOOD_HOTPATH: &str = include_str!("../fixtures/good_hotpath_checked.rs");
    const BAD_ROLE: &str = include_str!("../fixtures/bad_ordering_role.rs");
    const BAD_HANDOFF: &str = include_str!("../fixtures/bad_relaxed_handoff.rs");
    const BAD_RELAXED: &str = include_str!("../fixtures/bad_relaxed.rs");
    const GOOD_CLEAN: &str = include_str!("../fixtures/good_clean.rs");

    fn fixture(src: &str) -> Vec<SourceFile> {
        vec![SourceFile::scan("crates/demo/src/lib.rs", src)]
    }

    fn seeds() -> Vec<String> {
        vec!["query_batch".to_string()]
    }

    #[test]
    fn bad_lock_cycle_reports_both_witness_paths() {
        let f = lockorder::check(&fixture(BAD_LOCK));
        let cycle = f
            .iter()
            .find(|f| f.message.starts_with("deadlock cycle"))
            .expect("cycle reported");
        assert_eq!(cycle.rule, "lock-order");
        assert!(
            cycle.message.contains("witness demo:alloc -> demo:free"),
            "{}",
            cycle.message
        );
        assert!(
            cycle.message.contains("witness demo:free -> demo:alloc"),
            "{}",
            cycle.message
        );
        // the two witness acquisition paths carry exact spans
        assert!(
            cycle.message.contains("crates/demo/src/lib.rs:13"),
            "{}",
            cycle.message
        );
        assert!(
            cycle.message.contains("crates/demo/src/lib.rs:21"),
            "{}",
            cycle.message
        );
    }

    #[test]
    fn good_lock_nested_is_clean() {
        assert!(lockorder::check(&fixture(GOOD_LOCK)).is_empty());
    }

    #[test]
    fn bad_release_unpaired_is_flagged_at_the_store() {
        let f = atomics::check(&fixture(BAD_RELEASE));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].rule, f[0].line), ("atomic-ordering", 14), "{f:?}");
        assert!(f[0].message.contains("mis-paired `Release`"), "{f:?}");
    }

    #[test]
    fn good_handoff_is_clean() {
        assert!(atomics::check(&fixture(GOOD_HANDOFF)).is_empty());
    }

    #[test]
    fn bad_hotpath_unwrap_is_flagged_with_path_and_span() {
        let f = panicfree::check(&fixture(BAD_HOTPATH), &seeds());
        let rules: Vec<(&str, u32)> = f.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(
            rules,
            vec![("hot-path-panic", 7), ("hot-path-panic", 12)],
            "{f:?}"
        );
        assert!(
            f[1].message.contains("demo::query_batch -> demo::decode"),
            "{f:?}"
        );
    }

    #[test]
    fn good_hotpath_checked_is_clean() {
        let f = panicfree::check(&fixture(GOOD_HOTPATH), &seeds());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bad_relaxed_fixture_is_unannotated_under_the_audit() {
        let f = atomics::check(&fixture(BAD_RELAXED));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("without an `// ORDERING:"), "{f:?}");
    }

    #[test]
    fn bad_ordering_role_mismatch_is_flagged() {
        let f = atomics::check(&fixture(BAD_ROLE));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("role `counter` is inconsistent"),
            "{f:?}"
        );
    }

    #[test]
    fn bad_relaxed_handoff_is_flagged() {
        let f = atomics::check(&fixture(BAD_HANDOFF));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("relaxed hand-off"), "{f:?}");
    }

    #[test]
    fn good_clean_fixture_passes_every_group() {
        let files = fixture(GOOD_CLEAN);
        let f = analyze_files(&files, &[]);
        // forbid_findings skips: fixture declares #![forbid(unsafe_code)]
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let report = Report {
            files: 1,
            findings: vec![Finding {
                file: "crates/demo/src/lib.rs".into(),
                line: 3,
                rule: "lock-order",
                message: "cycle \"a\" -> b\nwitness".into(),
            }],
            timings: vec![RuleTiming {
                name: "lint",
                millis: 1.25,
                findings: 0,
            }],
            total_millis: 2.5,
        };
        let json = to_json(&report);
        assert!(json.contains("\"rule\": \"lock-order\""), "{json}");
        assert!(json.contains("cycle \\\"a\\\" -> b\\nwitness"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn whole_repo_is_clean_under_analyze() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = analyze_repo(&root).expect("repo walk succeeds");
        assert!(
            report.findings.is_empty(),
            "analyze must be clean on the repo:\n{}",
            render(&report)
        );
        assert!(
            report.total_millis < BUDGET_MS,
            "analyze blew its budget: {:.1} ms",
            report.total_millis
        );
    }
}
