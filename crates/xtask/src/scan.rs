//! A lightweight item scanner over the [`lexer`](crate::lexer) token
//! stream: brace matching, `impl` owner tracking, and per-function token
//! ranges — the shared substrate of the `cargo xtask analyze` passes.
//!
//! This is deliberately *not* a parser.  The analyses need three
//! structural facts the flat token stream lacks:
//!
//! 1. **Function extents** — which tokens belong to which `fn`, so lock
//!    acquisitions, atomic operations and panic sites can be attributed to
//!    a named function and propagated along the call graph.
//! 2. **Owners** — the `impl` type a method lives in, so `Type::method`
//!    calls resolve precisely while bare `method` calls fall back to
//!    name-level resolution.
//! 3. **Test regions** — everything from the first `#[cfg(test)]` token to
//!    the end of the file is exempt from the hot-path and style rules,
//!    matching the PR 3 lint's (documented) file-suffix semantics.

use crate::lexer::{self, TokKind, Token};
use std::ops::Range;

/// One function (or method) found in a file.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's name (raw identifiers keep their `r#`).
    pub name: String,
    /// The `impl` type the function is defined on, when inside an `impl`.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token indices of the body, braces excluded (empty for bodyless
    /// trait/extern declarations).
    pub body: Range<usize>,
    /// True when the function sits in the file's test region.
    pub in_tests: bool,
}

/// One scanned source file: the token stream plus the structural facts.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path (`crates/<crate>/src/…`).
    pub rel_path: String,
    /// The crate directory name (`crates/<crate>/…`).
    pub crate_name: String,
    pub src: String,
    pub tokens: Vec<Token>,
    /// Functions in source order (nested functions appear after their
    /// enclosing function; their token ranges overlap).
    pub functions: Vec<Function>,
    /// First token index of the test region (`usize::MAX` when none).
    pub test_from: usize,
}

impl SourceFile {
    /// Lexes and scans `source`.
    pub fn scan(rel_path: &str, source: &str) -> SourceFile {
        let tokens = lexer::lex(source);
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let test_from = find_test_region(&tokens, source);
        let functions = scan_functions(&tokens, source, test_from);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            src: source.to_string(),
            tokens,
            functions,
            test_from,
        }
    }

    /// The token's text.
    pub fn text(&self, ix: usize) -> &str {
        self.tokens[ix].text(&self.src)
    }

    /// True when token `ix` is in the file's test region.
    pub fn in_tests(&self, ix: usize) -> bool {
        ix >= self.test_from
    }

    /// True when some line comment on lines `[line-window, line]` contains
    /// `needle` — the shared shape of the annotation rules (`SAFETY:`,
    /// `ORDERING:`, `PANIC-FREE:`).
    pub fn has_annotation(&self, line: u32, window: u32, needle: &str) -> bool {
        self.annotation_text(line, window, needle).is_some()
    }

    /// The text after `needle` in the nearest qualifying comment (nearest
    /// line first, same line included), trimmed.
    pub fn annotation_text(&self, line: u32, window: u32, needle: &str) -> Option<String> {
        let lo = line.saturating_sub(window);
        let mut best: Option<(u32, String)> = None;
        for t in &self.tokens {
            if !t.is_comment() || t.line < lo || t.line > line {
                continue;
            }
            let text = t.text(&self.src);
            if let Some(p) = text.find(needle) {
                let rest = text[p + needle.len()..]
                    .trim_start()
                    .trim_end_matches("*/")
                    .trim()
                    .to_string();
                match &best {
                    Some((l, _)) if *l >= t.line => {}
                    _ => best = Some((t.line, rest)),
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Token indices of `f`'s body with any *nested* function's tokens
    /// (signature and body) skipped, so sites attribute to exactly one
    /// function.
    pub fn body_tokens_of<'a>(&'a self, f: &'a Function) -> impl Iterator<Item = usize> + 'a {
        let nested: Vec<Range<usize>> = self
            .functions
            .iter()
            .filter(|g| g.sig_start > f.sig_start && g.body.end <= f.body.end && !g.body.is_empty())
            .map(|g| g.sig_start..g.body.end + 1)
            .collect();
        f.body
            .clone()
            .filter(move |ix| !nested.iter().any(|r| r.contains(ix)))
    }
}

/// First token index of `#` in a `#[cfg(test)]` attribute, or `usize::MAX`.
fn find_test_region(tokens: &[Token], src: &str) -> usize {
    let code: Vec<usize> = lexer::code_tokens(tokens).map(|(i, _)| i).collect();
    for w in code.windows(7) {
        let texts: Vec<&str> = w.iter().map(|&i| tokens[i].text(src)).collect();
        if texts == ["#", "[", "cfg", "(", "test", ")", "]"] {
            return w[0];
        }
    }
    usize::MAX
}

/// Owner of an `impl` block: the last path segment of the implemented
/// type (`impl Trait for a::b::Type<T>` → `Type`).
fn impl_owner(tokens: &[Token], src: &str, code: &[usize], impl_pos: usize) -> Option<String> {
    // collect the code tokens between `impl` and its `{`
    let mut span = Vec::new();
    for &ix in &code[impl_pos + 1..] {
        let t = tokens[ix].text(src);
        if t == "{" || t == ";" || t == "where" {
            break;
        }
        span.push(t);
    }
    // `for` splits trait from type; the type is what we want
    if let Some(p) = span.iter().position(|&t| t == "for") {
        span.drain(..=p);
    }
    // last identifier before any generic args of the final path segment:
    // walk the span, remembering the most recent identifier seen at
    // angle-bracket depth 0
    let mut depth = 0i32;
    let mut owner = None;
    for t in span {
        match t {
            "<" => depth += 1,
            ">" => depth -= 1,
            _ if depth == 0
                && t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_') =>
            {
                owner = Some(t.to_string());
            }
            _ => {}
        }
    }
    owner
}

fn scan_functions(tokens: &[Token], src: &str, test_from: usize) -> Vec<Function> {
    let code: Vec<usize> = lexer::code_tokens(tokens).map(|(i, _)| i).collect();
    let mut functions = Vec::new();
    // stack of (brace_depth_after_open, owner) for impl blocks
    let mut impl_stack: Vec<(i32, Option<String>)> = Vec::new();
    let mut depth = 0i32;
    let mut pending_impl: Option<Option<String>> = None;

    let mut c = 0usize;
    while c < code.len() {
        let ix = code[c];
        let t = tokens[ix];
        let text = t.text(src);
        match text {
            "{" => {
                depth += 1;
                if let Some(owner) = pending_impl.take() {
                    impl_stack.push((depth, owner));
                }
                c += 1;
            }
            "}" => {
                if impl_stack.last().is_some_and(|(d, _)| *d == depth) {
                    impl_stack.pop();
                }
                depth -= 1;
                c += 1;
            }
            ";" if pending_impl.is_some() => {
                pending_impl = None; // `impl Trait for Type;` — marker impl
                c += 1;
            }
            "impl" if t.kind == TokKind::Ident => {
                // item position only: `-> impl Trait` / `x: impl Fn()` are
                // type positions and must not open an impl context
                let item_pos = c == 0
                    || matches!(
                        tokens[code[c - 1]].text(src),
                        ";" | "}" | "{" | "]" | "unsafe"
                    );
                if item_pos {
                    pending_impl = Some(impl_owner(tokens, src, &code, c));
                }
                c += 1;
            }
            "fn" if t.kind == TokKind::Ident => {
                // `fn` in type position (`fn(u32) -> u32`) has no name
                let name_c = c + 1;
                let is_item = code
                    .get(name_c)
                    .is_some_and(|&nix| tokens[nix].kind == TokKind::Ident);
                if !is_item {
                    c += 1;
                    continue;
                }
                let name = tokens[code[name_c]].text(src).to_string();
                // find the body `{` or a terminating `;`
                let mut d = name_c + 1;
                let mut open = None;
                while d < code.len() {
                    match tokens[code[d]].text(src) {
                        "{" => {
                            open = Some(d);
                            break;
                        }
                        ";" => break,
                        _ => d += 1,
                    }
                }
                let owner = impl_stack.last().and_then(|(_, o)| o.clone());
                let body = match open {
                    None => 0..0,
                    Some(open_c) => {
                        // matching close over code tokens
                        let mut bd = 0i32;
                        let mut e = open_c;
                        while e < code.len() {
                            match tokens[code[e]].text(src) {
                                "{" => bd += 1,
                                "}" => {
                                    bd -= 1;
                                    if bd == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            e += 1;
                        }
                        let body_start = code[open_c] + 1;
                        let body_end = if e < code.len() {
                            code[e]
                        } else {
                            tokens.len()
                        };
                        body_start..body_end
                    }
                };
                functions.push(Function {
                    name,
                    owner,
                    line: t.line,
                    sig_start: ix,
                    body,
                    in_tests: ix >= test_from,
                });
                // continue scanning *inside* the body too (nested fns,
                // methods of nested impls): just advance past the name
                c = name_c + 1;
            }
            _ => c += 1,
        }
    }
    functions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_functions_and_owners() {
        let src = r#"
            pub fn free(x: u32) -> u32 { x + helper(x) }
            fn helper(x: u32) -> u32 { x }
            struct S;
            impl S {
                fn method(&self) -> u32 { 1 }
            }
            impl std::fmt::Display for S {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, "s")
                }
            }
            impl<T: Clone> Wrapper<T> {
                fn generic_method(&self) {}
            }
        "#;
        let f = SourceFile::scan("crates/demo/src/lib.rs", src);
        let names: Vec<(String, Option<String>)> = f
            .functions
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("helper".into(), None),
                ("method".into(), Some("S".into())),
                ("fmt".into(), Some("S".into())),
                ("generic_method".into(), Some("Wrapper".into())),
            ]
        );
        assert!(f.functions.iter().all(|f| !f.in_tests));
    }

    #[test]
    fn test_region_starts_at_cfg_test() {
        let src = r#"
            fn prod() { let _ = 1; }
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
        "#;
        let f = SourceFile::scan("crates/demo/src/lib.rs", src);
        assert_ne!(f.test_from, usize::MAX);
        let by_name = |n: &str| f.functions.iter().find(|f| f.name == n).expect("exists");
        assert!(!by_name("prod").in_tests);
        assert!(by_name("helper").in_tests);
        assert!(by_name("case").in_tests);
    }

    #[test]
    fn nested_function_tokens_attribute_to_the_inner_fn() {
        let src = r#"
            fn outer() {
                let a = before();
                fn inner() { let b = inside(); }
                let c = after();
            }
        "#;
        let f = SourceFile::scan("crates/demo/src/lib.rs", src);
        let outer = &f.functions[0];
        assert_eq!(outer.name, "outer");
        let outer_idents: Vec<&str> = f
            .body_tokens_of(outer)
            .filter(|&ix| f.tokens[ix].kind == TokKind::Ident)
            .map(|ix| f.text(ix))
            .collect();
        assert!(outer_idents.contains(&"before"));
        assert!(outer_idents.contains(&"after"));
        assert!(!outer_idents.contains(&"inside"), "{outer_idents:?}");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "struct S { cb: fn(u32) -> u32 } fn real() {}";
        let f = SourceFile::scan("crates/demo/src/lib.rs", src);
        let names: Vec<&str> = f.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn bodyless_trait_methods_have_empty_bodies() {
        let src = "trait T { fn decl(&self); fn with_default(&self) { self.decl() } }";
        let f = SourceFile::scan("crates/demo/src/lib.rs", src);
        assert_eq!(f.functions.len(), 2);
        assert!(f.functions[0].body.is_empty());
        assert!(!f.functions[1].body.is_empty());
    }

    #[test]
    fn annotation_window_lookup() {
        let src = "\n// ORDERING: counter — independent statistic\nfn f() { x.load(Ordering::Relaxed); }\n";
        let f = SourceFile::scan("crates/demo/src/lib.rs", src);
        assert_eq!(
            f.annotation_text(3, 3, "ORDERING:").as_deref(),
            Some("counter — independent statistic")
        );
        assert_eq!(
            f.annotation_text(3, 0, "ORDERING:"),
            None,
            "window excludes line 2"
        );
    }
}
